"""Shared fixtures for the figure-reproduction benchmarks.

One :class:`Workbench` is shared across every benchmark module, so a
simulation run (e.g. the focused-policy runs used by Figures 4, 5, 6 and 8)
is executed once and reused.  Scale is controlled by the
``REPRO_BENCH_INSTRUCTIONS`` environment variable (default 8000 dynamic
instructions per benchmark kernel -- large enough for stable shapes, small
enough for a laptop run; the paper uses 100M-instruction traces on a C
simulator).

Each figure's rendered table is printed and also written to
``results/<figure>.txt`` next to this directory.
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.experiments.figure import FigureData
from repro.experiments.harness import Workbench

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"


def bench_instructions() -> int:
    return int(os.environ.get("REPRO_BENCH_INSTRUCTIONS", "8000"))


@pytest.fixture(scope="session")
def workbench() -> Workbench:
    return Workbench(instructions=bench_instructions())


@pytest.fixture(scope="session")
def save_figure():
    RESULTS_DIR.mkdir(exist_ok=True)

    def save(figure: FigureData) -> FigureData:
        text = str(figure)
        print("\n" + text)
        slug = figure.figure_id.lower().replace(" ", "").replace(".", "")
        (RESULTS_DIR / f"{slug}.txt").write_text(text + "\n")
        return figure

    return save
