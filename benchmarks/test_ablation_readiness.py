"""Extension: readiness-aware load balancing (the paper's closing question).

Section 7: the residual gap "seems to require tracking exactly when and
where each instruction will be ready", because the least-full cluster is
not always the right target for a balanced instruction.  We give steering
exactly that oracle signal (ready-pressure per cluster) and measure how
much of the residual it recovers -- the answer, matching the paper's
pessimism about fetch-order steering, is "only a little".
"""

from repro.core.config import clustered_machine, monolithic_machine
from repro.core.scheduling.policies import LocScheduler
from repro.core.simulator import ClusteredSimulator
from repro.core.steering.readiness import ReadinessAwareSteering
from repro.criticality.loc import LocPredictor, PredictorSuite
from repro.criticality.trainer import ChunkedCriticalityTrainer
from repro.experiments.figure import FigureData

KERNELS = ("vortex", "twolf", "parser", "vpr", "gzip")


def run_ready(workbench, spec) -> float:
    prepared = workbench.prepare(spec)
    suite = PredictorSuite(loc_predictor=LocPredictor(seed=workbench.seed))
    trainer = ChunkedCriticalityTrainer(suite)

    def make_sim():
        return ClusteredSimulator(
            clustered_machine(8),
            steering=ReadinessAwareSteering(),
            scheduler=LocScheduler(),
            predictors=suite,
            trainer=trainer,
            max_cycles=64 * len(prepared.trace) + 10_000,
        )

    make_sim().run(prepared.trace, prepared.dependences, prepared.mispredicted)
    return make_sim().run(
        prepared.trace, prepared.dependences, prepared.mispredicted
    ).cpi


def sweep(workbench) -> FigureData:
    figure = FigureData(
        figure_id="Ablation readiness",
        title="8x1w normalized CPI: occupancy- vs readiness-based balancing",
        headers=["kernel", "policy_p", "readiness_aware"],
        notes=[
            "paper closing discussion: optimal balance needs readiness "
            "tracking; gains under fetch-order steering remain small",
        ],
    )
    from repro.workloads.suite import get_kernel

    for name in KERNELS:
        spec = get_kernel(name)
        base = workbench.run(spec, monolithic_machine(), "l").cpi
        p = workbench.run(spec, clustered_machine(8), "p").cpi
        ready = run_ready(workbench, spec)
        figure.add_row(name, p / base, ready / base)
    return figure


def test_readiness_signal(benchmark, workbench, save_figure):
    figure = benchmark.pedantic(sweep, args=(workbench,), rounds=1, iterations=1)
    save_figure(figure)
    deltas = [row[1] - row[2] for row in figure.rows]
    # The oracle readiness signal never hurts much...
    assert all(d > -0.05 for d in deltas), figure.rows
    # ...and on average gives at most a small gain: steering in fetch
    # order, not the balance signal, is the remaining bottleneck.
    mean_gain = sum(deltas) / len(deltas)
    assert -0.02 < mean_gain < 0.08, deltas
