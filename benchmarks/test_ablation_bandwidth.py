"""Extension: limited-bandwidth global bypass (Section 2.1's deferred study).

The paper assumes "the global bypass network has enough capacity to support
peak execution rates" and monitors ~0.25 global values per instruction at
8 clusters, deferring the limited-bandwidth analysis.  With the measured
communication rate (≈2 values/cycle at IPC 8), a 4-transfers/cycle network
should behave like an infinite one while 1/cycle should visibly hurt --
this extension tests exactly that.
"""

import dataclasses

from repro.core.config import clustered_machine, monolithic_machine
from repro.core.simulator import ClusteredSimulator
from repro.experiments.figure import FigureData
from repro.workloads.suite import get_kernel

BANDWIDTHS = (1, 2, 4, None)  # transfers/cycle; None = infinite
KERNELS = ("vortex", "crafty", "vpr", "eon")


def sweep(workbench) -> FigureData:
    figure = FigureData(
        figure_id="Ablation bandwidth",
        title="8x1w normalized CPI vs global-bypass bandwidth",
        headers=["kernel", *[f"bw={b or 'inf'}" for b in BANDWIDTHS]],
        notes=[
            "paper: assumes peak-rate capacity after measuring ~0.25 global "
            "values/instruction; this extension quantifies the assumption",
        ],
    )
    for name in KERNELS:
        spec = get_kernel(name)
        prepared = workbench.prepare(spec)
        base = workbench.run(spec, monolithic_machine(), "l").cpi
        row = []
        for bandwidth in BANDWIDTHS:
            config = dataclasses.replace(
                clustered_machine(8), forwarding_bandwidth=bandwidth
            )
            sim = ClusteredSimulator(
                config, max_cycles=64 * len(prepared.trace) + 10_000
            )
            result = sim.run(
                prepared.trace, prepared.dependences, prepared.mispredicted
            )
            row.append(result.cpi / base)
        figure.add_row(name, *row)
    return figure


def test_bandwidth_sweep(benchmark, workbench, save_figure):
    figure = benchmark.pedantic(sweep, args=(workbench,), rounds=1, iterations=1)
    save_figure(figure)
    for row in figure.rows:
        values = row[1:]
        # More bandwidth never hurts.
        for narrow, wide in zip(values, values[1:]):
            assert wide <= narrow + 0.01, row
        # 4 transfers/cycle is within a few percent of infinite -- the
        # paper's peak-capacity assumption is cheap to satisfy.
        assert values[2] <= values[3] * 1.05 + 0.01, row
