"""Figure 6: classification of critical-path stall events.

Paper shape: (a) contention events predominantly hit predicted-critical
instructions; (b) load-balance steering dominates forwarding delay, except
in convergent-dataflow benchmarks where dyadics matter.
"""

from repro.experiments.fig06 import run_figure6


def test_figure6(benchmark, workbench, save_figure):
    figure = benchmark.pedantic(
        run_figure6, args=(workbench,), rounds=1, iterations=1
    )
    save_figure(figure)

    headers = list(figure.headers)
    crit = headers.index("contention:critical")
    other = headers.index("contention:other")
    load_bal = headers.index("fwd:load_bal")
    dyadic = headers.index("fwd:dyadic")
    fwd_other = headers.index("fwd:other")

    ave8 = next(r for r in figure.rows if r[0] == "AVE" and r[1] == 8)
    # 6(a): the majority of critical contention hits predicted-critical
    # instructions (the paper: as much as two-thirds).
    assert ave8[crit] >= ave8[other], ave8
    # 6(b): load-balance steering is the dominant forwarding cause on
    # average for the narrow-cluster machine.
    assert ave8[load_bal] >= ave8[dyadic], ave8
    assert ave8[load_bal] >= ave8[fwd_other], ave8
    # ...except in the convergent-dataflow benchmark, where dyadics
    # dominate (paper: bzip2 and crafty).
    bzip2_rows = [row for row in figure.rows if row[0] == "bzip2"]
    assert any(row[dyadic] > row[load_bal] for row in bzip2_rows), bzip2_rows
