"""Ablation: criticality detector implementation (Section 8 discussion).

The paper's policies assume "a token-passing predictor built into the
pipeline" (the Fields hardware detector); our harness trains from exact
chunked critical-path analysis instead (DESIGN.md substitution).  This
ablation runs the full stall-over-steer stack under both detectors and
checks they deliver comparable end performance -- evidence the
substitution does not distort the policy results.
"""

from repro.core.config import clustered_machine, monolithic_machine
from repro.core.scheduling.policies import LocScheduler
from repro.core.simulator import ClusteredSimulator
from repro.core.steering.dependence import (
    CriticalitySteering,
    CriticalitySteeringConfig,
)
from repro.criticality.loc import LocPredictor, PredictorSuite
from repro.criticality.token_detector import TokenPassingTrainer
from repro.criticality.trainer import ChunkedCriticalityTrainer
from repro.experiments.figure import FigureData
from repro.workloads.suite import get_kernel

KERNELS = ("gzip", "gap", "vpr", "twolf")


def run_with(prepared, trainer_factory) -> float:
    config = clustered_machine(8)
    suite = PredictorSuite(loc_predictor=LocPredictor(seed=0))
    trainer = trainer_factory(suite)

    def make_sim():
        steering = CriticalitySteering(
            CriticalitySteeringConfig(preference="loc", stall_over_steer=True)
        )
        return ClusteredSimulator(
            config,
            steering=steering,
            scheduler=LocScheduler(),
            predictors=suite,
            trainer=trainer,
            max_cycles=64 * len(prepared.trace) + 10_000,
        )

    make_sim().run(prepared.trace, prepared.dependences, prepared.mispredicted)
    result = make_sim().run(
        prepared.trace, prepared.dependences, prepared.mispredicted
    )
    return result.cpi


def sweep(workbench) -> FigureData:
    figure = FigureData(
        figure_id="Ablation detector",
        title="8x1w normalized CPI: chunked-exact vs token-passing detector",
        headers=["kernel", "chunked", "token_passing"],
        notes=[
            "the token detector is the hardware mechanism Section 8 assumes; "
            "the chunked analysis is this repo's idealized substitute",
        ],
    )
    for name in KERNELS:
        spec = get_kernel(name)
        prepared = workbench.prepare(spec)
        base = workbench.run(spec, monolithic_machine(), "l").cpi
        chunked = run_with(
            prepared, lambda s: ChunkedCriticalityTrainer(s)
        )
        token = run_with(
            prepared,
            lambda s: TokenPassingTrainer(s, plant_interval=16),
        )
        figure.add_row(name, chunked / base, token / base)
    return figure


def test_detector_equivalence(benchmark, workbench, save_figure):
    figure = benchmark.pedantic(sweep, args=(workbench,), rounds=1, iterations=1)
    save_figure(figure)
    for row in figure.rows:
        __, chunked, token = row
        # The two detectors land in the same performance regime.  The
        # sampling detector is noisier (its tokens fan out along all gated
        # successors), so it may trail the exact analysis -- the measured
        # cost of a realistic detector, worth reporting, not hiding.
        assert abs(token - chunked) < 0.25, row
        assert token < 1.5 and chunked < 1.5, row
