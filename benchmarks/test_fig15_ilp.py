"""Figure 15: achieved vs available ILP on the 8x1w machine.

Paper shape: achieved ILP tracks available ILP at low availability, falls
below it as availability approaches the aggregate width (8), and recovers
toward the width when availability far exceeds it.
"""

from repro.experiments.fig15 import run_figure15


def test_figure15(benchmark, workbench, save_figure):
    figure = benchmark.pedantic(
        run_figure15, args=(workbench,), rounds=1, iterations=1
    )
    save_figure(figure)

    series = {row[0]: row[1] for row in figure.rows}
    # Achieved ILP never exceeds the machine width.
    assert all(v <= 8.0 + 1e-9 for v in series.values())
    # Low availability is exploited nearly fully.
    for available in (1, 2):
        if available in series:
            assert series[available] > 0.8 * available
    # Around the machine width, the clustered machine leaves ILP on the
    # table: achieved noticeably below available.
    near_width = [series[a] for a in (7, 8, 9) if a in series]
    assert near_width and min(near_width) < 7.0
    # Achieved ILP grows (weakly) with availability overall.
    low = series.get(2, 0)
    high = max(v for a, v in series.items() if a >= 8)
    assert high > low
