"""Ablation: the stall-over-steer LoC threshold (Section 5).

The paper reports empirically that a 30% threshold "strikes a good
balance": too low and fetch-critical code stalls needlessly; too high and
execute-critical chains get load-balanced apart.  We sweep the threshold on
the execute-critical kernels stall-over-steer targets.
"""

from repro.core.config import clustered_machine, monolithic_machine
from repro.core.scheduling.policies import LocScheduler
from repro.core.simulator import ClusteredSimulator
from repro.core.steering.dependence import (
    CriticalitySteering,
    CriticalitySteeringConfig,
)
from repro.criticality.loc import LocPredictor, PredictorSuite
from repro.criticality.trainer import ChunkedCriticalityTrainer
from repro.experiments.figure import FigureData
from repro.workloads.suite import get_kernel

THRESHOLDS = (0.05, 0.30, 0.60, 1.01)  # 1.01 disables stalling entirely
KERNELS = ("gzip", "gap", "vpr")


def run_with_threshold(workbench, spec, threshold: float) -> float:
    prepared = workbench.prepare(spec)
    config = clustered_machine(8)
    suite = PredictorSuite(loc_predictor=LocPredictor(seed=workbench.seed))
    trainer = ChunkedCriticalityTrainer(suite)

    def make_sim():
        steering = CriticalitySteering(
            CriticalitySteeringConfig(
                preference="loc",
                stall_over_steer=True,
                stall_loc_threshold=min(threshold, 1.0),
            )
        )
        if threshold > 1.0:  # disable: plain LoC steering
            steering = CriticalitySteering(
                CriticalitySteeringConfig(preference="loc")
            )
        return ClusteredSimulator(
            config,
            steering=steering,
            scheduler=LocScheduler(),
            predictors=suite,
            trainer=trainer,
            max_cycles=64 * len(prepared.trace) + 10_000,
        )

    make_sim().run(prepared.trace, prepared.dependences, prepared.mispredicted)
    result = make_sim().run(
        prepared.trace, prepared.dependences, prepared.mispredicted
    )
    return result.cpi


def sweep(workbench) -> FigureData:
    figure = FigureData(
        figure_id="Ablation stall threshold",
        title="8x1w normalized CPI vs stall-over-steer LoC threshold",
        headers=["kernel", *[f"thr={t}" for t in THRESHOLDS]],
        notes=["paper: 30% strikes a good balance (Section 5)"],
    )
    for name in KERNELS:
        spec = get_kernel(name)
        base = workbench.run(spec, monolithic_machine(), "l").cpi
        row = [
            run_with_threshold(workbench, spec, threshold) / base
            for threshold in THRESHOLDS
        ]
        figure.add_row(name, *row)
    return figure


def test_stall_threshold_sweep(benchmark, workbench, save_figure):
    figure = benchmark.pedantic(sweep, args=(workbench,), rounds=1, iterations=1)
    save_figure(figure)
    for row in figure.rows:
        values = row[1:]
        at_30 = values[1]
        disabled = values[-1]
        # The paper's 30% threshold is never far from the swept optimum...
        assert at_30 <= min(values) + 0.06, row
        # ...and on execute-critical kernels it beats not stalling at all.
        if row[0] in ("gzip", "gap"):
            assert at_30 <= disabled + 0.01, row
