"""Ablation: LoC counter precision (Section 7).

The paper: "stratifying LoC into 16 levels produces results almost
equivalent to a counter with unlimited precision", and the 16 levels can be
held in 4 bits with probabilistic updates.  We compare the three storage
modes end to end under the stall-over-steer policy.
"""

from repro.core.config import monolithic_machine
from repro.experiments.figure import FigureData
from repro.experiments.harness import Workbench
from repro.workloads.suite import get_kernel

MODES = ("exact", "stratified", "probabilistic")
KERNELS = ("gzip", "vpr", "gap", "twolf")


def sweep(instructions: int) -> FigureData:
    figure = FigureData(
        figure_id="Ablation LoC precision",
        title="8x1w normalized CPI by LoC counter implementation (policy s)",
        headers=["kernel", *MODES],
        notes=[
            "paper: 16 stratified levels ~ unlimited precision; 4-bit "
            "probabilistic counters implement the 16 levels",
        ],
    )
    benches = {
        mode: Workbench(
            instructions=instructions,
            benchmarks=[get_kernel(k) for k in KERNELS],
            loc_mode=mode,
        )
        for mode in MODES
    }
    for name in KERNELS:
        spec = get_kernel(name)
        row = []
        for mode in MODES:
            bench = benches[mode]
            base = bench.run(spec, monolithic_machine(), "l").cpi
            result = bench.run(spec, bench.clustered(8), "s")
            row.append(result.cpi / base)
        figure.add_row(name, *row)
    return figure


def test_loc_precision_sweep(benchmark, save_figure):
    from conftest import bench_instructions

    figure = benchmark.pedantic(
        sweep, args=(bench_instructions(),), rounds=1, iterations=1
    )
    save_figure(figure)
    for row in figure.rows:
        exact, stratified, probabilistic = row[1:]
        # Quantization costs little (paper: "almost equivalent").
        assert abs(stratified - exact) < 0.08, row
        # The 4-bit probabilistic implementation stays in the same regime.
        assert abs(probabilistic - exact) < 0.12, row
