"""Figure 8: the distribution of likelihood-of-criticality values.

Paper shape: a large never-critical spike (53% of dynamic instructions in
the 0-5% bin) and a wide spread above the Fields binary threshold -- wide
enough that a binary classification loses real information.
"""

from repro.experiments.fig08 import run_figure8


def test_figure8(benchmark, workbench, save_figure):
    figure = benchmark.pedantic(
        run_figure8, args=(workbench,), rounds=1, iterations=1
    )
    save_figure(figure)

    percents = figure.column("percent")
    assert abs(sum(percents) - 100.0) < 1e-6
    # A substantial never-critical population exists (paper: 53% in the
    # 0-5% bin; our kernels' static footprints are tiny, so the spike is
    # smaller -- see EXPERIMENTS.md).
    assert percents[0] > 10.0
    assert percents[0] == max(percents[:3])
    # The figure's actual point: LoC is a wide spectrum, not a binary.
    # Mass must exist both below and above the Fields 12.5% threshold,
    # across several distinct bins.
    below = sum(percents[:3])
    above = sum(percents[3:])
    assert below > 10.0 and above > 10.0, percents
    non_trivial_bins = [p for p in percents if p > 0.5]
    assert len(non_trivial_bins) >= 6, percents
