"""Figure 14: the paper's three policies, stacked on the focused baseline.

Paper shape: each added policy reduces the average clustering penalty
(LoC scheduling always helps; stall-over-steer helps the execute-critical
benchmarks strongly; proactive load-balancing helps the 8-cluster machine),
for a total penalty reduction of roughly half to two-thirds.
"""

from repro.experiments.fig14 import run_figure14


def test_figure14(benchmark, workbench, save_figure):
    figure = benchmark.pedantic(
        run_figure14, args=(workbench,), rounds=1, iterations=1
    )
    save_figure(figure)

    ave = {
        (row[1], row[2]): row[3] for row in figure.rows if row[0] == "AVE"
    }
    # LoC scheduling improves on focused at every cluster count.
    for clusters in (2, 4, 8):
        assert ave[(clusters, "l")] <= ave[(clusters, "focused")] + 0.005

    # The full stack beats the focused baseline everywhere.
    assert ave[(2, "s")] < ave[(2, "focused")] + 0.005
    assert ave[(4, "s")] < ave[(4, "focused")] + 0.005
    assert ave[(8, "p")] < ave[(8, "focused")]

    # Total penalty reduction is substantial (paper: 42-66%).
    for clusters, best in ((2, "s"), (4, "s"), (8, "p")):
        focused_penalty = ave[(clusters, "focused")] - 1.0
        best_penalty = ave[(clusters, best)] - 1.0
        if focused_penalty > 0.02:
            reduction = (focused_penalty - best_penalty) / focused_penalty
            assert reduction > 0.25, (clusters, focused_penalty, best_penalty)


def test_figure14_stall_over_steer_helps_execute_critical(
    benchmark, workbench, save_figure
):
    """Section 7: gap/gzip/perl/vpr benefit most from stall-over-steer."""

    def compute():
        return run_figure14(workbench)

    figure = benchmark.pedantic(compute, rounds=1, iterations=1)
    helped = 0
    for name in ("gap", "gzip", "perl", "vpr"):
        rows = {
            row[2]: row[3]
            for row in figure.rows
            if row[0] == name and row[1] == 8
        }
        if rows["s"] < rows["focused"]:
            helped += 1
    assert helped >= 3
