"""Extension: controlled-ILP sweep on the 8x1w machine (Figure 15's logic).

Synthetic kernels whose available ILP is set by construction (N independent
recurrences) run on 1-wide clusters under (a) plain dependence steering and
(b) the full policy stack.  Expected, per Sections 5 and 7:

* baseline steering suffers the Figure 9 pathology at *low* ILP (a chain
  fills its cluster's window and is load-balanced apart);
* the policy stack recovers low-ILP code almost completely (stalling keeps
  each chain home);
* near the machine width the gap to monolithic persists -- Figure 15's
  hardest-balance region.
"""

from repro.core.config import clustered_machine, monolithic_machine
from repro.core.scheduling.policies import LocScheduler
from repro.core.simulator import ClusteredSimulator
from repro.core.steering.dependence import (
    CriticalitySteering,
    CriticalitySteeringConfig,
)
from repro.criticality.loc import LocPredictor, PredictorSuite
from repro.criticality.trainer import ChunkedCriticalityTrainer
from repro.experiments.figure import FigureData
from repro.workloads.synthetic import build_synthetic, ilp_sweep_configs

INSTRUCTIONS = 6000


def run_plain(trace, config):
    return ClusteredSimulator(config, max_cycles=500_000).run(trace)


def run_stack(trace, config):
    suite = PredictorSuite(loc_predictor=LocPredictor(seed=0))
    trainer = ChunkedCriticalityTrainer(suite)

    def make_sim():
        steering = CriticalitySteering(
            CriticalitySteeringConfig(
                preference="loc", stall_over_steer=True, proactive=True
            )
        )
        return ClusteredSimulator(
            config,
            steering=steering,
            scheduler=LocScheduler(),
            predictors=suite,
            trainer=trainer,
            max_cycles=500_000,
        )

    make_sim().run(trace)
    return make_sim().run(trace)


def sweep() -> FigureData:
    figure = FigureData(
        figure_id="Synthetic ILP sweep",
        title="8x1w IPC relative to monolithic vs constructed ILP",
        headers=["chains", "mono_ipc", "baseline_ratio", "stack_ratio"],
        notes=[
            "baseline = dependence steering (Figure 9 pathology at low "
            "ILP); stack = LoC + stall-over-steer + proactive",
        ],
    )
    for config in ilp_sweep_configs():
        trace = build_synthetic(config).generate(INSTRUCTIONS)
        mono = run_plain(trace, monolithic_machine())
        base = run_plain(trace, clustered_machine(8))
        stack = run_stack(trace, clustered_machine(8))
        figure.add_row(
            config.chains,
            mono.ipc,
            base.ipc / mono.ipc,
            stack.ipc / mono.ipc,
        )
    return figure


def test_synthetic_ilp_sweep(benchmark, save_figure):
    figure = benchmark.pedantic(sweep, rounds=1, iterations=1)
    save_figure(figure)
    rows = {row[0]: row for row in figure.rows}
    # The policy stack beats baseline steering at every chain count.
    for row in figure.rows:
        assert row[3] >= row[2] - 0.02, row
    # Low-ILP code is recovered nearly completely (stall-over-steer keeps
    # each chain local: Figure 9 -> fixed).
    assert rows[1][3] > 0.9, rows[1]
    assert rows[2][3] > 0.85, rows[2]
    # Monolithic IPC grows with constructed ILP (the dial works).
    ipcs = [row[1] for row in figure.rows]
    assert ipcs == sorted(ipcs)
