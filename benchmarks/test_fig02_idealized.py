"""Figure 2: idealized list scheduling.

Paper shape: clustered configurations are within ~2% of the monolithic
machine on average (ours is looser on short traces but must stay small);
penalties grow with cluster count; bzip2/crafty/vpr are the worst cases.
"""

from repro.experiments.fig02 import run_figure2


def test_figure2(benchmark, workbench, save_figure):
    figure = benchmark.pedantic(
        run_figure2, args=(workbench,), rounds=1, iterations=1
    )
    save_figure(figure)

    ave = figure.row_for("AVE")
    # Shape 1: the idealized penalty is small everywhere.
    assert all(value < 1.08 for value in ave[1:]), ave
    # Shape 2: penalties do not shrink as clusters narrow.
    assert ave[1] <= ave[2] + 0.01 and ave[2] <= ave[3] + 0.01
    # Shape 3: the 8x1w worst case is a convergent-dataflow benchmark.
    worst = max(
        (row for row in figure.rows if row[0] != "AVE"), key=lambda r: r[3]
    )
    assert worst[0] in ("bzip2", "crafty", "vpr"), worst
