"""Ablation: instruction replication in the idealized study (footnote 4).

The paper: "Instruction replication, which has been advocated for
statically-scheduled clustered machines, therefore does not appear to be
necessary for dynamic machines."  We extend the idealized list scheduler
with one-level producer replication and measure how much schedule potential
it actually adds.  Expected: near-zero on average -- except in the
convergent-dataflow outlier (bzip2), where re-executing a producer on both
converging clusters sidesteps the forwarding the paper calls a fundamental
limit of 1-wide clusters.
"""

from repro.core.config import clustered_machine, monolithic_machine
from repro.experiments.figure import FigureData
from repro.idealized.list_scheduler import list_schedule


def sweep(workbench) -> FigureData:
    figure = FigureData(
        figure_id="Ablation replication",
        title="Idealized 8x1w normalized CPI without/with replication",
        headers=["benchmark", "plain", "replication", "replicas"],
        notes=[
            "paper footnote 4: replication unnecessary for dynamic "
            "machines; only convergent dataflow (bzip2) stands to gain",
        ],
    )
    for spec in workbench.benchmarks:
        prepared = workbench.prepare(spec)
        mono = workbench.run(spec, monolithic_machine(), "dependence")
        latencies = [rec.latency for rec in mono.records]
        base = list_schedule(
            prepared.trace,
            prepared.dependences,
            prepared.mispredicted,
            monolithic_machine(),
            latencies,
        ).cpi
        config = clustered_machine(8)
        plain = list_schedule(
            prepared.trace,
            prepared.dependences,
            prepared.mispredicted,
            config,
            latencies,
        )
        replicated = list_schedule(
            prepared.trace,
            prepared.dependences,
            prepared.mispredicted,
            config,
            latencies,
            allow_replication=True,
        )
        figure.add_row(
            spec.name,
            plain.cpi / base,
            replicated.cpi / base,
            replicated.replications,
        )
    return figure


def test_replication_rarely_needed(benchmark, workbench, save_figure):
    figure = benchmark.pedantic(sweep, args=(workbench,), rounds=1, iterations=1)
    save_figure(figure)
    gains = []
    for row in figure.rows:
        __, plain, replicated, __count = row
        # Replication never hurts an idealized schedule materially.
        assert replicated <= plain + 0.01, row
        gains.append(plain - replicated)
    # Footnote 4: the average gain is small...
    assert sum(gains) / len(gains) < 0.02, gains
    # ...and whatever gain exists concentrates in convergent dataflow.
    by_name = {row[0]: row[1] - row[2] for row in figure.rows}
    if max(gains) > 0.01:
        best = max(by_name, key=by_name.get)
        assert best in ("bzip2", "crafty", "twolf"), by_name