"""In-text claims: Sections 2.1, 4 and 6.

* global values per instruction stay modest and below/near the focused
  baseline (paper: 0.12/0.2/0.25 for 2/4/8 clusters);
* the idealized scheduler ranks priority information oracle <= LoC <=
  binary (paper: losses of ~1%/1.5%/2.7% vs 1.5%/5%/9.8%);
* most-critical consumers are statically concentrated, bimodal, and often
  not first in fetch order.
"""

from repro.experiments.intext import (
    run_consumer_stats,
    run_global_values,
    run_loc_priority_study,
)


def test_global_values_per_instruction(benchmark, workbench, save_figure):
    figure = benchmark.pedantic(
        run_global_values, args=(workbench,), rounds=1, iterations=1
    )
    save_figure(figure)
    for row in figure.rows:
        clusters, ours, baseline = row
        assert 0.0 <= ours <= 1.0
        # Ours stays in the same regime as the baseline policy.
        assert ours <= baseline * 1.5 + 0.05, row
    # More clusters communicate more.
    values = figure.column("proposed")
    assert values[0] <= values[2] + 0.02


def test_loc_priority_ablation(benchmark, workbench, save_figure):
    figure = benchmark.pedantic(
        run_loc_priority_study, args=(workbench,), rounds=1, iterations=1
    )
    save_figure(figure)
    oracle = figure.row_for("oracle")
    loc = figure.row_for("loc")
    binary = figure.row_for("binary")
    # Paper ordering on the 8-cluster machine: oracle best, LoC close,
    # binary clearly worse.
    assert oracle[3] <= loc[3] + 0.01
    assert loc[3] <= binary[3] + 0.01


def test_consumer_statistics(benchmark, workbench, save_figure):
    figure = benchmark.pedantic(
        run_consumer_stats, args=(workbench,), rounds=1, iterations=1
    )
    save_figure(figure)
    ave = figure.row_for("AVE")
    unique, bimodal, not_first = ave[1], ave[2], ave[3]
    # Paper: ~80% statically unique most-critical consumers.
    assert unique > 0.5
    # Paper: bimodal distribution of consumers' win rates.
    assert bimodal > 0.5
    # Paper: >50% of critical multi-consumer values not first in fetch
    # order.  Loop kernels are more regular than SPEC; require presence.
    assert not_first > 0.1
