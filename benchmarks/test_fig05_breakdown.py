"""Figure 5: critical-path breakdown under focused steering/scheduling.

Paper shape: stacks sum to the normalized CPI; the monolithic machine has
no forwarding or clustering contention; both grow with cluster count.
"""

from repro.experiments.fig05 import run_figure5


def test_figure5(benchmark, workbench, save_figure):
    figure = benchmark.pedantic(
        run_figure5, args=(workbench,), rounds=1, iterations=1
    )
    save_figure(figure)

    headers = list(figure.headers)
    fwd = headers.index("fwd_delay")
    contention = headers.index("contention")

    # Stacks sum to the total column.
    for row in figure.rows:
        assert abs(sum(row[2:-1]) - row[-1]) < 1e-9

    # Monolithic rows carry no forwarding delay.
    for row in figure.rows:
        if row[1] == 1:
            assert row[fwd] == 0.0

    # Clustering penalties (fwd + contention) grow with cluster count on
    # the suite average.
    ave = {row[1]: row for row in figure.rows if row[0] == "AVE"}
    penalty = {k: ave[k][fwd] + ave[k][contention] for k in (1, 2, 4, 8)}
    assert penalty[1] <= penalty[2] + 0.01
    assert penalty[2] <= penalty[8] + 0.01
