"""Ablation: finite L2 plus 200-cycle memory (Section 2.1 validation).

The paper simulates an infinite 20-cycle L2 to cut warm-up time and
verifies that a finite L2 with 200-cycle memory gives a very similar CPI
breakdown "except for a somewhat larger CPI contribution from memory".
This ablation replays that validation.
"""

import dataclasses

from repro.analysis.breakdown import FIGURE5_SEGMENTS, cpi_breakdown
from repro.core.config import clustered_machine
from repro.core.simulator import ClusteredSimulator
from repro.experiments.figure import FigureData
from repro.memory.cache import CacheConfig, MemoryConfig
from repro.workloads.suite import get_kernel

KERNELS = ("mcf", "vpr", "gcc")

FINITE_L2 = MemoryConfig(
    l2=CacheConfig(
        size_bytes=1024 * 1024, associativity=8, line_bytes=64, hit_latency=20
    ),
    memory_latency=200,
)


def compare(workbench) -> FigureData:
    figure = FigureData(
        figure_id="Ablation finite L2",
        title="4x2w CPI breakdown: infinite vs finite L2 (+200-cycle memory)",
        headers=["kernel", "l2_model", *FIGURE5_SEGMENTS],
        notes=[
            "paper: very similar breakdown, except a larger memory "
            "contribution; infinite-L2 results conservatively overestimate "
            "clustering's impact",
        ],
    )
    for name in KERNELS:
        spec = get_kernel(name)
        prepared = workbench.prepare(spec)
        for label, memory in (("infinite", MemoryConfig()), ("finite", FINITE_L2)):
            config = dataclasses.replace(clustered_machine(4), memory=memory)
            sim = ClusteredSimulator(
                config, max_cycles=256 * len(prepared.trace) + 10_000
            )
            result = sim.run(
                prepared.trace, prepared.dependences, prepared.mispredicted
            )
            segments = cpi_breakdown(result).segments
            figure.add_row(name, label, *[segments[s] for s in FIGURE5_SEGMENTS])
    return figure


def test_finite_l2_validation(benchmark, workbench, save_figure):
    figure = benchmark.pedantic(compare, args=(workbench,), rounds=1, iterations=1)
    save_figure(figure)
    mem_index = list(figure.headers).index("mem_latency")
    for name in KERNELS:
        rows = [row for row in figure.rows if row[0] == name]
        infinite = next(r for r in rows if r[1] == "infinite")
        finite = next(r for r in rows if r[1] == "finite")
        # Finite L2 + DRAM can only add memory cycles.
        assert finite[mem_index] >= infinite[mem_index] - 1e-9
        # Non-memory structure stays similar: compare the remaining
        # segments' totals within a loose band.
        other_inf = sum(infinite[2:]) - infinite[mem_index]
        other_fin = sum(finite[2:]) - finite[mem_index]
        assert other_fin <= other_inf * 1.5 + 0.2, (name, other_inf, other_fin)
