"""Table 1: the machine configurations under test.

Not a measurement -- renders the simulated machine parameters and checks
they match the paper's Table 1, then times configuration construction (a
trivial baseline that also verifies the benchmark harness itself works).
"""

from repro.core.config import clustered_machine, monolithic_machine
from repro.experiments.figure import FigureData


def build_table1() -> FigureData:
    figure = FigureData(
        figure_id="Table 1",
        title="Machine configurations (monolithic totals and splits)",
        headers=[
            "config",
            "clusters",
            "width/cluster",
            "int",
            "fp",
            "mem",
            "window/cluster",
            "rob",
            "fwd",
        ],
    )
    for count in (1, 2, 4, 8):
        config = monolithic_machine() if count == 1 else clustered_machine(count)
        cluster = config.cluster
        figure.add_row(
            config.name,
            count,
            cluster.issue_width,
            cluster.int_ports,
            cluster.fp_ports,
            cluster.mem_ports,
            cluster.window_size,
            config.rob_size,
            config.forwarding_latency,
        )
    return figure


def test_table1(benchmark, save_figure):
    figure = benchmark.pedantic(build_table1, rounds=1, iterations=1)
    save_figure(figure)
    mono = figure.row_for("1x8w")
    assert mono[2] == 8 and mono[6] == 128 and mono[7] == 256
    narrow = figure.row_for("8x1w")
    assert narrow[4] == 1 and narrow[5] == 1  # rounded-up fp/mem ports
