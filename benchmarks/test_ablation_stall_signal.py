"""Ablation: what signal should drive the decision to stall? (Section 5)

The paper argues that LoC -- not cluster load (Gonzalez et al.) -- is the
right signal for choosing stalling over load-balancing: execute-critical
code wants the stall, fetch-critical code wants the fetch.  We compare
four stall signals on an execute-critical kernel (gzip), a fetch-critical
kernel (gcc), and a mixed one (vpr).
"""

from repro.core.config import clustered_machine, monolithic_machine
from repro.core.scheduling.policies import OldestFirstScheduler
from repro.core.simulator import ClusteredSimulator
from repro.core.steering.stall_baselines import (
    AlwaysStallSteering,
    OccupancyStallSteering,
)
from repro.experiments.figure import FigureData
from repro.workloads.suite import get_kernel

KERNELS = ("gzip", "gcc", "vpr")


def run_baseline(workbench, spec, steering) -> float:
    prepared = workbench.prepare(spec)
    sim = ClusteredSimulator(
        clustered_machine(8),
        steering=steering,
        scheduler=OldestFirstScheduler(),
        max_cycles=64 * len(prepared.trace) + 10_000,
    )
    return sim.run(
        prepared.trace, prepared.dependences, prepared.mispredicted
    ).cpi


def sweep(workbench) -> FigureData:
    figure = FigureData(
        figure_id="Ablation stall signal",
        title="8x1w normalized CPI by stall-decision signal",
        headers=["kernel", "never_stall", "always_stall", "occupancy", "loc"],
        notes=[
            "never = focused baseline (load-balance on full); occupancy = "
            "Gonzalez-style load-driven stall; loc = the paper's Section 5 "
            "policy",
        ],
    )
    for name in KERNELS:
        spec = get_kernel(name)
        base = workbench.run(spec, monolithic_machine(), "l").cpi
        never = workbench.run(spec, clustered_machine(8), "l").cpi
        always = run_baseline(workbench, spec, AlwaysStallSteering())
        occupancy = run_baseline(
            workbench, spec, OccupancyStallSteering(occupancy_threshold=0.75)
        )
        loc = workbench.run(spec, clustered_machine(8), "s").cpi
        figure.add_row(
            name, never / base, always / base, occupancy / base, loc / base
        )
    return figure


def test_stall_signal_comparison(benchmark, workbench, save_figure):
    figure = benchmark.pedantic(sweep, args=(workbench,), rounds=1, iterations=1)
    save_figure(figure)
    rows = {row[0]: row for row in figure.rows}

    # Execute-critical code: any stalling beats never stalling; LoC-gated
    # stalling is at least as good as load-gated.
    gzip = rows["gzip"]
    assert gzip[4] <= gzip[1] + 0.01, gzip  # loc beats never
    assert gzip[4] <= gzip[3] + 0.03, gzip  # loc ~beats occupancy

    # On average, the LoC signal is the best of the four (the paper's
    # claim that criticality, not load, should drive the decision).
    averages = [
        sum(rows[k][i] for k in KERNELS) / len(KERNELS) for i in range(1, 5)
    ]
    assert averages[3] <= min(averages[:3]) + 0.02, averages
