"""Ablation: criticality-detector training regime (DESIGN.md).

The paper's detector samples the retiring stream continuously; our
substitution analyzes retired chunks.  This ablation checks the design is
robust: (a) chunk size barely matters across a 4x range, and (b) predictor
warm-up matters (cold predictors degrade the first run, which is why the
harness warms them -- mirroring the paper's warm-up methodology).
"""

from repro.core.config import clustered_machine, monolithic_machine
from repro.core.scheduling.policies import LocScheduler
from repro.core.simulator import ClusteredSimulator
from repro.core.steering.dependence import (
    CriticalitySteering,
    CriticalitySteeringConfig,
)
from repro.criticality.loc import LocPredictor, PredictorSuite
from repro.criticality.trainer import ChunkedCriticalityTrainer
from repro.experiments.figure import FigureData
from repro.workloads.suite import get_kernel

CHUNK_SIZES = (512, 2048, 8192)
KERNELS = ("vpr", "gzip")


def run_once(prepared, chunk_size: int, warm: bool) -> float:
    config = clustered_machine(8)
    suite = PredictorSuite(loc_predictor=LocPredictor(seed=0))
    trainer = ChunkedCriticalityTrainer(suite, chunk_size=chunk_size)

    def make_sim():
        steering = CriticalitySteering(
            CriticalitySteeringConfig(preference="loc", stall_over_steer=True)
        )
        return ClusteredSimulator(
            config,
            steering=steering,
            scheduler=LocScheduler(),
            predictors=suite,
            trainer=trainer,
            max_cycles=64 * len(prepared.trace) + 10_000,
        )

    if warm:
        make_sim().run(prepared.trace, prepared.dependences, prepared.mispredicted)
    result = make_sim().run(
        prepared.trace, prepared.dependences, prepared.mispredicted
    )
    return result.cpi


def sweep(workbench) -> FigureData:
    figure = FigureData(
        figure_id="Ablation training",
        title="8x1w normalized CPI vs detector chunk size and warm-up",
        headers=[
            "kernel",
            *[f"chunk={c}" for c in CHUNK_SIZES],
            "cold_start",
        ],
    )
    for name in KERNELS:
        spec = get_kernel(name)
        prepared = workbench.prepare(spec)
        base = workbench.run(spec, monolithic_machine(), "l").cpi
        row = [run_once(prepared, c, warm=True) / base for c in CHUNK_SIZES]
        row.append(run_once(prepared, 2048, warm=False) / base)
        figure.add_row(name, *row)
    return figure


def test_training_regime(benchmark, workbench, save_figure):
    figure = benchmark.pedantic(sweep, args=(workbench,), rounds=1, iterations=1)
    save_figure(figure)
    for row in figure.rows:
        chunks = row[1:4]
        cold = row[4]
        # Chunk size is not a sensitive parameter.
        assert max(chunks) - min(chunks) < 0.10, row
        # Cold-start runs are never better than warmed ones by much.
        assert cold >= min(chunks) - 0.02, row
