"""Figure 4: focused steering and scheduling (the state of the art).

Paper shape: an order of magnitude worse than the idealized potential --
2-cluster ~5%, 4-cluster >10% on several benchmarks, 8-cluster ~20% average.
"""

from repro.experiments.fig02 import run_figure2
from repro.experiments.fig04 import run_figure4


def test_figure4(benchmark, workbench, save_figure):
    figure = benchmark.pedantic(
        run_figure4, args=(workbench,), rounds=1, iterations=1
    )
    save_figure(figure)

    ave = figure.row_for("AVE")
    # Shape 1: penalties grow with cluster count and are substantial at 8.
    assert ave[1] <= ave[2] <= ave[3]
    assert ave[3] > 1.05
    # Shape 2: several benchmarks exceed 5% at 4 clusters (paper: >10%).
    over = [row for row in figure.rows if row[0] != "AVE" and row[2] > 1.05]
    assert len(over) >= 3, over


def test_figure4_vs_figure2_gap(benchmark, workbench, save_figure):
    """The headline motivation: focused loses far more than the hardware must."""

    def compute():
        ideal = run_figure2(workbench).row_for("AVE")
        actual = run_figure4(workbench).row_for("AVE")
        return ideal, actual

    ideal, actual = benchmark.pedantic(compute, rounds=1, iterations=1)
    ideal_penalty = ideal[3] - 1.0
    actual_penalty = actual[3] - 1.0
    # Paper: ~2% vs ~20% at 8 clusters -- an order of magnitude.
    assert actual_penalty > 3 * max(ideal_penalty, 0.005), (ideal, actual)
