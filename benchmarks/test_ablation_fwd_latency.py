"""Ablation: inter-cluster forwarding latency, 1-4 cycles (Section 2.1).

The paper models latencies 1-4 and reports that trends are unchanged; its
footnote 3 quantifies the idealized study at 4 cycles: 2x4w/4x2w still
under ~2% loss, 8x1w degrading to ~4%.  We sweep both the idealized
scheduler and the simulated focused policy.
"""

from repro.core.config import clustered_machine, monolithic_machine
from repro.experiments.fig02 import run_figure2
from repro.experiments.figure import FigureData

LATENCIES = (1, 2, 4)


def sweep_idealized(workbench) -> FigureData:
    figure = FigureData(
        figure_id="Ablation fwd (idealized)",
        title="Idealized average normalized CPI vs forwarding latency",
        headers=["fwd_latency", "2x4w", "4x2w", "8x1w"],
        notes=["paper footnote 3: at 4 cycles, 2/4-cluster <2%, 8-cluster ~4%"],
    )
    for latency in LATENCIES:
        ave = run_figure2(workbench, forwarding_latency=latency).row_for("AVE")
        figure.add_row(latency, *ave[1:])
    return figure


def sweep_simulated(workbench) -> FigureData:
    figure = FigureData(
        figure_id="Ablation fwd (simulated)",
        title="Focused-policy average normalized CPI vs forwarding latency",
        headers=["fwd_latency", "4x2w"],
    )
    for latency in LATENCIES:
        total = 0.0
        for spec in workbench.benchmarks:
            base = workbench.run(spec, monolithic_machine(), "focused").cpi
            result = workbench.run(
                spec, clustered_machine(4, forwarding_latency=latency), "focused"
            )
            total += result.cpi / base
        figure.add_row(latency, total / len(workbench.benchmarks))
    return figure


def test_idealized_fwd_latency_sweep(benchmark, workbench, save_figure):
    figure = benchmark.pedantic(
        sweep_idealized, args=(workbench,), rounds=1, iterations=1
    )
    save_figure(figure)
    # Losses grow (weakly) with latency and stay small even at 4 cycles.
    col_8x1w = figure.column("8x1w")
    assert col_8x1w[0] <= col_8x1w[-1] + 0.01
    assert col_8x1w[-1] < 1.12


def test_simulated_fwd_latency_sweep(benchmark, workbench, save_figure):
    figure = benchmark.pedantic(
        sweep_simulated, args=(workbench,), rounds=1, iterations=1
    )
    save_figure(figure)
    values = figure.column("4x2w")
    # Higher forwarding latency never helps.
    assert values[0] <= values[-1] + 0.01
    # Trends, not regime changes (paper: conclusions hold for 1-4 cycles).
    assert values[-1] < values[0] * 1.5
