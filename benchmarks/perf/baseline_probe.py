#!/usr/bin/env python
"""Time a *pre-optimization checkout* of the simulator (subprocess helper).

``run.py --baseline-src`` wants to report how much faster the optimized
simulator is than the code that existed before the event-driven rewrite --
not just faster than :class:`repro.core.reference.ReferenceSimulator`,
which shares (and therefore benefits from) the optimized steering and
predictor modules.  The only honest way to time the old code is to import
it, and two versions of the ``repro`` package cannot live in one process,
so this helper runs as a subprocess with the old checkout's ``src`` on its
path::

    git worktree add .bench-baseline <pre-optimization-sha>
    python benchmarks/perf/baseline_probe.py --src .bench-baseline/src \
        --kernels gcc,vpr --instructions 12000 --repeats 3 \
        --entries '[[1, "l"], [4, "s"]]'

It mirrors run.py's methodology exactly -- warm the predictors once per
(kernel, config, policy) with the trainer attached, then time best-of-N
runs against the frozen suite -- and prints one JSON object per line:
``{"kernel": ..., "clusters": ..., "policy": ..., "cycles": ...,
"seconds": ...}``.  Only APIs that exist in the pre-optimization checkout
are used.
"""

from __future__ import annotations

import argparse
import json
import sys
import time


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--src", required=True, help="baseline checkout's src dir")
    parser.add_argument("--kernels", required=True, help="comma-separated kernels")
    parser.add_argument("--instructions", type=int, required=True)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--entries", required=True,
        help='JSON list of [clusters, policy] pairs, e.g. [[1, "l"], [4, "s"]]',
    )
    parser.add_argument(
        "--max-cpi", type=int, default=64,
        help="deadlock guard: max_cycles = max_cpi * trace length + 10000",
    )
    args = parser.parse_args(argv)

    sys.path.insert(0, args.src)
    from repro.core.config import clustered_machine, monolithic_machine
    from repro.core.simulator import ClusteredSimulator
    from repro.criticality.loc import LocPredictor, PredictorSuite
    from repro.criticality.trainer import ChunkedCriticalityTrainer
    from repro.specs.policy import resolve_policy
    from repro.experiments.parallel import prepare_workload

    entries = [(int(c), str(p)) for c, p in json.loads(args.entries)]
    for kernel in [k.strip() for k in args.kernels.split(",")]:
        prepared = prepare_workload(kernel, args.instructions, 0)
        max_cycles = args.max_cpi * len(prepared.trace) + 10_000
        for clusters, policy in entries:
            config = (
                monolithic_machine()
                if clusters == 1
                else clustered_machine(clusters, forwarding_latency=2)
            )
            steering, scheduler, needs_predictors = resolve_policy(policy).build()
            suite = None
            if needs_predictors:
                suite = PredictorSuite(
                    loc_predictor=LocPredictor(mode="probabilistic", seed=0)
                )
                trainer = ChunkedCriticalityTrainer(suite)
                warm = ClusteredSimulator(
                    config,
                    steering=steering,
                    scheduler=scheduler,
                    predictors=suite,
                    trainer=trainer,
                    max_cycles=max_cycles,
                )
                warm.run(prepared.trace, prepared.dependences, prepared.mispredicted)
            best = None
            cycles = None
            for __ in range(args.repeats):
                steering, scheduler, __needs = resolve_policy(policy).build()
                sim = ClusteredSimulator(
                    config,
                    steering=steering,
                    scheduler=scheduler,
                    predictors=suite,
                    trainer=None,
                    max_cycles=max_cycles,
                )
                start = time.perf_counter()
                result = sim.run(
                    prepared.trace, prepared.dependences, prepared.mispredicted
                )
                elapsed = time.perf_counter() - start
                if best is None or elapsed < best:
                    best = elapsed
                cycles = result.cycles
            print(
                json.dumps(
                    {
                        "kernel": kernel,
                        "clusters": clusters,
                        "policy": policy,
                        "cycles": cycles,
                        "seconds": round(best, 6),
                    }
                ),
                flush=True,
            )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
