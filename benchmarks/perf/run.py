#!/usr/bin/env python
"""Simulator throughput benchmark: event vs reference vs batched backends.

Times the Figure 14 sweep (every suite kernel x cluster-count x policy,
exactly the bars ``repro.experiments.fig14`` draws) through both
:class:`repro.core.simulator.ClusteredSimulator` (the optimized,
event-driven loop) and :class:`repro.core.reference.ReferenceSimulator`
(the pre-optimization per-cycle loop), and records simulated cycles per
wall-clock second for every entry in ``BENCH_PR2.json``.

``--batched`` instead benchmarks the *sweep pipeline*: the per-job event
path (each grid point re-prepares the trace and re-warms its predictors,
exactly what one :func:`repro.experiments.parallel.execute_job` worker
does) against :func:`repro.experiments.batch.run_batched_group` (one
trace decode, one dependence/port precompute, one canonical predictor
training pass shared by the whole grid).  The two sides alternate in
interleaved rounds and the best round of each is kept, so machine-load
noise hits both equally.  Every batched result's cycle count is then
asserted against an untimed event-simulator twin run from the same
canonically-warmed frozen predictor state -- each benchmark run doubles
as a differential test of the batched backend.  Results land in
``BENCH_PR6.json``.

The in-tree reference shares the optimized steering/predictor modules, so
it understates the full optimization win.  ``--baseline-src`` additionally
times a *pre-optimization checkout* of the whole package (via
``baseline_probe.py`` in a subprocess), recording the end-to-end speedup
over the code as it stood before this work::

    git worktree add .bench-baseline <pre-optimization-sha>
    PYTHONPATH=src python benchmarks/perf/run.py \
        --baseline-src .bench-baseline/src

Methodology
-----------

* Criticality predictors are warmed once per (kernel, config, policy) by a
  throwaway run of the event simulator with the chunked trainer attached --
  the same warm-up the experiment harness performs -- and the *timed* runs
  then use the frozen predictor suite with no trainer, so both simulators
  time identical steady-state work on identical inputs.
* Each (simulator, entry) pair runs ``--repeats`` times and the best wall
  time is kept (the standard defense against scheduler noise).
* Both simulators must report the same cycle count for every entry; the
  harness asserts it, making each benchmark run a differential smoke test.

Usage
-----

Full sweep (writes BENCH_PR2.json next to the repo root)::

    PYTHONPATH=src python benchmarks/perf/run.py

CI perf smoke (one small kernel, compare against the committed numbers,
non-zero exit on a >20% cycles/sec regression)::

    PYTHONPATH=src python benchmarks/perf/run.py --smoke \
        --check BENCH_PR2.json --output BENCH_PR2.json

Batched-backend full sweep and CI gate::

    PYTHONPATH=src python benchmarks/perf/run.py --batched
    PYTHONPATH=src python benchmarks/perf/run.py --batched --smoke \
        --check BENCH_PR6.json --output BENCH_PR6.json --tolerance 0.35
"""

from __future__ import annotations

import argparse
import json
import math
import subprocess
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.config import clustered_machine, monolithic_machine  # noqa: E402
from repro.core.reference import ReferenceSimulator  # noqa: E402
from repro.core.simulator import ClusteredSimulator  # noqa: E402
from repro.criticality.loc import LocPredictor, PredictorSuite  # noqa: E402
from repro.criticality.trainer import ChunkedCriticalityTrainer  # noqa: E402
from repro.experiments.fig14 import BARS_BY_CLUSTER  # noqa: E402
from repro.specs.policy import resolve_policy  # noqa: E402
from repro.experiments.parallel import prepare_workload  # noqa: E402
from repro.workloads.suite import SUITE  # noqa: E402

# The kernel the CI perf-smoke job runs: small, representative, quick.
SMOKE_KERNEL = "gcc"
SMOKE_INSTRUCTIONS = 3000
SMOKE_REPEATS = 3
# Accepted regression vs the committed numbers before --check fails.
CHECK_TOLERANCE = 0.20

MAX_CPI_GUARD = 64


def sweep_entries(cluster_counts=BARS_BY_CLUSTER):
    """(clusters, policy) pairs of the Figure 14 sweep, per kernel."""
    entries = [(1, "l")]
    for cluster_count, policies in cluster_counts.items():
        entries.extend((cluster_count, policy) for policy in policies)
    return entries


def machine_for(clusters: int, forwarding_latency: int = 2):
    if clusters == 1:
        return monolithic_machine()
    return clustered_machine(clusters, forwarding_latency=forwarding_latency)


def warm_predictors(prepared, config, policy, max_cycles):
    """Train a fresh predictor suite the way the experiment harness does."""
    steering, scheduler, needs_predictors = resolve_policy(policy).build()
    if not needs_predictors:
        return None
    suite = PredictorSuite(loc_predictor=LocPredictor(mode="probabilistic", seed=0))
    trainer = ChunkedCriticalityTrainer(suite)
    sim = ClusteredSimulator(
        config,
        steering=steering,
        scheduler=scheduler,
        predictors=suite,
        trainer=trainer,
        max_cycles=max_cycles,
    )
    sim.run(prepared.trace, prepared.dependences, prepared.mispredicted)
    return suite


def time_simulator(sim_cls, prepared, config, policy, suite, max_cycles, repeats):
    """Best-of-``repeats`` wall time; returns (seconds, simulated cycles)."""
    best = None
    cycles = None
    for _ in range(repeats):
        steering, scheduler, __ = resolve_policy(policy).build()
        sim = sim_cls(
            config,
            steering=steering,
            scheduler=scheduler,
            predictors=suite,
            trainer=None,
            max_cycles=max_cycles,
        )
        start = time.perf_counter()
        result = sim.run(prepared.trace, prepared.dependences, prepared.mispredicted)
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
        cycles = result.cycles
    return best, cycles


def bench_kernel(kernel, instructions, repeats, entries, verbose=True):
    """Benchmark one kernel over ``entries``; returns result rows."""
    prepared = prepare_workload(kernel, instructions, 0)
    max_cycles = MAX_CPI_GUARD * len(prepared.trace) + 10_000
    rows = []
    for clusters, policy in entries:
        config = machine_for(clusters)
        suite = warm_predictors(prepared, config, policy, max_cycles)
        event_s, event_cycles = time_simulator(
            ClusteredSimulator, prepared, config, policy, suite, max_cycles, repeats
        )
        ref_s, ref_cycles = time_simulator(
            ReferenceSimulator, prepared, config, policy, suite, max_cycles, repeats
        )
        if event_cycles != ref_cycles:
            raise AssertionError(
                f"cycle mismatch on {kernel} {clusters}cl {policy}: "
                f"event={event_cycles} reference={ref_cycles}"
            )
        for sim, seconds in (("event", event_s), ("reference", ref_s)):
            rows.append(
                {
                    "kernel": kernel,
                    "clusters": clusters,
                    "policy": policy,
                    "sim": sim,
                    "cycles": event_cycles,
                    "seconds": round(seconds, 6),
                    "cycles_per_sec": round(event_cycles / seconds, 1),
                }
            )
        if verbose:
            print(
                f"{kernel:8s} {clusters}cl {policy:10s} "
                f"ref={ref_s * 1000:8.1f}ms ev={event_s * 1000:8.1f}ms "
                f"speedup={ref_s / event_s:.2f}x",
                flush=True,
            )
    return rows


def bench_batched_kernel(kernel, instructions, repeats, entries, verbose=True):
    """Time the per-job event pipeline vs one batched group for ``kernel``.

    Interleaved rounds: each repeat times the full event sweep (every
    grid point re-preparing and re-warming, the parallel-worker shape)
    then the full batched group, so slow-machine phases penalize both
    sides alike.  Returns ``(rows, event_best, batched_best)`` with the
    best round per side.  Cycle counts of the batched results are
    asserted against untimed event twins run from the same canonical
    frozen predictor state.
    """
    from dataclasses import replace as dc_replace

    from repro.experiments.batch import run_batched_group
    from repro.experiments.parallel import RunJob, execute_job

    jobs = [
        RunJob(
            kernel=kernel,
            instructions=instructions,
            seed=0,
            loc_mode="probabilistic",
            config=machine_for(clusters),
            policy=policy,
            sim="batched",
        )
        for clusters, policy in entries
    ]
    event_jobs = [dc_replace(job, sim="event") for job in jobs]

    event_best = batched_best = None
    batched_results = None
    for _ in range(repeats):
        start = time.perf_counter()
        for job in event_jobs:
            execute_job(job)  # prepared=None: each entry re-preps, as a worker does
        elapsed = time.perf_counter() - start
        if event_best is None or elapsed < event_best:
            event_best = elapsed
        start = time.perf_counter()
        results = run_batched_group(jobs)
        elapsed = time.perf_counter() - start
        if batched_best is None or elapsed < batched_best:
            batched_best = elapsed
        batched_results = results

    # Differential check (untimed): an event-simulator twin, its
    # predictors warmed by the event engine on the *same* canonical
    # stack the batched backend trains on (the monolithic machine under
    # "l") and then frozen, must land on the same cycle count as every
    # batched result.  Cold runs are bit-identical across the engines,
    # so the matched warm-ups train to identical predictor state.
    prepared = prepare_workload(kernel, instructions, 0)
    max_cycles = MAX_CPI_GUARD * len(prepared.trace) + 10_000
    suite = warm_predictors(prepared, monolithic_machine(), "l", max_cycles)
    rows = []
    for job, result in zip(jobs, batched_results):
        steering, scheduler, needs_predictors = resolve_policy(job.policy).build()
        sim = ClusteredSimulator(
            job.config,
            steering=steering,
            scheduler=scheduler,
            predictors=suite if needs_predictors else None,
            trainer=None,
            max_cycles=max_cycles,
        )
        twin = sim.run(prepared.trace, prepared.dependences, prepared.mispredicted)
        if twin.cycles != result.cycles:
            raise AssertionError(
                f"batched/event cycle mismatch on {kernel} "
                f"{job.config.name} {job.policy}: "
                f"batched={result.cycles} event-twin={twin.cycles}"
            )
        rows.append(
            {
                "kernel": kernel,
                "clusters": job.config.num_clusters,
                "policy": job.policy,
                "cycles": result.cycles,
            }
        )
    if verbose:
        print(
            f"{kernel:8s} {len(jobs)} entries "
            f"event={event_best:7.2f}s batched={batched_best:7.2f}s "
            f"speedup={event_best / batched_best:.2f}x",
            flush=True,
        )
    return rows, event_best, batched_best


def run_batched_sweep(kernels, instructions, repeats):
    """The batched-vs-event pipeline benchmark over ``kernels``."""
    rows = []
    event_total = batched_total = 0.0
    for kernel in kernels:
        kernel_rows, event_s, batched_s = bench_batched_kernel(
            kernel, instructions, repeats, sweep_entries()
        )
        rows.extend(kernel_rows)
        event_total += event_s
        batched_total += batched_s
    summary = {
        "event_seconds": round(event_total, 3),
        "batched_seconds": round(batched_total, 3),
        "speedup": round(event_total / batched_total, 3),
        "entries": len(rows),
    }
    return {
        "kernels": list(kernels),
        "instructions": instructions,
        "repeats": repeats,
        "entries": rows,
        "summary": summary,
    }


def run_baseline_probe(baseline_src, kernels, instructions, repeats, entries):
    """Time the pre-optimization checkout in a subprocess; return its rows."""
    probe = Path(__file__).resolve().parent / "baseline_probe.py"
    command = [
        sys.executable,
        str(probe),
        "--src", str(baseline_src),
        "--kernels", ",".join(kernels),
        "--instructions", str(instructions),
        "--repeats", str(repeats),
        "--max-cpi", str(MAX_CPI_GUARD),
        "--entries", json.dumps([list(entry) for entry in entries]),
    ]
    output = subprocess.run(
        command, check=True, capture_output=True, text=True
    ).stdout
    rows = []
    for line in output.splitlines():
        line = line.strip()
        if not line:
            continue
        probe_row = json.loads(line)
        probe_row["sim"] = "baseline"
        probe_row["cycles_per_sec"] = round(
            probe_row["cycles"] / probe_row["seconds"], 1
        )
        rows.append(probe_row)
    return rows


def summarize(rows):
    """Aggregate cycles/sec per simulator plus the headline speedups."""
    totals = {"event": [0, 0.0], "reference": [0, 0.0], "baseline": [0, 0.0]}
    ratios = []
    by_key = {}
    for row in rows:
        totals[row["sim"]][0] += row["cycles"]
        totals[row["sim"]][1] += row["seconds"]
        entry = by_key.setdefault(
            (row["kernel"], row["clusters"], row["policy"]), {}
        )
        entry[row["sim"]] = row["seconds"]
        if "cycles" in entry and entry["cycles"] != row["cycles"]:
            raise AssertionError(
                f"cycle mismatch across simulators on {row['kernel']} "
                f"{row['clusters']}cl {row['policy']}"
            )
        entry["cycles"] = row["cycles"]
    for pair in by_key.values():
        if "event" in pair and "reference" in pair:
            ratios.append(pair["reference"] / pair["event"])
    event_cps = totals["event"][0] / totals["event"][1]
    ref_cps = totals["reference"][0] / totals["reference"][1]
    summary = {
        "event_cycles_per_sec": round(event_cps, 1),
        "reference_cycles_per_sec": round(ref_cps, 1),
        "speedup": round(event_cps / ref_cps, 3),
        "geomean_speedup": round(
            math.exp(sum(math.log(r) for r in ratios) / len(ratios)), 3
        ),
        "entries": len(ratios),
    }
    if totals["baseline"][1] > 0:
        baseline_cps = totals["baseline"][0] / totals["baseline"][1]
        summary["baseline_cycles_per_sec"] = round(baseline_cps, 1)
        summary["speedup_vs_baseline"] = round(event_cps / baseline_cps, 3)
    return summary


def run_check(report, committed_path, tolerance=CHECK_TOLERANCE):
    """Fail (return 1) on a >tolerance regression vs the committed report.

    Event/reference sections gate on ``event_cycles_per_sec``; batched
    sections gate on the batched-over-event pipeline ``speedup``.
    """
    committed = json.loads(Path(committed_path).read_text())
    failures = []
    for section in ("smoke", "sweep"):
        new = report.get(section)
        old = committed.get(section)
        if new is None or old is None:
            continue
        new_cps = new["summary"]["event_cycles_per_sec"]
        old_cps = old["summary"]["event_cycles_per_sec"]
        floor = old_cps * (1.0 - tolerance)
        status = "ok" if new_cps >= floor else "REGRESSION"
        print(
            f"check {section}: event {new_cps:,.0f} cycles/s vs committed "
            f"{old_cps:,.0f} (floor {floor:,.0f}): {status}"
        )
        if new_cps < floor:
            failures.append(section)
    for section in ("batched_smoke", "batched_sweep"):
        new = report.get(section)
        old = committed.get(section)
        if new is None or old is None:
            continue
        new_speedup = new["summary"]["speedup"]
        old_speedup = old["summary"]["speedup"]
        floor = old_speedup * (1.0 - tolerance)
        status = "ok" if new_speedup >= floor else "REGRESSION"
        print(
            f"check {section}: batched speedup {new_speedup:.2f}x vs committed "
            f"{old_speedup:.2f}x (floor {floor:.2f}x): {status}"
        )
        if new_speedup < floor:
            failures.append(section)
    if failures:
        print(f"perf check FAILED: {', '.join(failures)} regressed >"
              f"{tolerance:.0%} vs {committed_path}")
        return 1
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--instructions", type=int, default=12_000,
        help="trace length per kernel for the full sweep (default 12000)",
    )
    parser.add_argument(
        "--repeats", type=int, default=3,
        help="timing repetitions per entry; best is kept (default 3)",
    )
    parser.add_argument(
        "--kernels", default=None,
        help="comma-separated kernel subset (default: the full suite)",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help=f"run only the CI smoke benchmark ({SMOKE_KERNEL}, "
             f"{SMOKE_INSTRUCTIONS} instructions)",
    )
    parser.add_argument(
        "--batched", action="store_true",
        help="benchmark the batched sweep backend against the per-job "
             "event pipeline (writes BENCH_PR6.json by default)",
    )
    parser.add_argument(
        "--output", default=None,
        help="where to write the JSON report (default: repo-root "
             "BENCH_PR2.json, or BENCH_PR6.json with --batched)",
    )
    parser.add_argument(
        "--check", metavar="COMMITTED_JSON", default=None,
        help="compare against a committed report; exit 1 on a "
             "cycles/sec regression beyond --tolerance",
    )
    parser.add_argument(
        "--tolerance", type=float, default=CHECK_TOLERANCE, metavar="FRAC",
        help="accepted fractional cycles/sec regression for --check "
             f"(default {CHECK_TOLERANCE}; CI's telemetry-off gate uses 0.05)",
    )
    parser.add_argument(
        "--baseline-src", metavar="SRC_DIR", default=None,
        help="src directory of a pre-optimization checkout (e.g. a git "
             "worktree); also times that code end-to-end via a subprocess "
             "and records the speedup over it",
    )
    args = parser.parse_args(argv)
    if args.output is None:
        default_name = "BENCH_PR6.json" if args.batched else "BENCH_PR2.json"
        args.output = str(REPO_ROOT / default_name)

    report = {"schema": 1}
    if args.batched:
        if args.smoke:
            section = run_batched_sweep(
                [SMOKE_KERNEL], SMOKE_INSTRUCTIONS, SMOKE_REPEATS
            )
            report["batched_smoke"] = section
        else:
            kernels = (
                [k.strip() for k in args.kernels.split(",")]
                if args.kernels
                else [spec.name for spec in SUITE]
            )
            section = run_batched_sweep(kernels, args.instructions, args.repeats)
            report["batched_sweep"] = section
        summary = section["summary"]
        print(
            f"\nevent pipeline:   {summary['event_seconds']:8.2f}s\n"
            f"batched pipeline: {summary['batched_seconds']:8.2f}s\n"
            f"speedup:          {summary['speedup']:.2f}x over "
            f"{summary['entries']} entries"
        )
    elif args.smoke:
        rows = bench_kernel(
            SMOKE_KERNEL,
            SMOKE_INSTRUCTIONS,
            SMOKE_REPEATS,
            sweep_entries(),
        )
        report["smoke"] = {
            "kernel": SMOKE_KERNEL,
            "instructions": SMOKE_INSTRUCTIONS,
            "repeats": SMOKE_REPEATS,
            "entries": rows,
            "summary": summarize(rows),
        }
        summary = report["smoke"]["summary"]
    else:
        kernels = (
            [k.strip() for k in args.kernels.split(",")]
            if args.kernels
            else [spec.name for spec in SUITE]
        )
        rows = []
        for kernel in kernels:
            rows.extend(
                bench_kernel(kernel, args.instructions, args.repeats, sweep_entries())
            )
        if args.baseline_src:
            print("timing pre-optimization baseline "
                  f"({args.baseline_src})...", flush=True)
            rows.extend(
                run_baseline_probe(
                    args.baseline_src,
                    kernels,
                    args.instructions,
                    args.repeats,
                    sweep_entries(),
                )
            )
        report["sweep"] = {
            "kernels": kernels,
            "instructions": args.instructions,
            "repeats": args.repeats,
            "entries": rows,
            "summary": summarize(rows),
        }
        summary = report["sweep"]["summary"]

    if not args.batched:
        print(
            f"\nevent:     {summary['event_cycles_per_sec']:>14,.0f} cycles/s\n"
            f"reference: {summary['reference_cycles_per_sec']:>14,.0f} cycles/s\n"
            f"speedup:   {summary['speedup']:.2f}x aggregate "
            f"({summary['geomean_speedup']:.2f}x geomean over "
            f"{summary['entries']} entries)"
        )
        if "speedup_vs_baseline" in summary:
            print(
                f"baseline:  {summary['baseline_cycles_per_sec']:>14,.0f} cycles/s "
                f"(pre-optimization checkout); "
                f"speedup vs baseline: {summary['speedup_vs_baseline']:.2f}x"
            )

    out_path = Path(args.output)
    if out_path.exists():
        try:
            existing = json.loads(out_path.read_text())
        except json.JSONDecodeError:
            existing = {}
        # A smoke run refreshes only its own section (and vice versa), so
        # the committed full-sweep numbers survive CI smoke reruns.
        for key in ("smoke", "sweep", "batched_smoke", "batched_sweep"):
            if key in existing and key not in report:
                report[key] = existing[key]
    out_path.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {out_path}")

    if args.check:
        return run_check(report, args.check, args.tolerance)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
