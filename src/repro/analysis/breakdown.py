"""Critical-path CPI breakdown (Figure 5).

Converts a run's critical-path attribution into normalized-CPI stack
segments: each category's cycles divided by (instructions x baseline CPI),
so the stacked bars sum to the run's normalized CPI exactly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.results import SimulationResult
from repro.criticality.critical_path import analyze_critical_path

# Display order of Figure 5's stack segments (bottom to top).
FIGURE5_SEGMENTS = (
    "br_mispredict",
    "mem_latency",
    "fetch",
    "window",
    "execute",
    "contention",
    "fwd_delay",
)


@dataclass(frozen=True)
class CpiBreakdown:
    """One run's CPI split across critical-path categories."""

    segments: dict[str, float]
    cpi: float

    def normalized(self, baseline_cpi: float) -> dict[str, float]:
        """Segments scaled so their sum is this run's CPI / baseline CPI."""
        if baseline_cpi <= 0:
            raise ValueError("baseline CPI must be positive")
        return {name: value / baseline_cpi for name, value in self.segments.items()}


def cpi_breakdown(result: SimulationResult) -> CpiBreakdown:
    """Attribute a run's cycles per instruction to Figure 5 categories."""
    analysis = analyze_critical_path(result.records)
    merged = analysis.merged_for_figure5()
    instructions = len(result.records)
    segments = {name: merged.get(name, 0) / instructions for name in FIGURE5_SEGMENTS}
    # The walk attributes commit_time(last) cycles; spread the one-cycle
    # difference from result.cycles into 'execute' so stacks sum to CPI.
    residual = result.cycles - analysis.attributed_cycles
    segments["execute"] += residual / instructions
    return CpiBreakdown(segments=segments, cpi=result.cpi)
