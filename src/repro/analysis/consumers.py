"""Producer-consumer criticality statistics (Section 6 in-text claims).

The paper justifies the feasibility of proactive load-balancing with three
trace observations:

1. about 80% of produced values have a *statically unique* most-critical
   consumer;
2. a static consumer either almost always or almost never is the most
   critical consumer of its producer's value (bimodal);
3. among critical producers with multiple consumers, over half do *not*
   have their most critical consumer first in fetch order.

These statistics are computed from a monolithic run: per-PC LoC values rank
consumers, consumer lists come from the dependence extraction.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass
from typing import Sequence

from repro.core.instruction import InFlight
from repro.core.rename import build_consumer_lists
from repro.criticality.critical_path import critical_flags


@dataclass(frozen=True)
class ConsumerCriticalityStats:
    """The three Section 6 statistics."""

    # Fraction of dynamic values whose most-critical consumer PC matches the
    # statically dominant most-critical-consumer PC for that producer PC.
    statically_unique_fraction: float
    # Fraction of static consumers whose "was most critical" rate is extreme
    # (below 20% or above 80%) -- the bimodality measure.
    bimodal_fraction: float
    # Among values from critical producers with >= 2 consumers: fraction
    # whose most critical consumer is NOT the first consumer in fetch order.
    most_critical_not_first_fraction: float
    values_analyzed: int


def consumer_criticality_stats(
    records: Sequence[InFlight],
    loc_by_pc: dict[int, float] | None = None,
    chunk_size: int = 2048,
) -> ConsumerCriticalityStats:
    """Compute the Section 6 statistics from one run's records."""
    flags = critical_flags(records, chunk_size=chunk_size)
    if loc_by_pc is None:
        loc_by_pc = exact_loc_by_pc(records, flags)

    consumers = build_consumer_lists([r.deps for r in records])

    # Per producer PC: counts of which consumer PC was most critical.
    winner_by_producer_pc: dict[int, Counter] = defaultdict(Counter)
    # Per consumer PC: (times most critical, times a candidate).
    consumer_wins: dict[int, list[int]] = defaultdict(lambda: [0, 0])
    multi_consumer_values = 0
    not_first = 0
    critical_multi_values = 0

    for i, record in enumerate(records):
        consumer_list = consumers[i]
        if not consumer_list:
            continue
        best = max(
            consumer_list, key=lambda c: (loc_by_pc.get(records[c].instr.pc, 0.0), -c)
        )
        best_pc = records[best].instr.pc
        winner_by_producer_pc[record.instr.pc][best_pc] += 1
        for c in consumer_list:
            stats = consumer_wins[records[c].instr.pc]
            stats[1] += 1
            if c == best:
                stats[0] += 1
        if len(consumer_list) >= 2:
            multi_consumer_values += 1
            if flags[i]:
                critical_multi_values += 1
                if best != min(consumer_list):
                    not_first += 1

    total_values = sum(
        sum(counter.values()) for counter in winner_by_producer_pc.values()
    )
    dominant = sum(
        counter.most_common(1)[0][1] for counter in winner_by_producer_pc.values()
    )
    unique_fraction = dominant / total_values if total_values else 0.0

    extreme = 0
    for wins, tries in consumer_wins.values():
        rate = wins / tries
        if rate <= 0.2 or rate >= 0.8:
            extreme += 1
    bimodal = extreme / len(consumer_wins) if consumer_wins else 0.0

    not_first_fraction = (
        not_first / critical_multi_values if critical_multi_values else 0.0
    )
    return ConsumerCriticalityStats(
        statically_unique_fraction=unique_fraction,
        bimodal_fraction=bimodal,
        most_critical_not_first_fraction=not_first_fraction,
        values_analyzed=total_values,
    )


def exact_loc_by_pc(
    records: Sequence[InFlight], flags: Sequence[bool] | None = None
) -> dict[int, float]:
    """Exact per-PC likelihood of criticality from one run."""
    if flags is None:
        flags = critical_flags(records)
    hits: dict[int, int] = defaultdict(int)
    totals: dict[int, int] = defaultdict(int)
    for record, critical in zip(records, flags):
        totals[record.instr.pc] += 1
        if critical:
            hits[record.instr.pc] += 1
    return {pc: hits[pc] / totals[pc] for pc in totals}
