"""Classification of lost-cycle events on the critical path (Figure 6).

Figure 6a counts contention-stall events among critical instructions, split
by whether the stalled instruction had been *predicted* critical -- the
paper's point being that two-thirds of critical contention hits
correctly-predicted-critical instructions, i.e. the binary predictor is not
the problem; its coarseness is.

Figure 6b counts forwarding-delay events on the critical path, classified by
the steering cause recorded when the delayed consumer was steered:
``load_bal`` (the desired producer cluster was full, so the consumer was
load-balanced away), ``dyadic`` (producers on different clusters -- one had
to be remote) and ``other``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.instruction import InFlight, SteerCause
from repro.criticality.critical_path import critical_flags


@dataclass(frozen=True)
class ContentionEvents:
    """Figure 6a: critical-path contention stalls."""

    predicted_critical: int
    other: int

    @property
    def total(self) -> int:
        return self.predicted_critical + self.other


@dataclass(frozen=True)
class ForwardingEvents:
    """Figure 6b: critical-path forwarding delays by steering cause."""

    load_balance: int
    dyadic: int
    other: int

    @property
    def total(self) -> int:
        return self.load_balance + self.dyadic + self.other


def classify_lost_cycle_events(
    records: Sequence[InFlight],
    flags: Sequence[bool] | None = None,
    chunk_size: int = 2048,
) -> tuple[ContentionEvents, ForwardingEvents]:
    """Count and classify critical-path stall events for one run."""
    if flags is None:
        flags = critical_flags(records, chunk_size=chunk_size)

    contention_critical = 0
    contention_other = 0
    fwd_load_balance = 0
    fwd_dyadic = 0
    fwd_other = 0

    for record, critical in zip(records, flags):
        if not critical:
            continue
        if record.contention_cycles > 0:
            if record.predicted_critical:
                contention_critical += 1
            else:
                contention_other += 1
        # A forwarding event counts only when the forwarded operand really
        # gated readiness (same condition the critical-path walk uses); a
        # remote operand that arrived before the instruction entered the
        # window cost nothing.
        operand_gated = (
            record.operand_avail == record.ready_time
            and record.operand_avail > record.dispatch_time + 1
        )
        if record.critical_operand_forwarded and operand_gated:
            cause = record.steer_cause
            if cause is SteerCause.LOAD_BALANCE_FULL:
                fwd_load_balance += 1
            elif cause is SteerCause.DYADIC:
                fwd_dyadic += 1
            else:
                fwd_other += 1

    return (
        ContentionEvents(contention_critical, contention_other),
        ForwardingEvents(fwd_load_balance, fwd_dyadic, fwd_other),
    )
