"""Text pipeline diagrams ("pipeview") for simulated instruction windows.

Renders a slice of a run as one row per instruction and one column per
cycle, in the style of classic pipeline viewers::

    #12 c2 ld   r4<-r2      D..rrEEE--C
    #13 c0 addi r2<-r2      Dw...rE---C

Markers: ``D`` dispatch, ``w`` waiting for operands, ``r`` ready but not
issued (contention -- the cycles Figure 6a counts), ``E`` executing,
``-`` completed and awaiting in-order commit, ``C`` commit.  The cluster
column makes steering decisions visible; ``*`` flags instructions whose
critical operand arrived over the interconnect (forwarding delay).
"""

from __future__ import annotations

from typing import Sequence

from repro.core.instruction import InFlight


def render_pipeline(
    records: Sequence[InFlight],
    start: int = 0,
    count: int = 24,
    max_width: int = 100,
) -> str:
    """Render ``count`` instructions starting at trace index ``start``."""
    window = [r for r in records if start <= r.index < start + count]
    if not window:
        raise ValueError(f"no records in [{start}, {start + count})")
    first_cycle = min(r.dispatch_time for r in window)
    last_cycle = max(r.commit_time for r in window)
    span = last_cycle - first_cycle + 1
    clipped = span > max_width

    label_rows = []
    for rec in window:
        flag = "*" if rec.critical_operand_forwarded else " "
        label = (
            f"#{rec.index:<5d} c{rec.cluster}{flag} "
            f"{rec.instr.opcode:<6s}"
        )
        label_rows.append((label, _lane(rec, first_cycle, min(span, max_width))))

    header_pad = " " * len(label_rows[0][0])
    ruler = _ruler(first_cycle, min(span, max_width))
    lines = [f"{header_pad}{ruler}"]
    lines.extend(f"{label}{lane}" for label, lane in label_rows)
    if clipped:
        lines.append(f"(timeline clipped at {max_width} of {span} cycles)")
    return "\n".join(lines)


def _lane(rec: InFlight, first_cycle: int, width: int) -> str:
    lane = []
    for offset in range(width):
        cycle = first_cycle + offset
        if cycle < rec.dispatch_time or cycle > rec.commit_time:
            lane.append(" ")
        elif cycle == rec.dispatch_time:
            lane.append("D")
        elif cycle == rec.commit_time:
            lane.append("C")
        elif cycle < rec.ready_time:
            lane.append("w")
        elif cycle < rec.issue_time:
            lane.append("r")
        elif cycle < rec.complete_time:
            lane.append("E")
        else:
            lane.append("-")
    return "".join(lane)


def _ruler(first_cycle: int, width: int) -> str:
    ruler = []
    for offset in range(width):
        cycle = first_cycle + offset
        ruler.append("|" if cycle % 10 == 0 else ".")
    return "".join(ruler) + f"  (cycle {first_cycle}..{first_cycle + width - 1})"


def contention_hotspots(
    records: Sequence[InFlight], top: int = 5
) -> list[tuple[int, int, int]]:
    """The instructions that waited longest while ready.

    Returns (trace index, pc, contention cycles), worst first -- a quick
    way to find Figure 7-style scheduling pathologies in a run.
    """
    ranked = sorted(records, key=lambda r: -r.contention_cycles)
    return [
        (r.index, r.instr.pc, r.contention_cycles)
        for r in ranked[:top]
        if r.contention_cycles > 0
    ]
