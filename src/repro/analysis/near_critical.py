"""Near-critical-path analysis (the Section 3 caveat, after Fields 2003).

The paper warns that its attributions "are not always unique -- previous
work has demonstrated the presence of parallel critical and near-critical
paths.  Thus, a performance improvement is not guaranteed if slowdowns on
only one critical path are addressed."  This module quantifies that caveat
for a run: how much of the instruction stream sits within ``k`` cycles of
criticality (global slack <= k), and how much runtime could shift onto a
parallel path if the nominal critical path were fixed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.config import MachineConfig
from repro.core.instruction import InFlight
from repro.criticality.critical_path import analyze_critical_path
from repro.criticality.slack import compute_global_slack


@dataclass(frozen=True)
class NearCriticalProfile:
    """How concentrated criticality is in one run."""

    # Fraction of dynamic instructions with slack exactly 0 (including,
    # but not limited to, the walked critical path).
    zero_slack_fraction: float
    # Fraction within `threshold` cycles of critical.
    near_critical_fraction: float
    threshold: int
    # Of the zero-slack instructions, the fraction the single backward walk
    # actually visited -- below 1.0 means parallel critical paths exist and
    # the attribution is not unique (the paper's caveat).
    walk_coverage_of_zero_slack: float


def near_critical_profile(
    records: Sequence[InFlight],
    config: MachineConfig,
    threshold: int = 5,
) -> NearCriticalProfile:
    """Quantify parallel (near-)criticality for a completed run."""
    if threshold < 0:
        raise ValueError("threshold must be non-negative")
    slacks = compute_global_slack(records, config)
    walk = analyze_critical_path(records).critical_indices

    total = len(records)
    zero = sum(1 for s in slacks if s == 0)
    near = sum(1 for s in slacks if s <= threshold)
    walked_zero = sum(
        1 for rec, s in zip(records, slacks) if s == 0 and rec.index in walk
    )
    return NearCriticalProfile(
        zero_slack_fraction=zero / total if total else 0.0,
        near_critical_fraction=near / total if total else 0.0,
        threshold=threshold,
        walk_coverage_of_zero_slack=walked_zero / zero if zero else 1.0,
    )
