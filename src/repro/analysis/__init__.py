"""Run analyses: CPI breakdowns, event classification, ILP and consumer stats."""

from repro.analysis.breakdown import FIGURE5_SEGMENTS, CpiBreakdown, cpi_breakdown
from repro.analysis.consumers import (
    ConsumerCriticalityStats,
    consumer_criticality_stats,
    exact_loc_by_pc,
)
from repro.analysis.events import (
    ContentionEvents,
    ForwardingEvents,
    classify_lost_cycle_events,
)
from repro.analysis.ilp import efficiency_at, merge_profiles
from repro.analysis.near_critical import NearCriticalProfile, near_critical_profile
from repro.analysis.pipeview import contention_hotspots, render_pipeline

__all__ = [
    "ConsumerCriticalityStats",
    "ContentionEvents",
    "CpiBreakdown",
    "FIGURE5_SEGMENTS",
    "ForwardingEvents",
    "NearCriticalProfile",
    "classify_lost_cycle_events",
    "contention_hotspots",
    "consumer_criticality_stats",
    "cpi_breakdown",
    "efficiency_at",
    "exact_loc_by_pc",
    "merge_profiles",
    "near_critical_profile",
    "render_pipeline",
]
