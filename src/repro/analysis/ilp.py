"""Available-vs-achieved ILP profiling (Figure 15).

The paper computes available ILP cycle-by-cycle as the number of ready
instructions across all clusters, and achieved ILP as the mean number of
instructions issued on cycles with a given availability.  The clustered
machine's weakness shows as a sag when available ILP is close to the
aggregate issue width: exploiting it all requires exactly one ready
instruction per (1-wide) cluster.
"""

from __future__ import annotations

from typing import Iterable

from repro.core.results import IlpProfile


def merge_profiles(profiles: Iterable[IlpProfile]) -> IlpProfile:
    """Cycle-weighted merge of per-benchmark profiles (Figure 15 averages
    over all benchmarks)."""
    merged = IlpProfile()
    for profile in profiles:
        for available, cycles in profile.cycle_count.items():
            merged.cycle_count[available] = (
                merged.cycle_count.get(available, 0) + cycles
            )
            merged.issued_sum[available] = (
                merged.issued_sum.get(available, 0) + profile.issued_sum[available]
            )
    return merged


def efficiency_at(profile: IlpProfile, available: int) -> float:
    """Achieved / min(available, machine-width-agnostic cap) utility."""
    if available <= 0:
        return 0.0
    return profile.achieved(available) / available
