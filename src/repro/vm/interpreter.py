"""Functional interpreter: executes a program, emits a dynamic trace.

The interpreter is purely architectural -- it models registers, memory and
control flow, not timing.  Data-dependent branches therefore behave exactly
as the program's data dictates, which is what makes the gshare predictor in
``repro.frontend`` produce genuine (not synthetic) mispredictions.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from dataclasses import dataclass, field

from repro.vm.assembler import Program
from repro.vm.isa import (
    FP_REG_BASE,
    NUM_REGS,
    OpClass,
    ZERO_REG,
    StaticInstruction,
)
from repro.vm.trace import DynamicInstruction, effective_sources

WORD_BYTES = 8
_INT_MASK = (1 << 64) - 1


class ExecutionError(RuntimeError):
    """Raised when a program faults (bad address, missing halt, runaway)."""


@dataclass
class MachineState:
    """Architectural state: registers and word-addressed memory."""

    memory_words: int = 1 << 16
    regs: list = field(default_factory=lambda: [0] * NUM_REGS)
    memory: dict[int, float] = field(default_factory=dict)

    def read_reg(self, reg: int) -> float:
        if reg == ZERO_REG:
            return 0
        return self.regs[reg]

    def write_reg(self, reg: int, value: float) -> None:
        if reg == ZERO_REG:
            return
        if reg < FP_REG_BASE:
            value = _to_int64(value)
        self.regs[reg] = value

    def read_mem(self, word_addr: int) -> float:
        self._check_addr(word_addr)
        return self.memory.get(word_addr, 0)

    def write_mem(self, word_addr: int, value: float) -> None:
        self._check_addr(word_addr)
        self.memory[word_addr] = value

    def _check_addr(self, word_addr: int) -> None:
        if not 0 <= word_addr < self.memory_words:
            raise ExecutionError(f"memory access out of range: word {word_addr}")


def _to_int64(value: float) -> int:
    """Wrap an integer result to signed 64-bit, Alpha style."""
    v = int(value) & _INT_MASK
    if v >= 1 << 63:
        v -= 1 << 64
    return v


def run(
    program: Program,
    max_instructions: int,
    initial_memory: Mapping[int, float] | None = None,
    initial_regs: Mapping[int, float] | None = None,
    memory_words: int = 1 << 16,
) -> list[DynamicInstruction]:
    """Execute ``program`` and return its dynamic trace.

    Execution stops at ``halt`` or after ``max_instructions`` retired
    instructions, whichever comes first.  Kernels are written as outer loops
    so truncation at the limit is a clean sampling of steady-state behaviour.
    """
    return list(
        iter_trace(
            program,
            max_instructions,
            initial_memory=initial_memory,
            initial_regs=initial_regs,
            memory_words=memory_words,
        )
    )


def iter_trace(
    program: Program,
    max_instructions: int,
    initial_memory: Mapping[int, float] | None = None,
    initial_regs: Mapping[int, float] | None = None,
    memory_words: int = 1 << 16,
) -> Iterable[DynamicInstruction]:
    """Generator form of :func:`run`."""
    if max_instructions <= 0:
        raise ValueError("max_instructions must be positive")
    state = MachineState(memory_words=memory_words)
    if initial_memory:
        for addr, value in initial_memory.items():
            state.write_mem(addr, value)
    if initial_regs:
        for reg, value in initial_regs.items():
            state.write_reg(reg, value)

    pc = 0
    for index in range(max_instructions):
        if not 0 <= pc < len(program):
            raise ExecutionError(f"pc {pc} outside program")
        instr = program[pc]
        next_pc, taken, mem_addr = _execute(instr, state, pc)
        yield DynamicInstruction(
            index=index,
            pc=pc,
            opcode=instr.opcode,
            opclass=instr.opclass,
            dest=instr.dest if instr.dest != ZERO_REG else None,
            srcs=effective_sources(instr.srcs),
            is_branch=instr.is_branch,
            is_conditional_branch=instr.is_conditional_branch,
            taken=taken,
            next_pc=next_pc,
            mem_addr=mem_addr,
        )
        if instr.opcode == "halt":
            return
        pc = next_pc


def _execute(
    instr: StaticInstruction, state: MachineState, pc: int
) -> tuple[int, bool, int | None]:
    """Execute one instruction; return (next_pc, branch_taken, mem_byte_addr)."""
    op = instr.opcode
    next_pc = pc + 1
    taken = False
    mem_addr: int | None = None

    if instr.opclass in (OpClass.INT_ALU, OpClass.INT_MUL, OpClass.FP):
        state.write_reg(instr.dest, _alu(op, instr, state))
    elif instr.is_load:
        word = state.read_reg(instr.mem_base) + instr.mem_offset
        mem_addr = int(word) * WORD_BYTES
        state.write_reg(instr.dest, state.read_mem(int(word)))
    elif instr.is_store:
        word = state.read_reg(instr.mem_base) + instr.mem_offset
        mem_addr = int(word) * WORD_BYTES
        state.write_mem(int(word), state.read_reg(instr.srcs[0]))
    elif op == "br":
        taken = True
        next_pc = instr.target
    elif op == "beq":
        taken = state.read_reg(instr.srcs[0]) == 0
        if taken:
            next_pc = instr.target
    elif op == "bne":
        taken = state.read_reg(instr.srcs[0]) != 0
        if taken:
            next_pc = instr.target
    elif op == "halt":
        pass
    else:  # pragma: no cover - opcode table is closed
        raise ExecutionError(f"unimplemented opcode {op}")
    return next_pc, taken, mem_addr


def _alu(op: str, instr: StaticInstruction, state: MachineState) -> float:
    read = state.read_reg
    srcs = instr.srcs
    if op in ("add", "fadd"):
        return read(srcs[0]) + read(srcs[1])
    if op in ("sub", "fsub"):
        return read(srcs[0]) - read(srcs[1])
    if op in ("mul", "fmul"):
        return read(srcs[0]) * read(srcs[1])
    if op == "and":
        return int(read(srcs[0])) & int(read(srcs[1]))
    if op == "or":
        return int(read(srcs[0])) | int(read(srcs[1]))
    if op == "xor":
        return int(read(srcs[0])) ^ int(read(srcs[1]))
    if op == "sll":
        return int(read(srcs[0])) << (int(read(srcs[1])) & 63)
    if op == "srl":
        return int(read(srcs[0])) >> (int(read(srcs[1])) & 63)
    if op == "cmpeq":
        return int(read(srcs[0]) == read(srcs[1]))
    if op == "cmplt":
        return int(read(srcs[0]) < read(srcs[1]))
    if op == "cmple":
        return int(read(srcs[0]) <= read(srcs[1]))
    if op == "addi":
        return read(srcs[0]) + instr.imm
    if op == "subi":
        return read(srcs[0]) - instr.imm
    if op == "muli":
        return read(srcs[0]) * instr.imm
    if op == "andi":
        return int(read(srcs[0])) & instr.imm
    if op == "ori":
        return int(read(srcs[0])) | instr.imm
    if op == "xori":
        return int(read(srcs[0])) ^ instr.imm
    if op == "slli":
        return int(read(srcs[0])) << (instr.imm & 63)
    if op == "srli":
        return int(read(srcs[0])) >> (instr.imm & 63)
    if op == "cmpeqi":
        return int(read(srcs[0]) == instr.imm)
    if op == "cmplti":
        return int(read(srcs[0]) < instr.imm)
    if op == "cmplei":
        return int(read(srcs[0]) <= instr.imm)
    if op == "li":
        return instr.imm
    if op in ("mov", "cvtif", "cvtfi"):
        value = read(srcs[0])
        return int(value) if op == "cvtfi" else value
    raise ExecutionError(f"unimplemented ALU opcode {op}")  # pragma: no cover
