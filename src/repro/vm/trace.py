"""Dynamic-instruction trace records.

The interpreter executes a workload program and emits one
:class:`DynamicInstruction` per retired instruction.  These records are the
input to every downstream consumer: the timing simulator, the idealized list
scheduler and the criticality analyses.  They carry architectural information
only (registers, branch outcome, memory address); microarchitectural state is
attached later by the simulator.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.vm.isa import BASE_LATENCY, OpClass, ZERO_REG


@dataclass(frozen=True, slots=True)
class DynamicInstruction:
    """One retired instruction in a dynamic trace.

    ``index`` is the position in the trace (program order).  ``srcs``
    excludes the hard-wired zero register, so every listed source creates a
    true register dependence.  ``mem_addr`` is a byte address (word index *
    8) or None for non-memory ops.
    """

    index: int
    pc: int
    opcode: str
    opclass: OpClass
    dest: int | None
    srcs: tuple[int, ...]
    is_branch: bool = False
    is_conditional_branch: bool = False
    taken: bool = False
    next_pc: int = 0
    mem_addr: int | None = None

    @property
    def is_load(self) -> bool:
        """Whether this instruction reads memory."""
        return self.opclass is OpClass.LOAD

    @property
    def is_store(self) -> bool:
        """Whether this instruction writes memory."""
        return self.opclass is OpClass.STORE

    @property
    def base_latency(self) -> int:
        """Execution latency excluding cache time (Table 1 latencies)."""
        return BASE_LATENCY[self.opclass]


def effective_sources(srcs: tuple[int, ...]) -> tuple[int, ...]:
    """Drop reads of the zero register; they carry no dependence."""
    return tuple(s for s in srcs if s != ZERO_REG)
