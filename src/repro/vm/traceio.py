"""Trace serialization: save and reload dynamic traces as compact JSON.

Generating a trace is cheap, but keeping the *exact* trace an experiment
used matters for reproducibility across library versions (kernel tweaks
change traces).  The format is a plain JSON object with a schema version
and columnar fields, so it diffs and compresses well.
"""

from __future__ import annotations

import json
import pathlib
from typing import Sequence

from repro.vm.isa import OpClass
from repro.vm.trace import DynamicInstruction

FORMAT_VERSION = 1


def trace_to_dict(trace: Sequence[DynamicInstruction]) -> dict:
    """Columnar dict form of a trace."""
    return {
        "version": FORMAT_VERSION,
        "length": len(trace),
        "pc": [t.pc for t in trace],
        "opcode": [t.opcode for t in trace],
        "opclass": [t.opclass.value for t in trace],
        "dest": [t.dest for t in trace],
        "srcs": [list(t.srcs) for t in trace],
        "taken": [int(t.taken) for t in trace],
        "conditional": [int(t.is_conditional_branch) for t in trace],
        "branch": [int(t.is_branch) for t in trace],
        "next_pc": [t.next_pc for t in trace],
        "mem_addr": [t.mem_addr for t in trace],
    }


def trace_from_dict(data: dict) -> list[DynamicInstruction]:
    """Rebuild a trace from :func:`trace_to_dict` output."""
    version = data.get("version")
    if version != FORMAT_VERSION:
        raise ValueError(f"unsupported trace format version: {version!r}")
    length = data["length"]
    columns = (
        "pc", "opcode", "opclass", "dest", "srcs", "taken",
        "conditional", "branch", "next_pc", "mem_addr",
    )
    for column in columns:
        if len(data[column]) != length:
            raise ValueError(f"column {column!r} has wrong length")
    trace = []
    for i in range(length):
        trace.append(
            DynamicInstruction(
                index=i,
                pc=data["pc"][i],
                opcode=data["opcode"][i],
                opclass=OpClass(data["opclass"][i]),
                dest=data["dest"][i],
                srcs=tuple(data["srcs"][i]),
                is_branch=bool(data["branch"][i]),
                is_conditional_branch=bool(data["conditional"][i]),
                taken=bool(data["taken"][i]),
                next_pc=data["next_pc"][i],
                mem_addr=data["mem_addr"][i],
            )
        )
    return trace


def save_trace(trace: Sequence[DynamicInstruction], path) -> None:
    """Write a trace to ``path`` as JSON."""
    pathlib.Path(path).write_text(json.dumps(trace_to_dict(trace)))


def load_trace(path) -> list[DynamicInstruction]:
    """Read a trace written by :func:`save_trace`."""
    return trace_from_dict(json.loads(pathlib.Path(path).read_text()))
