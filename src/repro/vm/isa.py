"""The mini instruction set used by the synthetic workloads.

The paper evaluates Alpha binaries; we substitute a small Alpha-flavoured
register ISA that preserves the properties the evaluation depends on:

* three-address integer ALU ops (so dyadic convergence exists),
* explicit loads/stores with register+offset addressing,
* compare-and-branch sequences (``cmpeq`` + ``bne``) exactly as in the
  paper's Figure 12 assembly,
* distinct operation classes (integer ALU, integer multiply, floating point,
  load, store, branch) so the clustered machine's per-class issue ports are
  exercised.

Registers live in one namespace: integer registers ``r0``..``r31`` map to ids
0..31 (``r31`` is hard-wired zero, as on Alpha) and floating-point registers
``f0``..``f15`` map to ids 32..47.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

NUM_INT_REGS = 32
NUM_FP_REGS = 16
ZERO_REG = 31
FP_REG_BASE = NUM_INT_REGS
NUM_REGS = NUM_INT_REGS + NUM_FP_REGS


class OpClass(enum.Enum):
    """Functional-unit class of an operation (selects port and latency)."""

    INT_ALU = "int_alu"
    INT_MUL = "int_mul"
    FP = "fp"
    LOAD = "load"
    STORE = "store"
    BRANCH = "branch"

    @property
    def is_memory(self) -> bool:
        """Whether this class occupies a memory port."""
        return self in (OpClass.LOAD, OpClass.STORE)


# Execution latency in cycles, excluding cache access time for loads.  These
# match Table 1's "instruction latencies match the Alpha 21264": single-cycle
# integer ALU, 7-cycle integer multiply, 4-cycle floating point, and a 3-cycle
# load-to-use (1 cycle of address generation here + the 2-cycle L1 in
# repro.memory).
BASE_LATENCY: dict[OpClass, int] = {
    OpClass.INT_ALU: 1,
    OpClass.INT_MUL: 7,
    OpClass.FP: 4,
    OpClass.LOAD: 1,
    OpClass.STORE: 1,
    OpClass.BRANCH: 1,
}


@dataclass(frozen=True)
class OpSpec:
    """Static description of one opcode.

    ``operands`` is a format string over the characters:
      ``d`` destination register, ``s`` source register, ``i`` immediate,
      ``m`` memory operand ``offset(base)`` (adds the base as a source),
      ``t`` branch target label.
    """

    name: str
    opclass: OpClass
    operands: str
    is_conditional_branch: bool = False


OPCODES: dict[str, OpSpec] = {
    spec.name: spec
    for spec in [
        # Integer ALU, register forms.
        OpSpec("add", OpClass.INT_ALU, "dss"),
        OpSpec("sub", OpClass.INT_ALU, "dss"),
        OpSpec("and", OpClass.INT_ALU, "dss"),
        OpSpec("or", OpClass.INT_ALU, "dss"),
        OpSpec("xor", OpClass.INT_ALU, "dss"),
        OpSpec("sll", OpClass.INT_ALU, "dss"),
        OpSpec("srl", OpClass.INT_ALU, "dss"),
        OpSpec("cmpeq", OpClass.INT_ALU, "dss"),
        OpSpec("cmplt", OpClass.INT_ALU, "dss"),
        OpSpec("cmple", OpClass.INT_ALU, "dss"),
        # Integer ALU, immediate forms.
        OpSpec("addi", OpClass.INT_ALU, "dsi"),
        OpSpec("subi", OpClass.INT_ALU, "dsi"),
        OpSpec("andi", OpClass.INT_ALU, "dsi"),
        OpSpec("ori", OpClass.INT_ALU, "dsi"),
        OpSpec("xori", OpClass.INT_ALU, "dsi"),
        OpSpec("slli", OpClass.INT_ALU, "dsi"),
        OpSpec("srli", OpClass.INT_ALU, "dsi"),
        OpSpec("cmpeqi", OpClass.INT_ALU, "dsi"),
        OpSpec("cmplti", OpClass.INT_ALU, "dsi"),
        OpSpec("cmplei", OpClass.INT_ALU, "dsi"),
        OpSpec("li", OpClass.INT_ALU, "di"),
        OpSpec("mov", OpClass.INT_ALU, "ds"),
        # Integer multiply.
        OpSpec("mul", OpClass.INT_MUL, "dss"),
        OpSpec("muli", OpClass.INT_MUL, "dsi"),
        # Floating point.
        OpSpec("fadd", OpClass.FP, "dss"),
        OpSpec("fsub", OpClass.FP, "dss"),
        OpSpec("fmul", OpClass.FP, "dss"),
        OpSpec("cvtif", OpClass.FP, "ds"),
        OpSpec("cvtfi", OpClass.FP, "ds"),
        # Memory.
        OpSpec("ld", OpClass.LOAD, "dm"),
        OpSpec("st", OpClass.STORE, "sm"),
        OpSpec("fld", OpClass.LOAD, "dm"),
        OpSpec("fst", OpClass.STORE, "sm"),
        # Control.
        OpSpec("br", OpClass.BRANCH, "t"),
        OpSpec("beq", OpClass.BRANCH, "st", is_conditional_branch=True),
        OpSpec("bne", OpClass.BRANCH, "st", is_conditional_branch=True),
        OpSpec("halt", OpClass.BRANCH, ""),
    ]
}

# Opcodes whose destination or sources are floating-point registers; used by
# the assembler to validate register classes.
FP_DEST_OPS = frozenset({"fadd", "fsub", "fmul", "cvtif", "fld"})
FP_SRC_OPS = frozenset({"fadd", "fsub", "fmul", "cvtfi", "fst"})


def register_name(reg: int) -> str:
    """Human-readable name for a register id."""
    if not 0 <= reg < NUM_REGS:
        raise ValueError(f"register id {reg} out of range")
    if reg < NUM_INT_REGS:
        return f"r{reg}"
    return f"f{reg - FP_REG_BASE}"


def parse_register(token: str) -> int:
    """Parse ``rN`` / ``fN`` into a register id."""
    token = token.strip()
    if len(token) < 2 or token[0] not in "rf":
        raise ValueError(f"bad register {token!r}")
    try:
        index = int(token[1:])
    except ValueError as exc:
        raise ValueError(f"bad register {token!r}") from exc
    if token[0] == "r":
        if not 0 <= index < NUM_INT_REGS:
            raise ValueError(f"integer register out of range: {token!r}")
        return index
    if not 0 <= index < NUM_FP_REGS:
        raise ValueError(f"fp register out of range: {token!r}")
    return FP_REG_BASE + index


def is_fp_register(reg: int) -> bool:
    """Whether a register id names a floating-point register."""
    return reg >= FP_REG_BASE


@dataclass(frozen=True)
class StaticInstruction:
    """One assembled instruction.

    ``dest`` is a register id or None; ``srcs`` is the tuple of source
    register ids (excluding the hard-wired zero register is the renamer's
    job, not the assembler's).  For memory ops ``mem_base`` duplicates the
    base-address register (also present in ``srcs``) and ``mem_offset`` is
    the word offset.  For branches ``target`` is the target pc.
    """

    pc: int
    opcode: str
    opclass: OpClass
    dest: int | None
    srcs: tuple[int, ...]
    imm: int = 0
    mem_base: int | None = None
    mem_offset: int = 0
    target: int | None = None

    @property
    def is_branch(self) -> bool:
        """Whether this is any control-flow instruction (incl. halt)."""
        return self.opclass is OpClass.BRANCH

    @property
    def is_conditional_branch(self) -> bool:
        """Whether this is a conditional branch (predictable)."""
        return OPCODES[self.opcode].is_conditional_branch

    @property
    def is_load(self) -> bool:
        """Whether this instruction reads memory."""
        return self.opclass is OpClass.LOAD

    @property
    def is_store(self) -> bool:
        """Whether this instruction writes memory."""
        return self.opclass is OpClass.STORE

    def __str__(self) -> str:
        parts = [self.opcode]
        if self.dest is not None:
            parts.append(register_name(self.dest))
        parts.extend(register_name(s) for s in self.srcs)
        if "i" in OPCODES[self.opcode].operands:
            parts.append(str(self.imm))
        if self.target is not None:
            parts.append(f"@{self.target}")
        return " ".join(parts)
