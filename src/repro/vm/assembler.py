"""Two-pass assembler for the mini ISA.

Accepts the textual assembly used by the workload kernels::

    loop:
        ld   r7, 0(r2)      # A[i]
        addi r2, r2, 1
        cmpeq r6, r7, r0
        bne  r6, done
        bne  r3, loop
    done:
        halt

Syntax: one instruction per line; ``label:`` lines (or prefixes) define
branch targets; ``#`` starts a comment; memory operands are written
``offset(base)`` with the offset in words.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.vm.isa import (
    FP_DEST_OPS,
    FP_SRC_OPS,
    OPCODES,
    StaticInstruction,
    is_fp_register,
    parse_register,
)

_MEM_OPERAND = re.compile(r"^(-?\d+)\((\w+)\)$")
_LABEL = re.compile(r"^([A-Za-z_]\w*):")


class AssemblyError(ValueError):
    """Raised for malformed assembly input."""

    def __init__(self, line_number: int, message: str):
        super().__init__(f"line {line_number}: {message}")
        self.line_number = line_number


@dataclass(frozen=True)
class Program:
    """An assembled program: instructions plus label metadata."""

    instructions: tuple[StaticInstruction, ...]
    labels: dict[str, int]

    def __len__(self) -> int:
        return len(self.instructions)

    def __getitem__(self, pc: int) -> StaticInstruction:
        return self.instructions[pc]


def assemble(source: str) -> Program:
    """Assemble ``source`` text into a :class:`Program`."""
    stripped_lines = _strip(source)
    labels = _collect_labels(stripped_lines)
    instructions = []
    pc = 0
    for line_number, text in stripped_lines:
        body = _LABEL.sub("", text).strip()
        if not body:
            continue
        instructions.append(_parse_instruction(line_number, pc, body, labels))
        pc += 1
    if not instructions:
        raise AssemblyError(0, "empty program")
    return Program(tuple(instructions), labels)


def _strip(source: str) -> list[tuple[int, str]]:
    """Drop comments and blank lines; keep original line numbers."""
    result = []
    for line_number, raw in enumerate(source.splitlines(), start=1):
        text = raw.split("#", 1)[0].strip()
        if text:
            result.append((line_number, text))
    return result


def _collect_labels(lines: list[tuple[int, str]]) -> dict[str, int]:
    labels: dict[str, int] = {}
    pc = 0
    for line_number, text in lines:
        match = _LABEL.match(text)
        if match:
            name = match.group(1)
            if name in labels:
                raise AssemblyError(line_number, f"duplicate label {name!r}")
            if name in OPCODES:
                raise AssemblyError(line_number, f"label {name!r} shadows an opcode")
            labels[name] = pc
            text = _LABEL.sub("", text).strip()
        if text:
            pc += 1
    return labels


def _parse_instruction(
    line_number: int, pc: int, body: str, labels: dict[str, int]
) -> StaticInstruction:
    parts = body.replace(",", " ").split()
    opcode = parts[0].lower()
    spec = OPCODES.get(opcode)
    if spec is None:
        raise AssemblyError(line_number, f"unknown opcode {opcode!r}")
    operands = parts[1:]
    if len(operands) != len(spec.operands):
        raise AssemblyError(
            line_number,
            f"{opcode} expects {len(spec.operands)} operands, got {len(operands)}",
        )

    dest: int | None = None
    srcs: list[int] = []
    imm = 0
    mem_base: int | None = None
    mem_offset = 0
    target: int | None = None

    for kind, token in zip(spec.operands, operands):
        if kind == "d":
            dest = _register(line_number, token)
        elif kind == "s":
            srcs.append(_register(line_number, token))
        elif kind == "i":
            try:
                imm = int(token, 0)
            except ValueError as exc:
                raise AssemblyError(line_number, f"bad immediate {token!r}") from exc
        elif kind == "m":
            match = _MEM_OPERAND.match(token)
            if not match:
                raise AssemblyError(
                    line_number, f"bad memory operand {token!r} (want offset(base))"
                )
            mem_offset = int(match.group(1))
            mem_base = _register(line_number, match.group(2))
            srcs.append(mem_base)
        elif kind == "t":
            if token not in labels:
                raise AssemblyError(line_number, f"undefined label {token!r}")
            target = labels[token]
        else:  # pragma: no cover - spec strings are fixed above
            raise AssemblyError(line_number, f"bad operand spec {kind!r}")

    _check_register_classes(line_number, opcode, dest, srcs)
    return StaticInstruction(
        pc=pc,
        opcode=opcode,
        opclass=spec.opclass,
        dest=dest,
        srcs=tuple(srcs),
        imm=imm,
        mem_base=mem_base,
        mem_offset=mem_offset,
        target=target,
    )


def _register(line_number: int, token: str) -> int:
    try:
        return parse_register(token)
    except ValueError as exc:
        raise AssemblyError(line_number, str(exc)) from exc


def _check_register_classes(
    line_number: int, opcode: str, dest: int | None, srcs: list[int]
) -> None:
    """Validate int-vs-fp register usage for the opcode."""
    spec = OPCODES[opcode]
    if dest is not None:
        want_fp = opcode in FP_DEST_OPS
        if is_fp_register(dest) != want_fp:
            raise AssemblyError(
                line_number,
                f"{opcode} destination must be "
                f"{'floating-point' if want_fp else 'integer'}",
            )
    if opcode in ("fld", "fst", "ld", "st"):
        # Base register is always integer; for fst the value register is fp.
        base = srcs[-1]
        if is_fp_register(base):
            raise AssemblyError(line_number, f"{opcode} base register must be integer")
        if opcode == "fst" and not is_fp_register(srcs[0]):
            raise AssemblyError(line_number, "fst value register must be fp")
        if opcode == "st" and is_fp_register(srcs[0]):
            raise AssemblyError(line_number, "st value register must be integer")
    elif opcode in FP_SRC_OPS and spec.operands.count("s") == 2:
        if not all(is_fp_register(s) for s in srcs):
            raise AssemblyError(line_number, f"{opcode} sources must be fp")
    elif opcode == "cvtif" and is_fp_register(srcs[0]):
        raise AssemblyError(line_number, "cvtif source must be integer")
    elif opcode == "cvtfi" and not is_fp_register(srcs[0]):
        raise AssemblyError(line_number, "cvtfi source must be fp")
