"""Mini-ISA virtual machine: assembler, interpreter and trace records."""

from repro.vm.assembler import AssemblyError, Program, assemble
from repro.vm.interpreter import ExecutionError, MachineState, iter_trace, run
from repro.vm.isa import (
    BASE_LATENCY,
    FP_REG_BASE,
    NUM_FP_REGS,
    NUM_INT_REGS,
    NUM_REGS,
    OPCODES,
    ZERO_REG,
    OpClass,
    StaticInstruction,
    parse_register,
    register_name,
)
from repro.vm.trace import DynamicInstruction, effective_sources

__all__ = [
    "AssemblyError",
    "BASE_LATENCY",
    "DynamicInstruction",
    "ExecutionError",
    "FP_REG_BASE",
    "MachineState",
    "NUM_FP_REGS",
    "NUM_INT_REGS",
    "NUM_REGS",
    "OPCODES",
    "OpClass",
    "Program",
    "StaticInstruction",
    "ZERO_REG",
    "assemble",
    "effective_sources",
    "iter_trace",
    "parse_register",
    "register_name",
    "run",
]
