"""repro: a reproduction of "A Criticality Analysis of Clustering in
Superscalar Processors" (Salverda & Zilles, MICRO 2005).

The package builds, from scratch, everything the paper's evaluation needs:

* :mod:`repro.vm` -- a mini ISA, assembler and interpreter producing
  dynamic instruction traces;
* :mod:`repro.workloads` -- twelve SPECint-like kernels, one per benchmark
  the paper evaluates;
* :mod:`repro.frontend` / :mod:`repro.memory` -- gshare branch prediction,
  the fetch pipeline and the cache hierarchy of Table 1;
* :mod:`repro.core` -- the cycle-driven clustered-superscalar timing model
  with all steering and scheduling policies;
* :mod:`repro.criticality` -- the Fields critical-path model, slack, the
  binary and likelihood-of-criticality (LoC) predictors, online training;
* :mod:`repro.idealized` -- the Section 2.2 idealized list scheduler;
* :mod:`repro.analysis` / :mod:`repro.experiments` -- the analyses and the
  per-figure reproduction harness.

Quickstart (``repro.api`` is the stable, semver-governed entry point)::

    from repro.api import Workbench, figure
    print(figure("figure4", Workbench(instructions=8000)))
"""

from repro.core import (
    ClusteredSimulator,
    MachineConfig,
    SimulationResult,
    clustered_machine,
    monolithic_machine,
)
from repro.experiments import EXPERIMENTS
from repro.experiments.harness import Workbench
from repro.workloads import SUITE, get_kernel

__version__ = "1.1.0"

__all__ = [
    "ClusteredSimulator",
    "EXPERIMENTS",
    "MachineConfig",
    "SUITE",
    "SimulationResult",
    "Workbench",
    "clustered_machine",
    "get_kernel",
    "monolithic_machine",
    "__version__",
]
