"""Core timing model: machine configs, clustered simulator, policies."""

from repro.core.config import (
    ClusterConfig,
    MachineConfig,
    PAPER_CLUSTER_COUNTS,
    clustered_machine,
    monolithic_machine,
)
from repro.core.instruction import (
    CommitReason,
    DispatchReason,
    InFlight,
    SteerCause,
)
from repro.core.rename import Dependences, build_consumer_lists, extract_dependences
from repro.core.reference import ReferenceSimulator
from repro.core.results import IlpProfile, SimulationResult
from repro.core.simulator import (
    ClusteredSimulator,
    SimulationDeadlock,
    SimulationDiverged,
)

__all__ = [
    "ClusterConfig",
    "ClusteredSimulator",
    "CommitReason",
    "Dependences",
    "DispatchReason",
    "IlpProfile",
    "InFlight",
    "MachineConfig",
    "PAPER_CLUSTER_COUNTS",
    "ReferenceSimulator",
    "SimulationDeadlock",
    "SimulationDiverged",
    "SimulationResult",
    "SteerCause",
    "build_consumer_lists",
    "clustered_machine",
    "extract_dependences",
    "monolithic_machine",
]
