"""Machine configurations: the monolithic baseline and its clustered splits.

Table 1 defines the 8-wide monolithic machine (1x8w).  The clustered
machines divide its execution resources equally among the clusters
(Section 2.1): 2x4w, 4x2w and 8x1w.  Partial resources round up, so each
1-wide cluster keeps a memory port and a floating-point unit.

Beyond the paper, :class:`MachineConfig` also models *heterogeneous*
machines: ``clusters`` is a tuple of per-cluster :class:`ClusterConfig`
entries which may differ in geometry (a fat 4-wide cluster next to thin
2-wide ones), capability (``fp_ports=0`` builds an FP-less cluster) and
execution latency (``latency_overrides`` per op class, e.g. a cluster
whose multiplier is divider-slow).  The legacy homogeneous spelling
(``num_clusters=`` + ``cluster=``) keeps working and produces an
identical object, so every existing result stays bit-identical.
"""

from __future__ import annotations

import math
import warnings
from dataclasses import dataclass, field
from typing import Mapping

from repro.frontend.fetch import FrontEndConfig
from repro.memory.cache import MemoryConfig
from repro.vm.isa import BASE_LATENCY, OpClass


def _normalize_latency_overrides(
    overrides: Mapping[object, int] | tuple[tuple[str, int], ...] | None,
) -> tuple[tuple[str, int], ...]:
    """Canonicalize latency overrides to a sorted ``((opclass, cycles), ...)``.

    Accepts a mapping (keys may be :class:`OpClass` members or their string
    values) or an already-normalized tuple of pairs.  Sorting makes two
    configs with the same overrides compare and hash equal regardless of
    the spelling order.
    """
    if not overrides:
        return ()
    items = overrides.items() if isinstance(overrides, Mapping) else overrides
    normalized = {}
    for key, latency in items:
        opclass = OpClass(key) if not isinstance(key, OpClass) else key
        latency = int(latency)
        if latency < 1:
            raise ValueError(f"latency override for {opclass.value} must be >= 1")
        normalized[opclass.value] = latency
    return tuple(sorted(normalized.items()))


@dataclass(frozen=True)
class ClusterConfig:
    """Issue resources (and optional latency quirks) of one cluster.

    ``fp_ports``/``mem_ports`` may be zero, modelling a cluster that
    simply lacks that functional unit; steering must then route those op
    classes elsewhere (the simulators redirect automatically).
    ``latency_overrides`` maps op-class names to execution latencies that
    replace the ISA-wide :data:`repro.vm.isa.BASE_LATENCY` on this
    cluster only.
    """

    issue_width: int
    int_ports: int
    fp_ports: int
    mem_ports: int
    window_size: int
    latency_overrides: tuple[tuple[str, int], ...] = ()

    def __post_init__(self) -> None:
        if min(self.issue_width, self.int_ports, self.window_size) <= 0:
            raise ValueError(f"cluster resources must be positive: {self}")
        if min(self.fp_ports, self.mem_ports) < 0:
            raise ValueError(f"cluster port counts cannot be negative: {self}")
        object.__setattr__(
            self,
            "latency_overrides",
            _normalize_latency_overrides(self.latency_overrides),
        )

    def ports_for(self, opclass: OpClass) -> int:
        """Number of issue ports usable by ``opclass``."""
        if opclass in (OpClass.LOAD, OpClass.STORE):
            return self.mem_ports
        if opclass is OpClass.FP:
            return self.fp_ports
        return self.int_ports

    def can_execute(self, opclass: OpClass) -> bool:
        """Whether this cluster has any port for ``opclass``."""
        return self.ports_for(opclass) > 0

    @property
    def latency_map(self) -> dict[str, int]:
        """Latency overrides as a plain ``{opclass-name: cycles}`` dict."""
        return dict(self.latency_overrides)

    def latency_for(self, opclass: OpClass) -> int:
        """Execution latency of ``opclass`` on this cluster."""
        for name, latency in self.latency_overrides:
            if name == opclass.value:
                return latency
        return BASE_LATENCY[opclass]


@dataclass(frozen=True, init=False)
class MachineConfig:
    """A complete machine: front end, clustered core, memory.

    The core is ``clusters`` — one :class:`ClusterConfig` per cluster,
    indexed by cluster id everywhere in the simulators.  Uniform machines
    (every entry identical) behave exactly like the legacy single-shared-
    cluster model and keep the ``cluster`` property; heterogeneous
    machines must be addressed per index.
    """

    clusters: tuple[ClusterConfig, ...]
    # Field defaults are declared even though ``__init__`` is hand-written:
    # ``MachineSpec.from_config`` reads them via ``dataclasses.fields`` to
    # decide which overrides a config actually carries.
    rob_size: int = 256
    dispatch_width: int = 8
    commit_width: int = 8
    forwarding_latency: int = 2
    # Global-bypass transfers per cycle, machine-wide.  None models the
    # paper's assumption of enough capacity for peak rates (Section 2.1);
    # a finite value enables the limited-bandwidth analysis the paper
    # defers ("beyond the scope of this paper").
    forwarding_bandwidth: int | None = None
    frontend: FrontEndConfig = None  # type: ignore[assignment]
    memory: MemoryConfig = None  # type: ignore[assignment]

    def __init__(
        self,
        clusters: tuple[ClusterConfig, ...] | list[ClusterConfig] | int | None = None,
        cluster: ClusterConfig | None = None,
        rob_size: int = 256,
        dispatch_width: int = 8,
        commit_width: int = 8,
        forwarding_latency: int = 2,
        forwarding_bandwidth: int | None = None,
        frontend: FrontEndConfig | None = None,
        memory: MemoryConfig | None = None,
        *,
        num_clusters: int | None = None,
    ) -> None:
        # Deprecation shim: the pre-heterogeneity spelling passed
        # ``num_clusters`` (possibly positionally, as the first argument)
        # plus a single shared ``cluster``.
        if isinstance(clusters, int):
            if num_clusters is not None:
                raise TypeError("pass num_clusters positionally or by keyword, not both")
            num_clusters = clusters
            clusters = None
        if cluster is not None and num_clusters is None and clusters is not None:
            # Legacy ``dataclasses.replace(config, cluster=...)``: replace()
            # forwards every field (including ``clusters``) plus the extra
            # ``cluster`` kwarg.  Interpret it as a uniform re-spelling.
            warnings.warn(
                "MachineConfig(cluster=) is deprecated; "
                "pass clusters=(cluster,) * num_clusters instead",
                DeprecationWarning,
                stacklevel=2,
            )
            clusters = (cluster,) * len(tuple(clusters))
            cluster = None
        if num_clusters is not None or cluster is not None:
            if clusters is not None:
                raise TypeError(
                    "pass either clusters=(...) or the legacy "
                    "num_clusters=/cluster= pair, not both"
                )
            if num_clusters is None or cluster is None:
                raise TypeError("legacy spelling needs both num_clusters and cluster")
            warnings.warn(
                "MachineConfig(num_clusters=, cluster=) is deprecated; "
                "pass clusters=(cluster,) * num_clusters instead",
                DeprecationWarning,
                stacklevel=2,
            )
            clusters = (cluster,) * num_clusters
        if clusters is None:
            raise TypeError("MachineConfig needs clusters=(...)")
        object.__setattr__(self, "clusters", tuple(clusters))
        object.__setattr__(self, "rob_size", rob_size)
        object.__setattr__(self, "dispatch_width", dispatch_width)
        object.__setattr__(self, "commit_width", commit_width)
        object.__setattr__(self, "forwarding_latency", forwarding_latency)
        object.__setattr__(self, "forwarding_bandwidth", forwarding_bandwidth)
        object.__setattr__(
            self, "frontend", frontend if frontend is not None else FrontEndConfig()
        )
        object.__setattr__(
            self, "memory", memory if memory is not None else MemoryConfig()
        )
        self._validate()

    def _validate(self) -> None:
        if not self.clusters:
            raise ValueError("need at least one cluster")
        for entry in self.clusters:
            if not isinstance(entry, ClusterConfig):
                raise TypeError(f"clusters entries must be ClusterConfig, got {entry!r}")
        if self.forwarding_latency < 0:
            raise ValueError("forwarding latency cannot be negative")
        if self.forwarding_bandwidth is not None and self.forwarding_bandwidth <= 0:
            raise ValueError("forwarding bandwidth must be positive or None")
        if self.rob_size < self.total_window_size:
            raise ValueError("ROB smaller than aggregate scheduling window")
        # Every op class must be executable somewhere, or any trace using
        # it would deadlock at issue.
        if not any(c.fp_ports > 0 for c in self.clusters):
            raise ValueError("no cluster has FP ports; FP ops could never issue")
        if not any(c.mem_ports > 0 for c in self.clusters):
            raise ValueError("no cluster has memory ports; loads could never issue")

    @property
    def num_clusters(self) -> int:
        """Number of clusters."""
        return len(self.clusters)

    @property
    def is_uniform(self) -> bool:
        """Whether every cluster has identical geometry and latencies."""
        first = self.clusters[0]
        return all(entry == first for entry in self.clusters[1:])

    @property
    def cluster(self) -> ClusterConfig:
        """The shared per-cluster geometry of a *uniform* machine.

        Heterogeneous machines have no single shared cluster; index
        ``clusters`` instead.
        """
        if not self.is_uniform:
            raise ValueError(
                f"machine {self.name!r} is heterogeneous; use .clusters[i]"
            )
        return self.clusters[0]

    @property
    def total_issue_width(self) -> int:
        """Aggregate issue width across clusters."""
        return sum(entry.issue_width for entry in self.clusters)

    @property
    def total_window_size(self) -> int:
        """Aggregate scheduling-window capacity."""
        return sum(entry.window_size for entry in self.clusters)

    @property
    def name(self) -> str:
        """Configuration name: paper-style ``4x2w`` when uniform, else
        a per-cluster width list like ``4w+2w+2w``."""
        if self.is_uniform:
            return f"{len(self.clusters)}x{self.clusters[0].issue_width}w"
        return "+".join(f"{entry.issue_width}w" for entry in self.clusters)


# Table 1 totals for the monolithic machine (public: the spec layer and
# out-of-tree geometry code reference them).
TOTAL_WIDTH = 8
TOTAL_INT = 8
TOTAL_FP = 4
TOTAL_MEM = 4
TOTAL_WINDOW = 128


def clustered_machine(
    num_clusters: int,
    forwarding_latency: int = 2,
    **overrides,
) -> MachineConfig:
    """Build the paper's ``num_clusters``-way split of the 8-wide machine.

    ``num_clusters`` must divide the 8-wide issue bandwidth; the paper's
    configurations are 1 (monolithic), 2, 4 and 8.  Partial per-cluster
    resources round up (Section 2.1, footnote 1).
    """
    if TOTAL_WIDTH % num_clusters != 0:
        raise ValueError(f"{num_clusters} clusters do not divide width {TOTAL_WIDTH}")
    cluster = ClusterConfig(
        issue_width=TOTAL_WIDTH // num_clusters,
        int_ports=max(1, math.ceil(TOTAL_INT / num_clusters)),
        fp_ports=max(1, math.ceil(TOTAL_FP / num_clusters)),
        mem_ports=max(1, math.ceil(TOTAL_MEM / num_clusters)),
        window_size=TOTAL_WINDOW // num_clusters,
    )
    return MachineConfig(
        clusters=(cluster,) * num_clusters,
        forwarding_latency=forwarding_latency,
        **overrides,
    )


def monolithic_machine(**overrides) -> MachineConfig:
    """The Table 1 baseline (1x8w).  Forwarding latency is irrelevant."""
    return clustered_machine(1, **overrides)


def heterogeneous_machine(
    clusters: tuple[ClusterConfig, ...] | list[ClusterConfig],
    forwarding_latency: int = 2,
    rob_size: int | None = None,
    **overrides,
) -> MachineConfig:
    """Build a machine from explicit per-cluster geometries.

    ``rob_size`` defaults to the larger of the legacy 256 and the
    aggregate window, so asymmetric splits never trip the ROB check.
    """
    clusters = tuple(clusters)
    if rob_size is None:
        rob_size = max(256, sum(entry.window_size for entry in clusters))
    return MachineConfig(
        clusters=clusters,
        forwarding_latency=forwarding_latency,
        rob_size=rob_size,
        **overrides,
    )


def _scaled_cluster(issue_width: int, **overrides) -> ClusterConfig:
    """A cluster scaled from Table 1 in proportion to its issue width."""
    fraction = TOTAL_WIDTH // issue_width
    defaults = dict(
        issue_width=issue_width,
        int_ports=max(1, math.ceil(TOTAL_INT / fraction)),
        fp_ports=max(1, math.ceil(TOTAL_FP / fraction)),
        mem_ports=max(1, math.ceil(TOTAL_MEM / fraction)),
        window_size=TOTAL_WINDOW // fraction,
    )
    defaults.update(overrides)
    return ClusterConfig(**defaults)


def fat_thin_machine(forwarding_latency: int = 2, **overrides) -> MachineConfig:
    """The ``4w+2w+2w`` asymmetric split: one fat cluster, two thin ones.

    Total width and window match the 8-wide machine, so results compare
    directly against the paper's uniform splits.
    """
    return heterogeneous_machine(
        (_scaled_cluster(4), _scaled_cluster(2), _scaled_cluster(2)),
        forwarding_latency=forwarding_latency,
        **overrides,
    )


def fp_less_thin_machine(forwarding_latency: int = 2, **overrides) -> MachineConfig:
    """``4w+2w+2w`` where the thin clusters have no FP units.

    All FP work funnels to the fat cluster; integer/memory slices can
    still spread out.  Exercises capability-aware steering.
    """
    return heterogeneous_machine(
        (
            _scaled_cluster(4),
            _scaled_cluster(2, fp_ports=0),
            _scaled_cluster(2, fp_ports=0),
        ),
        forwarding_latency=forwarding_latency,
        **overrides,
    )


def slow_divider_machine(
    num_clusters: int = 2,
    forwarding_latency: int = 2,
    multiply_latency: int = 14,
    **overrides,
) -> MachineConfig:
    """A uniform split where the *last* cluster's multiplier is divider-slow.

    Geometry matches :func:`clustered_machine`; only the final cluster
    carries an ``int_mul`` latency override (default 2x the ISA's 7
    cycles, coreblocks-style multi-cycle divider).
    """
    base = clustered_machine(num_clusters, forwarding_latency, **overrides)
    shared = base.clusters[0]
    slow = ClusterConfig(
        issue_width=shared.issue_width,
        int_ports=shared.int_ports,
        fp_ports=shared.fp_ports,
        mem_ports=shared.mem_ports,
        window_size=shared.window_size,
        latency_overrides={OpClass.INT_MUL: multiply_latency},
    )
    return heterogeneous_machine(
        base.clusters[:-1] + (slow,),
        forwarding_latency=forwarding_latency,
        rob_size=base.rob_size,
        **overrides,
    )


# The cluster counts evaluated throughout the paper.
PAPER_CLUSTER_COUNTS = (2, 4, 8)
