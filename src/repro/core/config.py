"""Machine configurations: the monolithic baseline and its clustered splits.

Table 1 defines the 8-wide monolithic machine (1x8w).  The clustered
machines divide its execution resources equally among the clusters
(Section 2.1): 2x4w, 4x2w and 8x1w.  Partial resources round up, so each
1-wide cluster keeps a memory port and a floating-point unit.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.frontend.fetch import FrontEndConfig
from repro.memory.cache import MemoryConfig
from repro.vm.isa import OpClass


@dataclass(frozen=True)
class ClusterConfig:
    """Issue resources of one cluster."""

    issue_width: int
    int_ports: int
    fp_ports: int
    mem_ports: int
    window_size: int

    def __post_init__(self) -> None:
        if min(
            self.issue_width,
            self.int_ports,
            self.fp_ports,
            self.mem_ports,
            self.window_size,
        ) <= 0:
            raise ValueError(f"cluster resources must be positive: {self}")

    def ports_for(self, opclass: OpClass) -> int:
        """Number of issue ports usable by ``opclass``."""
        if opclass in (OpClass.LOAD, OpClass.STORE):
            return self.mem_ports
        if opclass is OpClass.FP:
            return self.fp_ports
        return self.int_ports


@dataclass(frozen=True)
class MachineConfig:
    """A complete machine: front end, clustered core, memory."""

    num_clusters: int
    cluster: ClusterConfig
    rob_size: int = 256
    dispatch_width: int = 8
    commit_width: int = 8
    forwarding_latency: int = 2
    # Global-bypass transfers per cycle, machine-wide.  None models the
    # paper's assumption of enough capacity for peak rates (Section 2.1);
    # a finite value enables the limited-bandwidth analysis the paper
    # defers ("beyond the scope of this paper").
    forwarding_bandwidth: int | None = None
    frontend: FrontEndConfig = field(default_factory=FrontEndConfig)
    memory: MemoryConfig = field(default_factory=MemoryConfig)

    def __post_init__(self) -> None:
        if self.num_clusters <= 0:
            raise ValueError("need at least one cluster")
        if self.forwarding_latency < 0:
            raise ValueError("forwarding latency cannot be negative")
        if self.forwarding_bandwidth is not None and self.forwarding_bandwidth <= 0:
            raise ValueError("forwarding bandwidth must be positive or None")
        if self.rob_size < self.cluster.window_size * self.num_clusters:
            raise ValueError("ROB smaller than aggregate scheduling window")

    @property
    def total_issue_width(self) -> int:
        """Aggregate issue width across clusters."""
        return self.num_clusters * self.cluster.issue_width

    @property
    def total_window_size(self) -> int:
        """Aggregate scheduling-window capacity."""
        return self.num_clusters * self.cluster.window_size

    @property
    def name(self) -> str:
        """Paper-style configuration name, e.g. ``4x2w``."""
        return f"{self.num_clusters}x{self.cluster.issue_width}w"


# Table 1 totals for the monolithic machine (public: the spec layer and
# out-of-tree geometry code reference them).
TOTAL_WIDTH = 8
TOTAL_INT = 8
TOTAL_FP = 4
TOTAL_MEM = 4
TOTAL_WINDOW = 128


def clustered_machine(
    num_clusters: int,
    forwarding_latency: int = 2,
    **overrides,
) -> MachineConfig:
    """Build the paper's ``num_clusters``-way split of the 8-wide machine.

    ``num_clusters`` must divide the 8-wide issue bandwidth; the paper's
    configurations are 1 (monolithic), 2, 4 and 8.  Partial per-cluster
    resources round up (Section 2.1, footnote 1).
    """
    if TOTAL_WIDTH % num_clusters != 0:
        raise ValueError(f"{num_clusters} clusters do not divide width {TOTAL_WIDTH}")
    cluster = ClusterConfig(
        issue_width=TOTAL_WIDTH // num_clusters,
        int_ports=max(1, math.ceil(TOTAL_INT / num_clusters)),
        fp_ports=max(1, math.ceil(TOTAL_FP / num_clusters)),
        mem_ports=max(1, math.ceil(TOTAL_MEM / num_clusters)),
        window_size=TOTAL_WINDOW // num_clusters,
    )
    return MachineConfig(
        num_clusters=num_clusters,
        cluster=cluster,
        forwarding_latency=forwarding_latency,
        **overrides,
    )


def monolithic_machine(**overrides) -> MachineConfig:
    """The Table 1 baseline (1x8w).  Forwarding latency is irrelevant."""
    return clustered_machine(1, **overrides)


# The cluster counts evaluated throughout the paper.
PAPER_CLUSTER_COUNTS = (2, 4, 8)
