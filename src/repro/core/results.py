"""Simulation results: per-run aggregates plus the full per-instruction record
stream that the criticality analyses consume."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.config import MachineConfig
from repro.core.instruction import InFlight

if TYPE_CHECKING:  # pragma: no cover - telemetry sits above the core layer
    from repro.telemetry.recorder import TelemetryData


@dataclass
class IlpProfile:
    """Per-cycle (available ILP -> achieved ILP) accumulator (Figure 15)."""

    issued_sum: dict[int, int] = field(default_factory=dict)
    cycle_count: dict[int, int] = field(default_factory=dict)

    def record(self, available: int, issued: int) -> None:
        """Record one cycle with ``available`` ready and ``issued`` executed."""
        self.issued_sum[available] = self.issued_sum.get(available, 0) + issued
        self.cycle_count[available] = self.cycle_count.get(available, 0) + 1

    def record_idle(self, cycles: int) -> None:
        """Record ``cycles`` consecutive (0 available, 0 issued) cycles.

        Equivalent to ``cycles`` calls of ``record(0, 0)``; lets the
        event-driven simulator account for skipped idle stretches in bulk.
        """
        self.issued_sum[0] = self.issued_sum.get(0, 0)
        self.cycle_count[0] = self.cycle_count.get(0, 0) + cycles

    def achieved(self, available: int) -> float:
        """Mean instructions issued on cycles with ``available`` ready."""
        count = self.cycle_count.get(available, 0)
        if count == 0:
            return 0.0
        return self.issued_sum[available] / count

    def series(self, max_available: int | None = None) -> list[tuple[int, float]]:
        """(available, achieved) pairs sorted by available ILP."""
        keys = sorted(self.cycle_count)
        if max_available is not None:
            keys = [k for k in keys if k <= max_available]
        return [(k, self.achieved(k)) for k in keys]


@dataclass
class SimulationResult:
    """Everything a run produced."""

    config: MachineConfig
    records: list[InFlight]
    cycles: int
    mispredicted: frozenset[int]
    global_values: int = 0
    l1_hits: int = 0
    l1_misses: int = 0
    ilp_profile: IlpProfile | None = None
    steering_name: str = ""
    scheduler_name: str = ""
    # Optional observability payload (set by the experiment layer when a
    # job requests metrics).  Purely observational: two runs differing
    # only in telemetry have identical timing, and the differential
    # identity check (`results_identical`) ignores this field.
    telemetry: TelemetryData | None = None

    @property
    def instructions(self) -> int:
        """Number of committed instructions."""
        return len(self.records)

    @property
    def cpi(self) -> float:
        """Cycles per committed instruction."""
        if not self.records:
            return 0.0
        return self.cycles / len(self.records)

    @property
    def ipc(self) -> float:
        """Committed instructions per cycle."""
        if self.cycles == 0:
            return 0.0
        return len(self.records) / self.cycles

    @property
    def global_values_per_instruction(self) -> float:
        """Cross-cluster value transfers per instruction (Section 2.1 stat)."""
        if not self.records:
            return 0.0
        return self.global_values / len(self.records)

    @property
    def total_contention_cycles(self) -> int:
        """Raw (not criticality-weighted) ready-but-not-issued cycles."""
        return sum(r.contention_cycles for r in self.records)
