"""Event-driven timing simulator for clustered (and monolithic) machines.

Each cycle runs four phases in order:

1. **commit** -- in-order retirement, up to the commit width;
2. **issue** -- every cluster's scheduler picks among its ready instructions,
   subject to the cluster's issue width and per-class ports; issuing frees
   the window entry, computes the completion time and wakes consumers
   (remote consumers see the value ``forwarding_latency`` cycles later);
3. **fetch** -- the front end delivers correct-path instructions under
   bandwidth and misprediction-redirect constraints;
4. **dispatch/steer** -- in-order dispatch assigns each instruction a cluster
   via the steering policy, allocating a window entry and a ROB entry;
   dispatch stalls on ROB-full, all-windows-full, or a deliberate
   stall-over-steer decision.

Besides timing, the simulator records the *cause* of every dispatch delay,
the last-arriving operand of every instruction, and every steering decision,
so that critical-path attribution (Figures 5/6) is a deterministic replay of
recorded facts.

This is the **optimized** implementation of the timing model; the
straightforward per-cycle loop it replaced lives on verbatim as
:class:`repro.core.reference.ReferenceSimulator`, and the two are
bit-identical on every (trace, config, policy) combination (enforced by
``tests/test_differential.py``).  The optimizations, none of which change
observable behaviour:

* **scan-free wakeup** -- each cluster keeps a wakeup min-heap and a
  priority-ordered ready heap (:class:`~repro.core.wakeup.
  ClusterWakeupQueue`); issue pops at most ``issue_width`` (+ the
  port-blocked few) entries per cycle instead of sorting the whole pool
  with per-element priority-key calls;
* **dispatch-time priorities** -- the scheduling policy's priority key is
  computed once per instruction at dispatch (its inputs -- predictor
  samples and trace index -- never change afterwards);
* **per-trace precomputation** -- port class, base latency and the
  dependence adjacency of every instruction are tabulated once per run
  instead of being re-derived per dispatch/issue;
* **idle-cycle skipping** -- when a cycle commits, issues, fetches and
  dispatches nothing, machine state is provably frozen until the next
  event (earliest wakeup, head-of-ROB completion, or front-end refill),
  so the clock jumps straight to it.  Repeated stalled steering queries
  in the skipped cycles are idempotent by construction, and the ILP
  profile records the skipped cycles as idle in bulk;
* **memoized ready pressure** -- ``cluster_ready_pressure`` caches its
  count per (cluster, cycle, horizon), stamped by the queue's mutation
  counter, so readiness-aware steering's per-dispatch scans collapse.

Observability: an optional ``telemetry`` sink (:mod:`repro.telemetry`)
snapshots per-cluster occupancy, ready/wakeup depths and ready pressure
every ``telemetry.interval`` cycles.  The hook is read-only and costs one
integer comparison per executed cycle when disabled, so telemetry never
changes simulation output and telemetry-off throughput is unchanged.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Protocol, Sequence

from repro.core.config import MachineConfig
from repro.core.instruction import (
    CommitReason,
    DispatchReason,
    InFlight,
    SteerCause,
)
from repro.core.rename import Dependences, extract_dependences
from repro.core.results import IlpProfile, SimulationResult
from repro.core.scheduling.policies import OldestFirstScheduler, SchedulingPolicy
from repro.core.steering.base import SteeringPolicy, capability_redirect
from repro.core.steering.dependence import DependenceSteering
from repro.core.wakeup import ClusterWakeupQueue
from repro.frontend.branch_predictor import (
    GshareBranchPredictor,
    annotate_mispredictions,
)
from repro.frontend.fetch import FrontEndModel
from repro.memory.cache import MemoryHierarchy
from repro.vm.isa import BASE_LATENCY, OpClass
from repro.vm.trace import DynamicInstruction


class PredictorSuiteLike(Protocol):
    """Criticality information sampled at dispatch time."""

    def predict_critical(self, pc: int) -> bool: ...

    def loc(self, pc: int) -> float: ...


class TrainerLike(Protocol):
    """Observer of the retiring instruction stream."""

    def on_commit(self, record: InFlight) -> None: ...

    def finish(self) -> None: ...


class TelemetryLike(Protocol):
    """Optional observability sink (see :mod:`repro.telemetry`).

    ``sample`` must be read-only: attaching telemetry never changes
    simulation output (enforced by ``tests/test_telemetry.py``).
    """

    interval: int

    def sample(self, now, occupancy, queues) -> None: ...


# Sentinel "next telemetry sample" cycle when telemetry is off: larger
# than any reachable cycle count, so the hot loop pays exactly one int
# comparison per executed cycle and the sampling branch never fires.
_NO_SAMPLE = 1 << 62


class SimulationDiverged(RuntimeError):
    """Raised when a run exhausts its ``max_cycles`` guard.

    Either the machine stopped making progress (a simulator bug) or a
    pathological policy/geometry combination genuinely needs more than
    the CPI guard allows.  Carrying the committed/total counts lets the
    execution layer turn this into a typed, non-retryable ``diverged``
    outcome instead of a silent truncation or an opaque crash.
    """

    def __init__(self, limit: int, committed: int, total: int):
        super().__init__(
            f"exceeded {limit} cycles with {committed}/{total} committed"
        )
        self.limit = limit
        self.committed = committed
        self.total = total


# Historical name (pre-dates the typed-outcome layer); same exception.
SimulationDeadlock = SimulationDiverged


def _port_class(opclass: OpClass) -> int:
    """Map an op class onto one of the three port pools: int, fp, mem."""
    if opclass in (OpClass.LOAD, OpClass.STORE):
        return 2
    if opclass is OpClass.FP:
        return 1
    return 0


# Tabulated once: OpClass value -> (port pool, base latency).  Keyed by the
# enum's string value rather than the member itself: ``Enum.__hash__`` is a
# Python-level call, while a str's hash is computed once and cached, so the
# per-instruction precompute lookup stays on the C fast path.
_PORT_AND_LATENCY = {
    opclass._value_: (_port_class(opclass), BASE_LATENCY[opclass])
    for opclass in OpClass
}


def _latency_plane(config, trace, base_lat):
    """Per-cluster execution-latency columns for one trace.

    Clusters without latency overrides alias the shared ``base_lat`` list
    (zero extra memory on uniform machines); clusters that override an op
    class get a derived column.  Identical override tuples share a column.
    """
    clusters = config.clusters
    if all(not entry.latency_overrides for entry in clusters):
        return [base_lat] * len(clusters)
    total = len(trace)
    derived: dict[tuple, list[int]] = {}
    plane = []
    for entry in clusters:
        overrides = entry.latency_overrides
        if not overrides:
            plane.append(base_lat)
            continue
        column = derived.get(overrides)
        if column is None:
            over = dict(overrides)
            column = [
                over.get(trace[i].opclass._value_, base_lat[i])
                for i in range(total)
            ]
            derived[overrides] = column
        plane.append(column)
    return plane


class ClusteredSimulator:
    """Runs one dynamic trace through a configured machine."""

    # Queue implementation, overridable so tests can inject a checking
    # subclass that asserts the wakeup invariants during real runs.
    queue_factory = ClusterWakeupQueue

    def __init__(
        self,
        config: MachineConfig,
        steering: SteeringPolicy | None = None,
        scheduler: SchedulingPolicy | None = None,
        predictors: PredictorSuiteLike | None = None,
        trainer: TrainerLike | None = None,
        collect_ilp: bool = False,
        max_cycles: int | None = None,
        telemetry: TelemetryLike | None = None,
    ):
        self.config = config
        self.steering = steering or DependenceSteering()
        self.scheduler = scheduler or OldestFirstScheduler()
        self.predictors = predictors
        self.trainer = trainer
        self.collect_ilp = collect_ilp
        self.max_cycles = max_cycles
        self.telemetry = telemetry

        # MachineView attributes for the steering policy.
        self.num_clusters = config.num_clusters
        self.forwarding_latency = config.forwarding_latency
        self.now = 0
        self._pressure_tracking = True
        # Per-cluster geometry, indexed by cluster id.  ``_window_size``
        # stays a scalar on uniform machines (the steering fast paths
        # cache it); heterogeneous machines expose ``None`` there, which
        # sends policies down their method-call path.
        self._window_sizes = [entry.window_size for entry in config.clusters]
        self._window_size = (
            self._window_sizes[0] if config.is_uniform else None
        )

    # ------------------------------------------------------------------
    # MachineView protocol
    # ------------------------------------------------------------------
    def window_free(self, cluster: int) -> int:
        """Free scheduling-window entries at ``cluster``."""
        return self._window_sizes[cluster] - self._occupancy[cluster]

    def ports_for(self, cluster: int, opclass: OpClass) -> int:
        """Issue ports at ``cluster`` usable by ``opclass`` (0 = cannot run)."""
        return self.config.clusters[cluster].ports_for(opclass)

    def cluster_latency(self, cluster: int, opclass: OpClass) -> int:
        """Execution latency of ``opclass`` on ``cluster``."""
        return self.config.clusters[cluster].latency_for(opclass)

    def cluster_load(self, cluster: int) -> int:
        """Dispatched-but-unissued instruction count at ``cluster``."""
        return self._occupancy[cluster]

    def record(self, index: int) -> InFlight:
        """State of a previously dispatched instruction."""
        return self._records[index]

    def cluster_ready_pressure(self, cluster: int, horizon: int = 0) -> int:
        """Instructions at ``cluster`` ready now or within ``horizon`` cycles.

        The signal the paper's closing discussion says optimal load
        balancing needs ("a cluster that does not already have, and will
        not soon have, ready instructions").

        Memoized per (cluster, cycle, horizon), stamped by the cluster
        queue's mutation counter: repeated steering queries within one
        dispatch burst cost O(1) instead of rescanning the wakeup heap.
        The memo is only live when the steering policy declares
        ``uses_ready_pressure`` (the hot loop then maintains the mutation
        counters); any other caller gets a fresh, always-correct count.
        """
        queue = self._queues[cluster]
        if not self._pressure_tracking:
            return queue.pressure(self.now, horizon)
        stamp = (self.now, queue.version)
        memo_key = (cluster, horizon)
        hit = self._pressure_memo.get(memo_key)
        if hit is not None and hit[0] == stamp:
            return hit[1]
        count = queue.pressure(self.now, horizon)
        self._pressure_memo[memo_key] = (stamp, count)
        return count

    # ------------------------------------------------------------------
    # Main entry point
    # ------------------------------------------------------------------
    def run(
        self,
        trace: Sequence[DynamicInstruction],
        dependences: Sequence[Dependences] | None = None,
        mispredicted: frozenset[int] | None = None,
    ) -> SimulationResult:
        """Simulate ``trace`` to completion and return the results.

        ``dependences`` and ``mispredicted`` may be precomputed (they are
        config-independent) and shared across runs of the same trace.
        """
        if not trace:
            raise ValueError("cannot simulate an empty trace")
        if dependences is None:
            dependences = extract_dependences(trace)
        if mispredicted is None:
            mispredicted = frozenset(
                annotate_mispredictions(trace, GshareBranchPredictor())
            )

        config = self.config
        num_clusters = config.num_clusters
        fwd = config.forwarding_latency
        steering = self.steering
        steering.reset()

        records = [InFlight(instr, deps) for instr, deps in zip(trace, dependences)]
        self._records = records
        total = len(records)
        # Per-cycle global-bypass usage (only tracked for finite bandwidth).
        self._transfer_used: dict[int, int] = {}
        occupancy = [0] * num_clusters
        self._occupancy = occupancy
        last_issued = [-1] * num_clusters
        self._last_issued = last_issued
        queues = [self.queue_factory() for __ in range(num_clusters)]
        self._queues = queues
        # The queues' heap lists are stable objects (mutated in place), so
        # the hot loop binds them directly instead of hopping through the
        # queue objects every cluster every cycle.
        wakeup_lists = [q.wakeup for q in queues]
        ready_lists = [q.ready for q in queues]
        self._wakeup_lists = wakeup_lists
        self._pressure_memo: dict[tuple[int, int], tuple[tuple[int, int], int]] = {}
        # Mutation counters only matter to the ready-pressure memo; skip
        # their upkeep for policies that never query pressure.
        pressure_tracking = getattr(steering, "uses_ready_pressure", True)
        self._pressure_tracking = pressure_tracking

        # Per-trace precomputation: port class, base latency and dependence
        # adjacency, tabulated once instead of per dispatch/issue.
        pclass = [0] * total
        base_lat = [0] * total
        port_and_latency = _PORT_AND_LATENCY
        for i, instr in enumerate(trace):
            pclass[i], base_lat[i] = port_and_latency[instr.opclass._value_]
        # Per-cluster latency plane: clusters without overrides share the
        # base column, so uniform machines pay nothing beyond one index.
        lat_plane = _latency_plane(config, trace, base_lat)
        adjacency = [deps.all_deps for deps in dependences]
        # Scheduling priority of each instruction, computed once at dispatch.
        prio: list[tuple | None] = [None] * total
        self._prio = prio

        frontend = FrontEndModel(trace, mispredicted, config.frontend)
        memory = MemoryHierarchy(config.memory)
        ilp = IlpProfile() if self.collect_ilp else None

        # Invariant config and collaborator lookups, hoisted out of the loop.
        priority_key = self.scheduler.priority_key
        l1_hit = config.memory.l1.hit_latency
        clusters_cfg = config.clusters
        issue_widths = [entry.issue_width for entry in clusters_cfg]
        port_limits = [
            (entry.int_ports, entry.fp_ports, entry.mem_ports)
            for entry in clusters_cfg
        ]
        # Eligible clusters per port pool, only materialized when some
        # cluster lacks a port class (FP-less / mem-less clusters): the
        # dispatch loop then redirects incapable steering targets.
        capable: list[tuple[int, ...]] | None = None
        if any(limits[1] == 0 or limits[2] == 0 for limits in port_limits):
            capable = [
                tuple(c for c in range(num_clusters) if port_limits[c][pool] > 0)
                for pool in range(3)
            ]
        commit_width = config.commit_width
        dispatch_width = config.dispatch_width
        rob_size = config.rob_size
        predictors = self.predictors
        if predictors is not None:
            predict_critical = predictors.predict_critical
            predictor_loc = predictors.loc
        trainer = self.trainer
        steering_on_commit = (
            steering.on_commit
            if getattr(steering, "wants_commit_events", True)
            else None
        )
        # With no trainer attached the predictors are frozen, so per-PC
        # predictions -- and therefore scheduling priorities, which depend
        # only on the prediction fields and the trace index -- are
        # constants of the run.  Tabulate them up front (one predictor
        # query per unique PC instead of one per dynamic instruction) and
        # let dispatch read the priority array instead of recomputing.
        frozen_priorities = trainer is None
        if frozen_priorities:
            if predictors is not None:
                by_pc: dict[int, tuple[bool, float]] = {}
                by_pc_get = by_pc.get
                for index in range(total):
                    pc = trace[index].pc
                    hit = by_pc_get(pc)
                    if hit is None:
                        hit = by_pc[pc] = (predict_critical(pc), predictor_loc(pc))
                    rec = records[index]
                    rec.predicted_critical, rec.loc = hit
                    prio[index] = priority_key(rec)
            else:
                for index in range(total):
                    prio[index] = priority_key(records[index])

        load_latency = memory.load_latency
        store_access = memory.store_access
        resolve_misprediction = frontend.resolve_misprediction
        frontend_tick = frontend.tick
        fetch_buffer = frontend._buffer
        fetch_pop = fetch_buffer.popleft
        redirect_sources = frontend._redirect_sources
        next_fetch_time = frontend.next_fetch_time
        wake_consumers = self._wake_consumers
        remote_arrival = self._remote_arrival
        completion = CommitReason.COMPLETION
        commit_order = CommitReason.COMMIT_ORDER
        load_class = OpClass.LOAD
        cluster_range = range(num_clusters)

        # Telemetry sampling: with a sink attached, snapshot live state
        # every ``interval`` cycles; without one, ``next_sample`` is a
        # sentinel no run reaches and the branch below never fires.
        telemetry = self.telemetry
        if telemetry is not None and telemetry.interval > 0:
            telemetry_sample = telemetry.sample
            sample_interval = telemetry.interval
            next_sample = 0
        else:
            telemetry_sample = None
            sample_interval = 0
            next_sample = _NO_SAMPLE

        global_values = 0
        rob_count = 0
        commit_ptr = 0
        now = 0
        ports_used = [0, 0, 0]
        # Cause of the current head-of-dispatch block, if any.
        head_block: tuple[DispatchReason, int | None] | None = None
        deadlock_limit = self.max_cycles

        while commit_ptr < total:
            self.now = now
            if now >= next_sample:
                # Read-only snapshot of per-cluster live state; the idle
                # skip can jump past a nominal boundary, in which case the
                # sample lands on the next executed cycle.
                telemetry_sample(now, occupancy, queues)
                next_sample = now - now % sample_interval + sample_interval

            # ---- commit phase -------------------------------------------
            committed = 0
            while committed < commit_width:
                rec = records[commit_ptr]
                complete = rec.complete_time
                if complete < 0 or complete + 1 > now:
                    break
                rec.commit_time = now
                rec.commit_reason = completion if complete + 1 == now else commit_order
                rob_count -= 1
                commit_ptr += 1
                committed += 1
                if trainer is not None:
                    trainer.on_commit(rec)
                if steering_on_commit is not None:
                    steering_on_commit(rec)
                if commit_ptr >= total:
                    break
            if commit_ptr >= total:
                break

            # ---- issue phase --------------------------------------------
            available_this_cycle = 0
            issued_this_cycle = 0
            for cluster in cluster_range:
                wakeup_heap = wakeup_lists[cluster]
                pool = ready_lists[cluster]
                if wakeup_heap and wakeup_heap[0][0] <= now:
                    # Inlined ClusterWakeupQueue.drain (the version bump
                    # is unnecessary: moving a due entry from the wakeup
                    # heap to the ready pool leaves the pressure count
                    # unchanged, and the pop bump below covers the pops).
                    while wakeup_heap and wakeup_heap[0][0] <= now:
                        heappush(pool, heappop(wakeup_heap)[2])
                if not pool:
                    continue
                if ilp is not None:
                    available_this_cycle += len(pool)
                if pressure_tracking:
                    queues[cluster].version += 1  # the pops mutate the pool
                issued = 0
                ports_used[0] = ports_used[1] = ports_used[2] = 0
                blocked = None
                issue_width = issue_widths[cluster]
                limits = port_limits[cluster]
                base_lat_c = lat_plane[cluster]
                while pool and issued < issue_width:
                    entry = heappop(pool)
                    rec = entry[1]
                    index = rec.index
                    port = pclass[index]
                    if ports_used[port] >= limits[port]:
                        if blocked is None:
                            blocked = [entry]
                        else:
                            blocked.append(entry)
                        continue
                    ports_used[port] += 1
                    issued += 1
                    # Begin execution of ``rec`` at cycle ``now``.
                    rec.issue_time = now
                    latency = base_lat_c[index]
                    if port == 2:
                        instr = rec.instr
                        if instr.opclass is load_class:
                            access = load_latency(instr.mem_addr)
                            latency += access
                            extra = access - l1_hit
                            if extra > 0:
                                rec.mem_latency_extra = extra
                        else:
                            store_access(instr.mem_addr)
                    rec.latency = latency
                    complete = now + latency
                    rec.complete_time = complete
                    if index in mispredicted:
                        resolve_misprediction(index, complete)
                    occupancy[cluster] -= 1
                    last_issued[cluster] = index
                    if rec.waiters:
                        global_values += wake_consumers(rec, fwd)
                if blocked is not None:
                    for entry in blocked:
                        heappush(pool, entry)
                issued_this_cycle += issued
            if ilp is not None:
                ilp.record(available_this_cycle, issued_this_cycle)

            # ---- fetch phase --------------------------------------------
            # Inlined tick() early-out: skip the call while fetch is
            # blocked on a branch or the pipeline is still refilling.
            if frontend._blocked_on is None and frontend._unblock_time <= now:
                fetched = frontend_tick(now)
            else:
                fetched = 0

            # ---- dispatch/steer phase -----------------------------------
            dispatched = 0
            stall_guard = None
            while dispatched < dispatch_width:
                if not fetch_buffer:
                    # Inlined ``not frontend.exhausted`` (the buffer is
                    # already known to be empty here, so exhaustion is
                    # just the cursor reaching the end of the trace).
                    blocked_on = frontend._blocked_on
                    if blocked_on is not None and frontend._cursor < total:
                        head_block = (DispatchReason.FETCH_REDIRECT, blocked_on)
                    break
                head = fetch_buffer[0]
                index = head.index
                rec = records[index]
                if rob_count >= rob_size:
                    head_block = (DispatchReason.ROB_FULL, index - rob_size)
                    break
                if not frozen_priorities and predictors is not None:
                    pc = head.pc
                    rec.predicted_critical = predict_critical(pc)
                    rec.loc = predictor_loc(pc)
                decision = steering.choose(rec, self)
                cluster = decision.cluster
                if capable is not None and cluster is not None:
                    pool_c = pclass[index]
                    if port_limits[cluster][pool_c] == 0:
                        # The steered cluster can never execute this op
                        # class (zero ports in its pool); redirect to the
                        # least-loaded capable cluster or stall.
                        decision = capability_redirect(self, capable[pool_c])
                        cluster = decision.cluster
                if cluster is None:
                    blocking = decision.blocking_cluster
                    pred = last_issued[blocking] if blocking is not None else None
                    head_block = (decision.stall_reason, pred)
                    # A stalled steering decision can flip with the passage
                    # of time alone: a completed producer leaves the
                    # policy's in-flight set once its value is visible
                    # everywhere (complete + fwd < now + 1).  Record the
                    # earliest such expiry so idle-cycle skipping never
                    # jumps past the cycle where the reference loop would
                    # have re-evaluated this stall differently.
                    for dep in rec.deps.reg_deps:
                        complete = records[dep].complete_time
                        if complete >= 0:
                            expiry = complete + fwd
                            if expiry > now and (
                                stall_guard is None or expiry < stall_guard
                            ):
                                stall_guard = expiry
                    break

                fetch_pop()
                rec.cluster = cluster
                rec.steer_cause = decision.cause
                rec.dispatch_time = now
                if head_block is not None:
                    self._set_dispatch_reason(rec, head_block, frontend)
                    head_block = None
                else:
                    # Inlined common case of _set_dispatch_reason.
                    redirect = redirect_sources.get(index)
                    if redirect is not None:
                        rec.dispatch_reason = DispatchReason.FETCH_REDIRECT
                        rec.dispatch_pred = redirect
                    elif index:
                        rec.dispatch_reason = DispatchReason.FETCH_BANDWIDTH
                        rec.dispatch_pred = index - 1
                    else:
                        rec.dispatch_reason = DispatchReason.START
                        rec.dispatch_pred = None
                occupancy[cluster] += 1
                rob_count += 1
                if frozen_priorities:
                    priority = prio[index]
                else:
                    priority = priority_key(rec)
                    prio[index] = priority
                # Inlined _wire_dependences: connect to producers, count
                # new cross-cluster transfers, schedule the wakeup if all
                # operands are already timed.
                pending = 0
                deps_tuple = adjacency[index]
                if deps_tuple:
                    mem_dep = rec.deps.mem_dep
                    for dep in deps_tuple:
                        producer = records[dep]
                        if producer.issue_time < 0:
                            producer.waiters.append(rec)
                            pending += 1
                            continue
                        crossed = producer.cluster != cluster and dep != mem_dep
                        if crossed:
                            arrival, new = remote_arrival(producer, cluster, fwd)
                            global_values += new
                        else:
                            arrival = producer.complete_time
                        if arrival >= rec.operand_avail:
                            rec.operand_avail = arrival
                            rec.last_arriving_producer = dep
                            rec.critical_operand_forwarded = crossed
                rec.pending_deps = pending
                if pending == 0:
                    ready_time = now + 1
                    if rec.operand_avail > ready_time:
                        ready_time = rec.operand_avail
                    rec.ready_time = ready_time
                    if ready_time == now + 1 and not pressure_tracking:
                        # Issue for this cycle already ran, so an
                        # already-timed instruction can enter the ready
                        # heap directly and skip the wakeup round-trip.
                        # (With pressure tracking the wakeup heap is the
                        # horizon the pressure count scans, so the entry
                        # must pass through it.)
                        heappush(ready_lists[cluster], (priority, rec))
                    else:
                        heappush(
                            wakeup_lists[cluster],
                            (ready_time, index, (priority, rec)),
                        )
                        if pressure_tracking:
                            queues[cluster].version += 1
                dispatched += 1

            now += 1
            # ---- idle-cycle skipping ------------------------------------
            # A cycle that committed, issued, fetched and dispatched nothing
            # left the machine state bit-identical to its start (stalled
            # steering/predictor queries are idempotent), so every following
            # cycle repeats it verbatim until the next event: the earliest
            # wakeup, the head of the ROB completing, or the front end
            # becoming able to fetch again.  Jump the clock straight there.
            # (Zero issues imply every ready pool is empty: the first entry
            # popped from a non-empty pool always finds a free port.)
            if not (committed or issued_this_cycle or fetched or dispatched):
                head_complete = records[commit_ptr].complete_time
                next_event = head_complete + 1 if head_complete >= 0 else None
                for wakeup_heap in wakeup_lists:
                    if wakeup_heap:
                        ready_time = wakeup_heap[0][0]
                        if next_event is None or ready_time < next_event:
                            next_event = ready_time
                fetch_time = next_fetch_time()
                if fetch_time is not None and (
                    next_event is None or fetch_time < next_event
                ):
                    next_event = fetch_time
                if stall_guard is not None and (
                    next_event is None or stall_guard < next_event
                ):
                    next_event = stall_guard
                if next_event is not None and next_event > now:
                    if ilp is not None:
                        ilp.record_idle(next_event - now)
                    now = next_event
            if deadlock_limit is not None and now > deadlock_limit:
                raise SimulationDiverged(deadlock_limit, commit_ptr, total)

        if trainer is not None:
            trainer.finish()
        return SimulationResult(
            config=config,
            records=records,
            cycles=records[-1].commit_time + 1,
            mispredicted=mispredicted,
            global_values=global_values,
            l1_hits=memory.l1.hits,
            l1_misses=memory.l1.misses,
            ilp_profile=ilp,
            steering_name=steering.name,
            scheduler_name=self.scheduler.name,
        )

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _wake_consumers(self, producer: InFlight, fwd: int) -> int:
        """Notify dispatched consumers that ``producer``'s result is timed.

        Returns the number of new cross-cluster value transfers.
        """
        transfers = 0
        complete = producer.complete_time
        producer_index = producer.index
        producer_cluster = producer.cluster
        queues = self._queues
        wakeup_lists = self._wakeup_lists
        pressure_tracking = self._pressure_tracking
        prio = self._prio
        for waiter in producer.waiters:
            cluster = waiter.cluster
            crossed = cluster != producer_cluster and (
                waiter.deps.mem_dep != producer_index
            )
            if crossed:
                arrival, new = self._remote_arrival(producer, cluster, fwd)
                transfers += new
            else:
                arrival = complete
            if arrival >= waiter.operand_avail:
                waiter.operand_avail = arrival
                waiter.last_arriving_producer = producer_index
                waiter.critical_operand_forwarded = crossed
            pending = waiter.pending_deps - 1
            waiter.pending_deps = pending
            if pending == 0:
                ready_time = waiter.dispatch_time + 1
                if waiter.operand_avail > ready_time:
                    ready_time = waiter.operand_avail
                waiter.ready_time = ready_time
                index = waiter.index
                heappush(
                    wakeup_lists[cluster],
                    (ready_time, index, (prio[index], waiter)),
                )
                if pressure_tracking:
                    queues[cluster].version += 1
        producer.waiters = []
        return transfers

    def _remote_arrival(
        self, producer: InFlight, cluster: int, fwd: int
    ) -> tuple[int, int]:
        """Arrival time of ``producer``'s value at a remote ``cluster``.

        The first request allocates one global-bypass transfer (claiming a
        bandwidth slot when the interconnect is finite); later consumers in
        the same cluster reuse it.  Returns (arrival, 1-if-new-transfer).
        """
        arrival = producer.forwarded_to_clusters.get(cluster)
        if arrival is not None:
            return arrival, 0
        departure = producer.complete_time
        bandwidth = self.config.forwarding_bandwidth
        if bandwidth is not None:
            used = self._transfer_used
            while used.get(departure, 0) >= bandwidth:
                departure += 1
            used[departure] = used.get(departure, 0) + 1
        arrival = departure + fwd
        producer.forwarded_to_clusters[cluster] = arrival
        return arrival, 1

    def _set_dispatch_reason(
        self,
        rec: InFlight,
        head_block: tuple[DispatchReason, int | None] | None,
        frontend: FrontEndModel,
    ) -> None:
        """Record why this instruction dispatched exactly when it did."""
        if head_block is not None:
            rec.dispatch_reason, rec.dispatch_pred = head_block
            if rec.dispatch_reason is DispatchReason.STEER_STALL:
                rec.steer_cause = SteerCause.STALLED
            if rec.dispatch_pred is not None and rec.dispatch_pred < 0:
                # ROB-full at the very start of the run degenerates to fetch.
                rec.dispatch_reason = DispatchReason.FETCH_BANDWIDTH
                rec.dispatch_pred = rec.index - 1 if rec.index > 0 else None
            return
        redirect = frontend.redirect_source(rec.index)
        if redirect is not None:
            rec.dispatch_reason = DispatchReason.FETCH_REDIRECT
            rec.dispatch_pred = redirect
        elif rec.index == 0:
            rec.dispatch_reason = DispatchReason.START
            rec.dispatch_pred = None
        else:
            rec.dispatch_reason = DispatchReason.FETCH_BANDWIDTH
            rec.dispatch_pred = rec.index - 1
