"""Per-cluster event-driven wakeup and ready queues.

One :class:`ClusterWakeupQueue` holds the scheduling-window state of a
single cluster in two min-heaps:

* the **wakeup heap** -- instructions whose operands are all timed but
  not yet available, keyed by the cycle they become ready; entries are
  ``(ready_time, trace_index, ready_entry)`` so ordering is total and
  deterministic without ever comparing records;
* the **ready pool** -- instructions ready to issue, keyed by the
  scheduling policy's priority tuple; entries are ``(priority, record)``
  and priority tuples always end in the trace index, so they are unique
  and the heap realizes exactly the order a full sort would.

The simulator computes each instruction's priority **once at dispatch**
(predictor samples never change afterwards) instead of re-sorting every
cluster's pool every cycle, and drains the wakeup heap lazily -- the
scan-free, event-driven wakeup the per-cycle reference loop lacks.

``version`` is a monotonic mutation counter: it increments on every
structural change to either heap, so derived quantities (the steering
view's ready-pressure count) can be memoized per ``(cycle, version)``
stamp and stay exact -- the memo is a pure cache, never a semantic
change.

Invariants (enforced by ``tests/test_wakeup_invariants.py``):

* :meth:`drain` at cycle ``now`` yields every entry with
  ``ready_time <= now`` and nothing else -- an entry never surfaces
  before its ready time, and never lingers past it;
* :meth:`schedule` is only ever called with a ready time strictly in
  the future, so a drained entry's ready time is never "in the past"
  relative to the cycle that scheduled it;
* :meth:`pressure` equals the brute-force recount over both heaps after
  any sequence of mutations.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Any

__all__ = ["ClusterWakeupQueue"]


class ClusterWakeupQueue:
    """Wakeup heap + priority-ordered ready pool for one cluster."""

    __slots__ = ("wakeup", "ready", "version")

    def __init__(self) -> None:
        # (ready_time, trace_index, ready_entry) min-heap.
        self.wakeup: list[tuple[int, int, Any]] = []
        # (priority_tuple, record) min-heap.
        self.ready: list[Any] = []
        self.version = 0

    # ------------------------------------------------------------------
    def schedule(self, ready_time: int, index: int, entry: Any) -> None:
        """Enqueue ``entry`` to surface in the ready pool at ``ready_time``."""
        heappush(self.wakeup, (ready_time, index, entry))
        self.version += 1

    def drain(self, now: int) -> int:
        """Move every entry with ``ready_time <= now`` into the ready pool.

        Returns the number of entries moved.  O(1) when nothing is due.
        """
        wakeup = self.wakeup
        if not wakeup or wakeup[0][0] > now:
            return 0
        ready = self.ready
        moved = 0
        while wakeup and wakeup[0][0] <= now:
            heappush(ready, heappop(wakeup)[2])
            moved += 1
        self.version += 1
        return moved

    def pop_ready(self) -> Any:
        """Remove and return the highest-priority ready entry."""
        self.version += 1
        return heappop(self.ready)

    def requeue_ready(self, entry: Any) -> None:
        """Reinsert an entry popped this cycle but not issued (port-blocked).

        ``pop_ready`` already bumped ``version`` for the same phase, and
        memo stamps only need to change when contents change, so this
        bumps again for symmetry rather than correctness.
        """
        heappush(self.ready, entry)
        self.version += 1

    # ------------------------------------------------------------------
    def next_wakeup(self) -> int | None:
        """Earliest pending ready time, or None when the heap is empty."""
        return self.wakeup[0][0] if self.wakeup else None

    def ready_count(self) -> int:
        """Instructions ready to issue right now."""
        return len(self.ready)

    def snapshot(self, now: int, horizon: int = 0) -> tuple[int, int, int]:
        """(ready count, wakeup-heap depth, pressure): the telemetry sample.

        Read-only -- safe to call from a telemetry hook mid-run without
        perturbing simulation state.
        """
        return len(self.ready), len(self.wakeup), self.pressure(now, horizon)

    def pressure(self, now: int, horizon: int = 0) -> int:
        """Ready-or-soon-ready count: the steering view's raw signal."""
        deadline = now + horizon
        count = len(self.ready)
        for ready_time, __, ___ in self.wakeup:
            if ready_time <= deadline:
                count += 1
        return count

    def __len__(self) -> int:
        return len(self.ready) + len(self.wakeup)
