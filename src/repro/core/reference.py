"""Reference cycle-driven simulator: the pre-optimization timing loop.

This module freezes the straightforward per-cycle implementation of the
clustered timing model (linear scans of the ready pools, a full
priority-sort of every cluster's ready pool every cycle) exactly as it
stood before :mod:`repro.core.simulator` was rewritten to be
event-driven.  It exists as a *differential oracle*: the optimized
simulator must produce bit-identical :class:`~repro.core.results.
SimulationResult`\\ s to this one on every (trace, config, policy)
combination -- an invariant enforced by ``tests/test_differential.py``
across the full policy matrix and by the golden figure snapshots.

Do not optimize this module.  Its value is that it is obviously correct
and changes only when the *timing semantics* legitimately change -- in
which case the optimized simulator, the goldens and
``CACHE_SCHEMA_VERSION`` must all move in the same commit.

The only post-freeze change is the memoization of
:meth:`ReferenceSimulator.cluster_ready_pressure` (stamped by cycle and
a per-cluster mutation counter, so it is a pure cache with unchanged
observable behaviour): readiness-aware steering queries the pressure of
every cluster on every dispatch attempt, which made the un-memoized scan
quadratic in dispatch width.

Select this path from the CLI with ``--reference-sim`` or per job with
``RunJob(sim="reference")``.
"""

from __future__ import annotations

import heapq
from typing import Sequence

from repro.core.config import MachineConfig
from repro.core.instruction import (
    CommitReason,
    DispatchReason,
    InFlight,
    SteerCause,
)
from repro.core.rename import Dependences, extract_dependences
from repro.core.results import IlpProfile, SimulationResult
from repro.core.scheduling.policies import OldestFirstScheduler, SchedulingPolicy
from repro.core.simulator import (
    PredictorSuiteLike,
    SimulationDiverged,
    TrainerLike,
    _port_class,
)
from repro.core.steering.base import SteeringPolicy, capability_redirect
from repro.core.steering.dependence import DependenceSteering
from repro.frontend.branch_predictor import (
    GshareBranchPredictor,
    annotate_mispredictions,
)
from repro.frontend.fetch import FrontEndModel
from repro.memory.cache import MemoryHierarchy
from repro.vm.trace import DynamicInstruction


class ReferenceSimulator:
    """Runs one dynamic trace through a configured machine (reference path).

    Same constructor and :meth:`run` contract as
    :class:`~repro.core.simulator.ClusteredSimulator`; the two are
    interchangeable and bit-identical, this one is just slower.
    """

    def __init__(
        self,
        config: MachineConfig,
        steering: SteeringPolicy | None = None,
        scheduler: SchedulingPolicy | None = None,
        predictors: PredictorSuiteLike | None = None,
        trainer: TrainerLike | None = None,
        collect_ilp: bool = False,
        max_cycles: int | None = None,
    ):
        self.config = config
        self.steering = steering or DependenceSteering()
        self.scheduler = scheduler or OldestFirstScheduler()
        self.predictors = predictors
        self.trainer = trainer
        self.collect_ilp = collect_ilp
        self.max_cycles = max_cycles

        # MachineView attributes for the steering policy.
        self.num_clusters = config.num_clusters
        self.forwarding_latency = config.forwarding_latency
        self.now = 0
        # Per-cluster geometry and latency overrides, indexed by cluster id.
        self._window_sizes = [entry.window_size for entry in config.clusters]
        self._lat_over = [dict(entry.latency_overrides) for entry in config.clusters]

    # ------------------------------------------------------------------
    # MachineView protocol
    # ------------------------------------------------------------------
    def window_free(self, cluster: int) -> int:
        """Free scheduling-window entries at ``cluster``."""
        return self._window_sizes[cluster] - self._occupancy[cluster]

    def ports_for(self, cluster: int, opclass) -> int:
        """Issue ports ``cluster`` has for ``opclass``'s pool."""
        return self.config.clusters[cluster].ports_for(opclass)

    def cluster_latency(self, cluster: int, opclass) -> int:
        """Execution latency of ``opclass`` on ``cluster``."""
        return self.config.clusters[cluster].latency_for(opclass)

    def cluster_load(self, cluster: int) -> int:
        """Dispatched-but-unissued instruction count at ``cluster``."""
        return self._occupancy[cluster]

    def record(self, index: int) -> InFlight:
        """State of a previously dispatched instruction."""
        return self._records[index]

    def cluster_ready_pressure(self, cluster: int, horizon: int = 0) -> int:
        """Instructions at ``cluster`` ready now or within ``horizon`` cycles.

        The signal the paper's closing discussion says optimal load
        balancing needs ("a cluster that does not already have, and will
        not soon have, ready instructions").

        Memoized per (cluster, cycle, horizon): the cached count is
        reused until the cluster's wakeup list or ready pool mutates, so
        repeated steering queries within one dispatch burst cost O(1).
        """
        stamp = (self.now, self._pressure_version[cluster])
        memo_key = (cluster, horizon)
        hit = self._pressure_memo.get(memo_key)
        if hit is not None and hit[0] == stamp:
            return hit[1]
        deadline = self.now + horizon
        count = len(self._ready_pool[cluster])
        count += sum(1 for t, __ in self._wakeup[cluster] if t <= deadline)
        self._pressure_memo[memo_key] = (stamp, count)
        return count

    # ------------------------------------------------------------------
    # Main entry point
    # ------------------------------------------------------------------
    def run(
        self,
        trace: Sequence[DynamicInstruction],
        dependences: Sequence[Dependences] | None = None,
        mispredicted: frozenset[int] | None = None,
    ) -> SimulationResult:
        """Simulate ``trace`` to completion and return the results.

        ``dependences`` and ``mispredicted`` may be precomputed (they are
        config-independent) and shared across runs of the same trace.
        """
        if not trace:
            raise ValueError("cannot simulate an empty trace")
        if dependences is None:
            dependences = extract_dependences(trace)
        if mispredicted is None:
            mispredicted = frozenset(
                annotate_mispredictions(trace, GshareBranchPredictor())
            )

        config = self.config
        num_clusters = config.num_clusters
        fwd = config.forwarding_latency
        self.steering.reset()

        records = [InFlight(instr, deps) for instr, deps in zip(trace, dependences)]
        self._records = records
        # Per-cycle global-bypass usage (only tracked for finite bandwidth).
        self._transfer_used: dict[int, int] = {}
        self._occupancy = [0] * num_clusters
        self._last_issued = [-1] * num_clusters
        # Per-cluster min-heap of (ready_time, index) for wakeup, plus the
        # pool of currently ready-but-unissued instructions.
        wakeup: list[list[tuple[int, int]]] = [[] for _ in range(num_clusters)]
        self._wakeup = wakeup
        ready_pool: list[list[InFlight]] = [[] for _ in range(num_clusters)]
        self._ready_pool = ready_pool
        self._pressure_memo: dict[tuple[int, int], tuple[tuple[int, int], int]] = {}
        self._pressure_version = [0] * num_clusters

        frontend = FrontEndModel(trace, mispredicted, config.frontend)
        memory = MemoryHierarchy(config.memory)
        ilp = IlpProfile() if self.collect_ilp else None

        key = self.scheduler.priority_key
        l1_hit = config.memory.l1.hit_latency
        clusters_cfg = config.clusters
        port_limits = [
            (entry.int_ports, entry.fp_ports, entry.mem_ports)
            for entry in clusters_cfg
        ]
        # Capability table: for each port pool, the clusters that can ever
        # issue it.  Only built when some cluster has a zero-port pool.
        capable: list[tuple[int, ...]] | None = None
        if any(limits[1] == 0 or limits[2] == 0 for limits in port_limits):
            capable = [
                tuple(c for c in range(num_clusters) if port_limits[c][pool] > 0)
                for pool in range(3)
            ]

        global_values = 0
        rob_count = 0
        commit_ptr = 0
        total = len(records)
        now = 0
        # Cause of the current head-of-dispatch block, if any.
        head_block: tuple[DispatchReason, int | None] | None = None
        deadlock_limit = self.max_cycles

        while commit_ptr < total:
            self.now = now

            # ---- commit phase -------------------------------------------
            committed = 0
            while commit_ptr < total and committed < config.commit_width:
                rec = records[commit_ptr]
                if rec.complete_time < 0 or rec.complete_time + 1 > now:
                    break
                rec.commit_time = now
                rec.commit_reason = (
                    CommitReason.COMPLETION
                    if rec.complete_time + 1 == now
                    else CommitReason.COMMIT_ORDER
                )
                rob_count -= 1
                commit_ptr += 1
                committed += 1
                if self.trainer is not None:
                    self.trainer.on_commit(rec)
                self.steering.on_commit(rec)
            if commit_ptr >= total:
                break

            # ---- issue phase --------------------------------------------
            available_this_cycle = 0
            issued_this_cycle = 0
            for cluster in range(num_clusters):
                heap = wakeup[cluster]
                pool = ready_pool[cluster]
                if heap and heap[0][0] <= now:
                    self._pressure_version[cluster] += 1
                    while heap and heap[0][0] <= now:
                        __, idx = heapq.heappop(heap)
                        pool.append(records[idx])
                if not pool:
                    continue
                available_this_cycle += len(pool)
                self._pressure_version[cluster] += 1
                pool.sort(key=key)
                leftovers: list[InFlight] = []
                issued = 0
                ports_used = [0, 0, 0]
                cluster_cfg = clusters_cfg[cluster]
                limits = port_limits[cluster]
                for rec in pool:
                    if issued >= cluster_cfg.issue_width:
                        leftovers.append(rec)
                        continue
                    pclass = _port_class(rec.instr.opclass)
                    if ports_used[pclass] >= limits[pclass]:
                        leftovers.append(rec)
                        continue
                    ports_used[pclass] += 1
                    issued += 1
                    self._issue(rec, now, memory, l1_hit, frontend, mispredicted)
                    self._occupancy[cluster] -= 1
                    self._last_issued[cluster] = rec.index
                    global_values += self._wake_consumers(rec, fwd)
                ready_pool[cluster] = leftovers
                issued_this_cycle += issued
            if ilp is not None:
                ilp.record(available_this_cycle, issued_this_cycle)

            # ---- fetch phase --------------------------------------------
            frontend.tick(now)

            # ---- dispatch/steer phase -----------------------------------
            dispatched = 0
            while dispatched < config.dispatch_width:
                head = frontend.peek()
                if head is None:
                    if not frontend.exhausted and frontend.blocked_on is not None:
                        head_block = (
                            DispatchReason.FETCH_REDIRECT,
                            frontend.blocked_on,
                        )
                    break
                rec = records[head.index]
                if rob_count >= config.rob_size:
                    head_block = (DispatchReason.ROB_FULL, head.index - config.rob_size)
                    break
                if self.predictors is not None:
                    rec.predicted_critical = self.predictors.predict_critical(head.pc)
                    rec.loc = self.predictors.loc(head.pc)
                decision = self.steering.choose(rec, self)
                if capable is not None and decision.cluster is not None:
                    pool_c = _port_class(rec.instr.opclass)
                    if port_limits[decision.cluster][pool_c] == 0:
                        # The steered cluster can never execute this op
                        # class; redirect to the least-loaded capable
                        # cluster or stall.
                        decision = capability_redirect(self, capable[pool_c])
                if decision.is_stall:
                    blocking = decision.blocking_cluster
                    pred = (
                        self._last_issued[blocking] if blocking is not None else None
                    )
                    head_block = (decision.stall_reason, pred)
                    break

                frontend.pop()
                cluster = decision.cluster
                rec.cluster = cluster
                rec.steer_cause = decision.cause
                rec.dispatch_time = now
                self._set_dispatch_reason(rec, head_block, frontend)
                head_block = None
                self._occupancy[cluster] += 1
                rob_count += 1
                global_values += self._wire_dependences(rec, records, wakeup, fwd)
                dispatched += 1

            now += 1
            if deadlock_limit is not None and now > deadlock_limit:
                raise SimulationDiverged(deadlock_limit, commit_ptr, total)

        if self.trainer is not None:
            self.trainer.finish()
        return SimulationResult(
            config=config,
            records=records,
            cycles=records[-1].commit_time + 1,
            mispredicted=mispredicted,
            global_values=global_values,
            l1_hits=memory.l1.hits,
            l1_misses=memory.l1.misses,
            ilp_profile=ilp,
            steering_name=self.steering.name,
            scheduler_name=self.scheduler.name,
        )

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _issue(
        self,
        rec: InFlight,
        now: int,
        memory: MemoryHierarchy,
        l1_hit: int,
        frontend: FrontEndModel,
        mispredicted: frozenset[int],
    ) -> None:
        """Begin execution of ``rec`` at cycle ``now``."""
        instr = rec.instr
        rec.issue_time = now
        overrides = self._lat_over[rec.cluster]
        if overrides:
            latency = overrides.get(instr.opclass.value, instr.base_latency)
        else:
            latency = instr.base_latency
        if instr.is_load:
            access = memory.load_latency(instr.mem_addr)
            latency += access
            rec.mem_latency_extra = max(0, access - l1_hit)
        elif instr.is_store:
            memory.store_access(instr.mem_addr)
        rec.latency = latency
        rec.complete_time = now + latency
        if instr.index in mispredicted:
            frontend.resolve_misprediction(instr.index, rec.complete_time)

    def _wake_consumers(self, producer: InFlight, fwd: int) -> int:
        """Notify dispatched consumers that ``producer``'s result is timed.

        Returns the number of new cross-cluster value transfers.
        """
        transfers = 0
        complete = producer.complete_time
        for waiter in producer.waiters:
            is_mem_dep = waiter.deps.mem_dep == producer.index
            crossed = not is_mem_dep and waiter.cluster != producer.cluster
            if crossed:
                arrival, new = self._remote_arrival(producer, waiter.cluster, fwd)
                transfers += new
            else:
                arrival = complete
            if arrival >= waiter.operand_avail:
                waiter.operand_avail = arrival
                waiter.last_arriving_producer = producer.index
                waiter.critical_operand_forwarded = crossed
            waiter.pending_deps -= 1
            if waiter.pending_deps == 0:
                waiter.ready_time = max(waiter.dispatch_time + 1, waiter.operand_avail)
                heapq.heappush(
                    self._wakeup[waiter.cluster], (waiter.ready_time, waiter.index)
                )
                self._pressure_version[waiter.cluster] += 1
        producer.waiters = []
        return transfers

    def _wire_dependences(
        self,
        rec: InFlight,
        records: list[InFlight],
        wakeup: list[list[tuple[int, int]]],
        fwd: int,
    ) -> int:
        """Connect a newly dispatched instruction to its producers.

        Returns the number of new cross-cluster value transfers.
        """
        pending = 0
        transfers = 0
        for dep in rec.deps.all_deps:
            producer = records[dep]
            if producer.issue_time < 0:
                producer.waiters.append(rec)
                pending += 1
                continue
            is_mem_dep = rec.deps.mem_dep == dep
            crossed = not is_mem_dep and producer.cluster != rec.cluster
            if crossed:
                arrival, new = self._remote_arrival(producer, rec.cluster, fwd)
                transfers += new
            else:
                arrival = producer.complete_time
            if arrival >= rec.operand_avail:
                rec.operand_avail = arrival
                rec.last_arriving_producer = producer.index
                rec.critical_operand_forwarded = crossed
        rec.pending_deps = pending
        if pending == 0:
            rec.ready_time = max(rec.dispatch_time + 1, rec.operand_avail)
            heapq.heappush(wakeup[rec.cluster], (rec.ready_time, rec.index))
            self._pressure_version[rec.cluster] += 1
        return transfers

    def _remote_arrival(
        self, producer: InFlight, cluster: int, fwd: int
    ) -> tuple[int, int]:
        """Arrival time of ``producer``'s value at a remote ``cluster``.

        The first request allocates one global-bypass transfer (claiming a
        bandwidth slot when the interconnect is finite); later consumers in
        the same cluster reuse it.  Returns (arrival, 1-if-new-transfer).
        """
        arrival = producer.forwarded_to_clusters.get(cluster)
        if arrival is not None:
            return arrival, 0
        departure = producer.complete_time
        bandwidth = self.config.forwarding_bandwidth
        if bandwidth is not None:
            used = self._transfer_used
            while used.get(departure, 0) >= bandwidth:
                departure += 1
            used[departure] = used.get(departure, 0) + 1
        arrival = departure + fwd
        producer.forwarded_to_clusters[cluster] = arrival
        return arrival, 1

    def _set_dispatch_reason(
        self,
        rec: InFlight,
        head_block: tuple[DispatchReason, int | None] | None,
        frontend: FrontEndModel,
    ) -> None:
        """Record why this instruction dispatched exactly when it did."""
        if head_block is not None:
            rec.dispatch_reason, rec.dispatch_pred = head_block
            if rec.dispatch_reason is DispatchReason.STEER_STALL:
                rec.steer_cause = SteerCause.STALLED
            if rec.dispatch_pred is not None and rec.dispatch_pred < 0:
                # ROB-full at the very start of the run degenerates to fetch.
                rec.dispatch_reason = DispatchReason.FETCH_BANDWIDTH
                rec.dispatch_pred = rec.index - 1 if rec.index > 0 else None
            return
        redirect = frontend.redirect_source(rec.index)
        if redirect is not None:
            rec.dispatch_reason = DispatchReason.FETCH_REDIRECT
            rec.dispatch_pred = redirect
        elif rec.index == 0:
            rec.dispatch_reason = DispatchReason.START
            rec.dispatch_pred = None
        else:
            rec.dispatch_reason = DispatchReason.FETCH_BANDWIDTH
            rec.dispatch_pred = rec.index - 1
