"""Register renaming / dependence extraction over a dynamic trace.

The simulator, the idealized list scheduler and the criticality analyses all
consume the same dependence information, so it is extracted once per trace:

* register dependences -- each source register maps to the trace index of
  its last writer;
* memory dependences -- with perfect disambiguation (Table 1), a load
  depends only on the most recent earlier store to the same address.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.vm.trace import DynamicInstruction


@dataclass(frozen=True, slots=True)
class Dependences:
    """Producers of one dynamic instruction, as trace indices.

    ``reg_deps`` is parallel to the instruction's ``srcs`` tuple (deduplicated
    and with untracked initial-state registers dropped).  ``mem_dep`` is the
    forwarding store for a load, or None.
    """

    reg_deps: tuple[int, ...]
    mem_dep: int | None

    @property
    def all_deps(self) -> tuple[int, ...]:
        """Register and memory producers combined."""
        if self.mem_dep is None:
            return self.reg_deps
        return self.reg_deps + (self.mem_dep,)


def extract_dependences(
    trace: Sequence[DynamicInstruction],
) -> list[Dependences]:
    """Compute producer indices for every instruction in ``trace``."""
    last_writer: dict[int, int] = {}
    last_store: dict[int, int] = {}
    result: list[Dependences] = []
    for instr in trace:
        reg_deps: list[int] = []
        for src in instr.srcs:
            producer = last_writer.get(src)
            if producer is not None and producer not in reg_deps:
                reg_deps.append(producer)
        mem_dep = None
        if instr.is_load and instr.mem_addr is not None:
            mem_dep = last_store.get(instr.mem_addr)
            if mem_dep in reg_deps:
                mem_dep = None
        result.append(Dependences(tuple(reg_deps), mem_dep))
        if instr.is_store and instr.mem_addr is not None:
            last_store[instr.mem_addr] = instr.index
        if instr.dest is not None:
            last_writer[instr.dest] = instr.index
    return result


def build_consumer_lists(
    dependences: Sequence[Dependences],
) -> list[list[int]]:
    """Invert :func:`extract_dependences`: consumers of each instruction."""
    consumers: list[list[int]] = [[] for _ in dependences]
    for index, deps in enumerate(dependences):
        for producer in deps.all_deps:
            consumers[producer].append(index)
    return consumers
