"""Per-cluster instruction-scheduling (issue-priority) policies.

Each cluster's scheduler picks among its ready instructions every cycle.
The paper evaluates three priority functions:

* **oldest-first** -- the classic baseline;
* **critical-first** -- Fields et al.'s focused scheduling: predicted-critical
  instructions beat predicted-non-critical ones, ties broken by age;
* **LoC-priority** -- the paper's Section 4 policy: higher likelihood of
  criticality issues first, ties broken by age, which lets the scheduler
  prioritize *among* critical instructions (the spine-vs-rib example of
  Figure 7).
"""

from __future__ import annotations

from repro.core.instruction import InFlight


class SchedulingPolicy:
    """Orders ready instructions; lower keys issue first."""

    name: str = "base"

    def priority_key(self, instr: InFlight) -> tuple:
        """Sort key for ``instr`` among this cycle's ready instructions."""
        raise NotImplementedError

    def describe(self) -> dict:
        """JSON-type description for telemetry / run reports."""
        return {"name": self.name}


class OldestFirstScheduler(SchedulingPolicy):
    """Issue in program order."""

    name = "oldest"

    def priority_key(self, instr: InFlight) -> tuple:
        return (instr.index,)


class CriticalFirstScheduler(SchedulingPolicy):
    """Binary focused scheduling: predicted-critical first, then oldest.

    This reproduces the pathology of Section 4: two instructions both
    predicted critical (e.g. a rib head and the spine) tie, and the tie
    breaks toward the *older* one, which is usually the wrong choice.
    """

    name = "critical"

    def priority_key(self, instr: InFlight) -> tuple:
        return (0 if instr.predicted_critical else 1, instr.index)


class LocScheduler(SchedulingPolicy):
    """LoC-priority scheduling: higher likelihood of criticality first."""

    name = "loc"

    def priority_key(self, instr: InFlight) -> tuple:
        return (-instr.loc, instr.index)
