"""Instruction-scheduling (issue priority) policies."""

from repro.core.scheduling.policies import (
    CriticalFirstScheduler,
    LocScheduler,
    OldestFirstScheduler,
    SchedulingPolicy,
)

__all__ = [
    "CriticalFirstScheduler",
    "LocScheduler",
    "OldestFirstScheduler",
    "SchedulingPolicy",
]
