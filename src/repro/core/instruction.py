"""Per-instruction microarchitectural state and event provenance.

Besides the usual timing fields (dispatch/ready/issue/complete/commit), each
in-flight instruction records *why* each pipeline event happened when it did:
which constraint gated dispatch, which operand arrived last, whether that
operand crossed clusters, and what steering decided.  The critical-path
attribution in :mod:`repro.criticality.critical_path` is a deterministic
backward walk over these recorded causes, so the cycle accounting of
Figures 5 and 6 is exact rather than re-derived.
"""

from __future__ import annotations

import enum

from repro.core.rename import Dependences
from repro.vm.trace import DynamicInstruction


class DispatchReason(enum.Enum):
    """The constraint that determined an instruction's dispatch time."""

    START = "start"  # pipeline fill at the beginning of the run
    FETCH_BANDWIDTH = "fetch_bw"  # in-order dispatch behind the previous instr
    FETCH_REDIRECT = "fetch_redirect"  # waiting on a mispredicted branch
    ROB_FULL = "rob_full"  # waiting on a commit to free a ROB entry
    CLUSTER_FULL = "cluster_full"  # load-balance target windows all full
    STEER_STALL = "steer_stall"  # stall-over-steer policy chose to wait


class SteerCause(enum.Enum):
    """Why steering placed an instruction on the cluster it chose."""

    NO_PRODUCER = "no_producer"  # no in-flight producer; load-balanced
    PRODUCER = "producer"  # collocated with the chosen producer
    DYADIC = "dyadic"  # producers on different clusters; one chosen
    LOAD_BALANCE_FULL = "load_bal_full"  # wanted producer's cluster, was full
    PROACTIVE = "proactive"  # proactively load-balanced away
    STALLED = "stalled"  # dispatched after a stall-over-steer wait
    CAPABILITY = "capability"  # redirected: chosen cluster lacks the FU


class CommitReason(enum.Enum):
    """The constraint that determined an instruction's commit time."""

    COMPLETION = "completion"  # committed right after executing
    COMMIT_ORDER = "commit_order"  # waited behind the previous commit


class InFlight:
    """Mutable microarchitectural state of one dynamic instruction."""

    __slots__ = (
        "instr",
        "deps",
        "index",
        "cluster",
        "dispatch_time",
        "ready_time",
        "issue_time",
        "complete_time",
        "commit_time",
        "pending_deps",
        "operand_avail",
        "last_arriving_producer",
        "critical_operand_forwarded",
        "mem_latency_extra",
        "latency",
        "predicted_critical",
        "loc",
        "dispatch_reason",
        "dispatch_pred",
        "steer_cause",
        "commit_reason",
        "waiters",
        "forwarded_to_clusters",
    )

    def __init__(self, instr: DynamicInstruction, deps: Dependences):
        self.instr = instr
        self.deps = deps
        # Trace index (program order); a plain slot, not a property -- it
        # is read on every wakeup/issue/commit of the hot loop.
        self.index: int = instr.index
        self.cluster: int = -1
        self.dispatch_time: int = -1
        self.ready_time: int = -1
        self.issue_time: int = -1
        self.complete_time: int = -1
        self.commit_time: int = -1
        # Dependence wake-up state.
        self.pending_deps: int = 0
        self.operand_avail: int = 0
        self.last_arriving_producer: int | None = None
        self.critical_operand_forwarded: bool = False
        # Execution latency actually charged (base + cache time for loads).
        self.mem_latency_extra: int = 0
        self.latency: int = 0
        # Predictor outputs sampled at steering time.
        self.predicted_critical: bool = False
        self.loc: float = 0.0
        # Event provenance.
        self.dispatch_reason: DispatchReason = DispatchReason.START
        self.dispatch_pred: int | None = None
        self.steer_cause: SteerCause = SteerCause.NO_PRODUCER
        self.commit_reason: CommitReason = CommitReason.COMPLETION
        # Consumers dispatched before this instruction issued.
        self.waiters: list[InFlight] = []
        # Remote clusters this value was forwarded to -> arrival time there
        # (one transfer per (producer, cluster), reused by later consumers).
        self.forwarded_to_clusters: dict[int, int] = {}

    @property
    def contention_cycles(self) -> int:
        """Cycles spent ready-but-not-issued (resource contention)."""
        if self.issue_time < 0 or self.ready_time < 0:
            return 0
        return self.issue_time - self.ready_time

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"InFlight(#{self.index} {self.instr.opcode} pc={self.instr.pc} "
            f"cl={self.cluster} D={self.dispatch_time} R={self.ready_time} "
            f"I={self.issue_time} E={self.complete_time} C={self.commit_time})"
        )
