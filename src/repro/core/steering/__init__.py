"""Steering (cluster-assignment) policies."""

from repro.core.steering.affinity import AffinitySteering
from repro.core.steering.base import (
    MachineView,
    SteeringDecision,
    SteeringPolicy,
    capability_redirect,
    least_loaded_cluster,
    structural_stall,
)
from repro.core.steering.dependence import (
    CriticalitySteering,
    CriticalitySteeringConfig,
    DependenceSteering,
)
from repro.core.steering.readiness import (
    ReadinessAwareSteering,
    least_ready_pressure_cluster,
)
from repro.core.steering.simple import LoadBalanceSteering, ModuloSteering
from repro.core.steering.stall_baselines import (
    AlwaysStallSteering,
    OccupancyStallSteering,
)

__all__ = [
    "AffinitySteering",
    "AlwaysStallSteering",
    "CriticalitySteering",
    "CriticalitySteeringConfig",
    "DependenceSteering",
    "LoadBalanceSteering",
    "MachineView",
    "ModuloSteering",
    "OccupancyStallSteering",
    "ReadinessAwareSteering",
    "SteeringDecision",
    "SteeringPolicy",
    "capability_redirect",
    "least_loaded_cluster",
    "least_ready_pressure_cluster",
    "structural_stall",
]
