"""FU-affinity steering for heterogeneous machines.

On asymmetric machines (per-cluster FU mixes and latency overrides),
where an op executes matters beyond window occupancy: an FP op steered
to an FP-less thin cluster has to be redirected at dispatch, and an
integer multiply steered to a slow-divider cluster pays double latency.
:class:`AffinitySteering` makes the steering policy itself
capability- and latency-aware, using the cluster-capability view
(``ports_for`` / ``cluster_latency``) the simulators expose through
:class:`~repro.core.steering.base.MachineView`.

The decision procedure, in order:

1. *Fit filter*: clusters with zero ports for the op's class are never
   candidates (so the dispatch-level capability redirect has nothing to
   fix behind this policy's back).
2. *Producer locality*: if an in-flight producer sits on a fit cluster
   with window space, collocate with it -- unless that cluster executes
   the op slower than the best fit cluster (latency beats locality on
   quirky clusters; on uniform machines this clause never fires).
3. *Affinity rank*: otherwise pick the fit cluster minimizing
   ``(latency, -ports, load, index)`` -- fastest execution first, then
   the richest port pool for this class, then load, then determinism.

On a uniform machine every cluster fits and ranks equally, so the policy
degrades to dependence-style steering with load-balance fallback.
"""

from __future__ import annotations

from repro.core.instruction import DispatchReason, InFlight, SteerCause
from repro.core.steering.base import (
    MachineView,
    SteeringDecision,
    SteeringPolicy,
    stall_decision,
    steer_decision,
)

__all__ = ["AffinitySteering"]


class AffinitySteering(SteeringPolicy):
    """Steer toward clusters whose FU mix and latency serve the op."""

    name = "affinity"
    wants_commit_events = False

    def __init__(self, prefer_producer: bool = True) -> None:
        self.prefer_producer = prefer_producer

    def describe(self) -> dict:
        return {"name": self.name, "prefer_producer": self.prefer_producer}

    def choose(self, instr: InFlight, machine: MachineView) -> SteeringDecision:
        opclass = instr.instr.opclass
        ports_for = machine.ports_for
        cluster_latency = machine.cluster_latency
        window_free = machine.window_free
        cluster_load = machine.cluster_load

        best = None
        best_key = None
        best_latency = None
        fullest = None
        fullest_load = -1
        any_fit = False
        for cluster in range(machine.num_clusters):
            ports = ports_for(cluster, opclass)
            if ports == 0:
                continue
            any_fit = True
            load = cluster_load(cluster)
            if load > fullest_load:
                fullest, fullest_load = cluster, load
            if window_free(cluster) <= 0:
                continue
            latency = cluster_latency(cluster, opclass)
            key = (latency, -ports, load, cluster)
            if best_key is None or key < best_key:
                best, best_key, best_latency = cluster, key, latency
        if not any_fit:
            # MachineConfig guarantees every op class is executable
            # somewhere, so this is unreachable on validated configs;
            # degrade to a structural stall rather than crash.
            fullest = max(range(machine.num_clusters), key=cluster_load)
            return stall_decision(DispatchReason.CLUSTER_FULL, fullest)
        if best is None:
            return stall_decision(DispatchReason.CLUSTER_FULL, fullest)

        if self.prefer_producer:
            producer = self._best_producer(instr, machine)
            if producer is not None:
                cluster = producer.cluster
                if (
                    cluster != best
                    and ports_for(cluster, opclass) > 0
                    and window_free(cluster) > 0
                    and cluster_latency(cluster, opclass) <= best_latency
                ):
                    return steer_decision(cluster, SteerCause.PRODUCER)
                if cluster == best:
                    return steer_decision(best, SteerCause.PRODUCER)
        return steer_decision(best, SteerCause.NO_PRODUCER)

    # ------------------------------------------------------------------
    def _best_producer(
        self, instr: InFlight, machine: MachineView
    ) -> InFlight | None:
        """The youngest register producer whose value is still in flight."""
        reg_deps = instr.deps.reg_deps
        if not reg_deps:
            return None
        visible_before = machine.now + 1 - machine.forwarding_latency
        best = None
        record = machine.record
        for dep in reg_deps:
            producer = record(dep)
            complete = producer.complete_time
            if complete < 0 or complete >= visible_before:
                if best is None or producer.index > best.index:
                    best = producer
        return best
