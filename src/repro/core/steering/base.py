"""Steering-policy interface.

Steering (cluster assignment) happens at dispatch, in fetch order, one
instruction at a time.  A policy sees the machine through the
:class:`MachineView` protocol -- cluster occupancies plus the
microarchitectural state of the instruction's producers -- and returns a
:class:`SteeringDecision`: either a cluster, or "stall dispatch this cycle"
(used by stall-over-steer and by the structural all-clusters-full case).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

from repro.core.instruction import DispatchReason, InFlight, SteerCause


class MachineView(Protocol):
    """What a steering policy may observe (implemented by the simulator)."""

    num_clusters: int
    forwarding_latency: int
    now: int

    def window_free(self, cluster: int) -> int:
        """Free scheduling-window entries at ``cluster``."""
        ...

    def cluster_load(self, cluster: int) -> int:
        """In-flight (dispatched, un-issued) instructions at ``cluster``."""
        ...

    def record(self, index: int) -> InFlight:
        """Microarchitectural state of a dispatched instruction."""
        ...

    def cluster_ready_pressure(self, cluster: int, horizon: int = 0) -> int:
        """(Soon-)ready instructions competing for ``cluster``'s ports."""
        ...


@dataclass(frozen=True)
class SteeringDecision:
    """Outcome of one steering choice.

    ``cluster`` is None to stall dispatch this cycle; ``stall_reason`` then
    says why (STEER_STALL for a deliberate policy stall, CLUSTER_FULL for a
    structural one).  ``blocking_cluster`` names the cluster whose window the
    stall is waiting on, for critical-path attribution.
    """

    cluster: int | None
    cause: SteerCause = SteerCause.NO_PRODUCER
    stall_reason: DispatchReason | None = None
    blocking_cluster: int | None = None

    @property
    def is_stall(self) -> bool:
        return self.cluster is None


class SteeringPolicy:
    """Base class for steering policies."""

    name: str = "base"

    def reset(self) -> None:
        """Clear per-run state (called once per simulation)."""

    def choose(self, instr: InFlight, machine: MachineView) -> SteeringDecision:
        """Pick a cluster (or stall) for ``instr``."""
        raise NotImplementedError

    def on_commit(self, instr: InFlight) -> None:
        """Observe a retiring instruction (used by learning policies)."""


def least_loaded_cluster(machine: MachineView, require_space: bool = True) -> int | None:
    """The cluster with the fewest in-flight instructions.

    With ``require_space``, clusters whose window is full are excluded and
    None is returned when every window is full.  Ties break toward the
    lowest-numbered cluster for determinism.
    """
    best = None
    best_load = None
    for cluster in range(machine.num_clusters):
        if require_space and machine.window_free(cluster) <= 0:
            continue
        load = machine.cluster_load(cluster)
        if best_load is None or load < best_load:
            best, best_load = cluster, load
    return best


def structural_stall(machine: MachineView) -> SteeringDecision:
    """The decision to return when every cluster window is full."""
    fullest = max(range(machine.num_clusters), key=machine.cluster_load)
    return SteeringDecision(
        cluster=None,
        stall_reason=DispatchReason.CLUSTER_FULL,
        blocking_cluster=fullest,
    )
