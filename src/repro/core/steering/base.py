"""Steering-policy interface.

Steering (cluster assignment) happens at dispatch, in fetch order, one
instruction at a time.  A policy sees the machine through the
:class:`MachineView` protocol -- cluster occupancies plus the
microarchitectural state of the instruction's producers -- and returns a
:class:`SteeringDecision`: either a cluster, or "stall dispatch this cycle"
(used by stall-over-steer and by the structural all-clusters-full case).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

from repro.core.instruction import DispatchReason, InFlight, SteerCause


class MachineView(Protocol):
    """What a steering policy may observe (implemented by the simulator)."""

    num_clusters: int
    forwarding_latency: int
    now: int

    def window_free(self, cluster: int) -> int:
        """Free scheduling-window entries at ``cluster``."""
        ...

    def cluster_load(self, cluster: int) -> int:
        """In-flight (dispatched, un-issued) instructions at ``cluster``."""
        ...

    def record(self, index: int) -> InFlight:
        """Microarchitectural state of a dispatched instruction."""
        ...

    def cluster_ready_pressure(self, cluster: int, horizon: int = 0) -> int:
        """(Soon-)ready instructions competing for ``cluster``'s ports."""
        ...

    def ports_for(self, cluster: int, opclass) -> int:
        """Issue ports ``cluster`` has for ``opclass``'s pool (0 = cannot)."""
        ...

    def cluster_latency(self, cluster: int, opclass) -> int:
        """Execution latency of ``opclass`` on ``cluster`` (with overrides)."""
        ...


@dataclass(frozen=True, slots=True)
class SteeringDecision:
    """Outcome of one steering choice.

    ``cluster`` is None to stall dispatch this cycle; ``stall_reason`` then
    says why (STEER_STALL for a deliberate policy stall, CLUSTER_FULL for a
    structural one).  ``blocking_cluster`` names the cluster whose window the
    stall is waiting on, for critical-path attribution.
    """

    cluster: int | None
    cause: SteerCause = SteerCause.NO_PRODUCER
    stall_reason: DispatchReason | None = None
    blocking_cluster: int | None = None

    @property
    def is_stall(self) -> bool:
        return self.cluster is None


class SteeringPolicy:
    """Base class for steering policies."""

    name: str = "base"
    # Hot-loop hints for the simulator.  ``wants_commit_events`` lets it
    # skip the per-commit ``on_commit`` callback for policies that do not
    # learn at retirement; ``uses_ready_pressure`` enables the mutation
    # counters that keep ``cluster_ready_pressure`` memoization exact.
    # Both default to the conservative setting for unknown subclasses
    # (callbacks delivered, pressure computed fresh on every query).
    wants_commit_events: bool = True
    uses_ready_pressure: bool = False
    # Cached (machine, records, occupancy, window_size) fast-path view,
    # re-resolved whenever the machine object changes and dropped on
    # reset() -- both simulators reset the policy before rebinding their
    # per-run state lists, so a stale view can never leak across runs.
    _mview: tuple | None = None

    def reset(self) -> None:
        """Clear per-run state (called once per simulation)."""
        self._mview = None

    def describe(self) -> dict:
        """JSON-type description for telemetry / run reports.

        Subclasses with tunable knobs extend the dict; every description
        carries at least the policy ``name``.
        """
        return {"name": self.name}

    def choose(self, instr: InFlight, machine: MachineView) -> SteeringDecision:
        """Pick a cluster (or stall) for ``instr``."""
        raise NotImplementedError

    def on_commit(self, instr: InFlight) -> None:
        """Observe a retiring instruction (used by learning policies)."""


# SteeringDecision is frozen, so identical decisions are freely shared.
# Steering policies return decisions from a tiny value space (cluster x
# cause, or stall-reason x blocking-cluster), and every dispatch allocates
# one -- interning them removes that allocation from the hot path.  The
# cache keys use the enums' string values (hash computed once and cached
# by the str object) instead of the members themselves, whose ``__hash__``
# is a Python-level call.
_STEER_CACHE: dict[tuple[int, str], SteeringDecision] = {}
_STALL_CACHE: dict[tuple[str, int | None], SteeringDecision] = {}


def steer_decision(cluster: int, cause: SteerCause) -> SteeringDecision:
    """Interned "steer to ``cluster`` because ``cause``" decision."""
    key = (cluster, cause._value_)
    decision = _STEER_CACHE.get(key)
    if decision is None:
        decision = SteeringDecision(cluster, cause)
        _STEER_CACHE[key] = decision
    return decision


def stall_decision(
    reason: DispatchReason, blocking_cluster: int | None
) -> SteeringDecision:
    """Interned "stall dispatch because ``reason``" decision."""
    key = (reason._value_, blocking_cluster)
    decision = _STALL_CACHE.get(key)
    if decision is None:
        decision = SteeringDecision(
            cluster=None, stall_reason=reason, blocking_cluster=blocking_cluster
        )
        _STALL_CACHE[key] = decision
    return decision


def least_loaded_cluster(
    machine: MachineView,
    require_space: bool = True,
    eligible: tuple[int, ...] | None = None,
) -> int | None:
    """The cluster with the fewest in-flight instructions.

    With ``require_space``, clusters whose window is full are excluded and
    None is returned when every window is full.  ``eligible`` restricts the
    scan to a subset of clusters (capability redirects).  Ties break toward
    the lowest-numbered cluster for determinism.
    """
    occupancy = getattr(machine, "_occupancy", None)
    if occupancy is not None:
        # Both simulators track occupancy as one list and expose the
        # per-cluster window sizes, so the scan walks the lists directly
        # instead of paying two method calls per cluster.  (Older machine
        # views without ``_window_sizes`` are uniform; one probe recovers
        # the shared size.)
        window_sizes = getattr(machine, "_window_sizes", None)
        if window_sizes is None:
            window_sizes = [machine.window_free(0) + occupancy[0]] * len(occupancy)
        best = None
        best_load = None
        candidates = eligible if eligible is not None else range(len(occupancy))
        for cluster in candidates:
            load = occupancy[cluster]
            if require_space and load >= window_sizes[cluster]:
                continue
            if best_load is None or load < best_load:
                best, best_load = cluster, load
        return best
    window_free = machine.window_free
    cluster_load = machine.cluster_load
    best = None
    best_load = None
    candidates = eligible if eligible is not None else range(machine.num_clusters)
    for cluster in candidates:
        if require_space and window_free(cluster) <= 0:
            continue
        load = cluster_load(cluster)
        if best_load is None or load < best_load:
            best, best_load = cluster, load
    return best


def structural_stall(machine: MachineView) -> SteeringDecision:
    """The decision to return when every cluster window is full."""
    fullest = max(range(machine.num_clusters), key=machine.cluster_load)
    return stall_decision(DispatchReason.CLUSTER_FULL, fullest)


def capability_redirect(
    machine: MachineView, eligible: tuple[int, ...]
) -> SteeringDecision:
    """Re-steer an op whose chosen cluster cannot execute its class.

    Picks the least-loaded cluster among ``eligible`` (those with ports for
    the op's pool); when every capable window is full, stalls dispatch on
    the fullest capable cluster.  Both simulators apply this identically at
    dispatch, after the policy's choice, so policies stay capability-blind.
    """
    best = least_loaded_cluster(machine, eligible=eligible)
    if best is not None:
        return steer_decision(best, SteerCause.CAPABILITY)
    fullest = max(eligible, key=machine.cluster_load)
    return stall_decision(DispatchReason.CLUSTER_FULL, fullest)
