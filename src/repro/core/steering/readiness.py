"""Readiness-aware load balancing (the paper's closing discussion).

Section 7 attributes the residual ~5% gap to "an inefficient distribution
of ready instructions across the clusters": when proactive load-balancing
pushes a consumer away, "these instructions must be assigned to a cluster
that does not already have (and will not soon have) ready instructions.  In
other words, choosing the least-full cluster in these circumstances is not
always appropriate."

This policy explores that idea: wherever the criticality stack would pick
the least-*loaded* cluster, it instead picks the cluster with the least
*ready pressure* -- the number of instructions already ready (or becoming
ready within a short horizon) that will compete for the same issue ports.
The simulator exposes this through the ``cluster_ready_pressure`` view
method (steering in a real machine would need to track readiness
explicitly, which is exactly the implementation difficulty the paper's
Section 8 anticipates -- this is a limit study, like the paper's own
proactive implementation).
"""

from __future__ import annotations

from repro.core.instruction import InFlight, SteerCause
from repro.core.steering.base import (
    MachineView,
    SteeringDecision,
    steer_decision,
    structural_stall,
)
from repro.core.steering.dependence import (
    CriticalitySteering,
    CriticalitySteeringConfig,
)


def least_ready_pressure_cluster(
    machine: MachineView, horizon: int
) -> int | None:
    """Cluster with the fewest (soon-)ready instructions and window space."""
    best = None
    best_key = None
    for cluster in range(machine.num_clusters):
        if machine.window_free(cluster) <= 0:
            continue
        pressure = machine.cluster_ready_pressure(cluster, horizon)
        key = (pressure, machine.cluster_load(cluster))
        if best_key is None or key < best_key:
            best, best_key = cluster, key
    return best


class ReadinessAwareSteering(CriticalitySteering):
    """The full policy stack with readiness-aware load balancing."""

    uses_ready_pressure = True

    def __init__(
        self,
        config: CriticalitySteeringConfig | None = None,
        horizon: int = 2,
    ):
        if horizon < 0:
            raise ValueError("horizon must be non-negative")
        super().__init__(
            config
            or CriticalitySteeringConfig(
                preference="loc", stall_over_steer=True, proactive=True
            )
        )
        self.horizon = horizon
        self.name += "+ready"

    def _balance_target(self, machine: MachineView) -> int | None:
        return least_ready_pressure_cluster(machine, self.horizon)

    # Override the two load-balance sites of the parent class.
    def choose(self, instr: InFlight, machine: MachineView) -> SteeringDecision:
        decision = super().choose(instr, machine)
        if decision.is_stall or decision.cause not in (
            SteerCause.NO_PRODUCER,
            SteerCause.PROACTIVE,
            SteerCause.LOAD_BALANCE_FULL,
        ):
            return decision
        target = self._balance_target(machine)
        if target is None:
            return structural_stall(machine)
        return steer_decision(target, decision.cause)
