"""Dependence-based steering (Kemp & Franklin style) and the paper's
criticality-directed refinements, composed as one configurable policy stack.

The baseline collocates a consumer with an in-flight producer, falling back
to the least-loaded cluster.  The refinements, cumulative in the paper's
Figure 14:

* **focused steering** (Fields et al.): when several producers compete, the
  one holding a *predicted-critical* producer wins;
* **LoC preference**: ties among producers resolve toward the highest
  likelihood of criticality;
* **stall-over-steer** (Section 5): if the desired cluster is full and the
  consumer's LoC is at or above a threshold (30% in the paper), stall
  dispatch instead of load-balancing the critical chain away;
* **proactive load-balancing** (Section 6): steer only the most critical
  consumer to the producer's cluster and push the rest away, using a
  retire-time-learned table of "balance candidate" PCs plus the
  followed-producer rule.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.instruction import DispatchReason, InFlight, SteerCause
from repro.core.steering.base import (
    _STEER_CACHE,
    MachineView,
    SteeringDecision,
    SteeringPolicy,
    least_loaded_cluster,
    stall_decision,
    steer_decision,
    structural_stall,
)
from repro.util.counters import SaturatingCounter

# Hoisted pieces of the interned-decision lookup (see base._STEER_CACHE):
# the hot ``choose`` bodies below probe the cache inline with string cause
# values instead of paying a call plus an enum access per dispatch.
_steer_cache_get = _STEER_CACHE.get
_NO_PRODUCER = SteerCause.NO_PRODUCER
_PRODUCER = SteerCause.PRODUCER
_DYADIC = SteerCause.DYADIC
_NO_PRODUCER_V = _NO_PRODUCER._value_
_PRODUCER_V = _PRODUCER._value_
_DYADIC_V = _DYADIC._value_


class DependenceSteering(SteeringPolicy):
    """Plain dependence-based steering with load-balance fallback."""

    name = "dependence"
    wants_commit_events = False

    def choose(self, instr: InFlight, machine: MachineView) -> SteeringDecision:
        view = self._mview
        if view is None or view[0] is not machine:
            self._mview = view = (
                machine,
                getattr(machine, "_records", None),
                getattr(machine, "_occupancy", None),
                getattr(machine, "_window_size", None),
            )
        records = view[1]
        # Inlined _in_flight_producers for the direct-record-list case:
        # the single-producer outcome (by far the most common) never
        # builds a list at all.
        first = None
        producers = None
        if records is not None:
            reg_deps = instr.deps.reg_deps
            if reg_deps:
                visible_before = machine.now + 1 - machine.forwarding_latency
                for dep in reg_deps:
                    producer = records[dep]
                    complete = producer.complete_time
                    if complete < 0 or complete >= visible_before:
                        if first is None:
                            first = producer
                        elif producers is None:
                            producers = [first, producer]
                        else:
                            producers.append(producer)
        else:
            found = self._in_flight_producers(instr, machine)
            if found:
                first = found[0]
                if len(found) > 1:
                    producers = found

        if first is None:
            cluster = least_loaded_cluster(machine)
            if cluster is None:
                return structural_stall(machine)
            decision = _steer_cache_get((cluster, _NO_PRODUCER_V))
            return decision if decision is not None else steer_decision(
                cluster, _NO_PRODUCER
            )

        if producers is None:
            ranked = (first,)
            cause_value = _PRODUCER_V
        else:
            ranked = self._ranked_producers(producers)
            first_cluster = producers[0].cluster
            cause_value = _PRODUCER_V
            for producer in producers:
                if producer.cluster != first_cluster:
                    cause_value = _DYADIC_V
                    break
        # "Whenever there is a choice of cluster to which a consumer can be
        # sent": any producer's cluster keeps locality, so try them all in
        # preference order before giving up.  When the machine exposes its
        # occupancy list and window size, test for space directly instead
        # of paying a method call per candidate.
        window_size = view[3]
        if window_size is not None:
            occupancy = view[2]
            for producer in ranked:
                cluster = producer.cluster
                if occupancy[cluster] < window_size:
                    decision = _steer_cache_get((cluster, cause_value))
                    return decision if decision is not None else steer_decision(
                        cluster, SteerCause(cause_value)
                    )
        else:
            window_free = machine.window_free
            for producer in ranked:
                cluster = producer.cluster
                if window_free(cluster) > 0:
                    decision = _steer_cache_get((cluster, cause_value))
                    return decision if decision is not None else steer_decision(
                        cluster, SteerCause(cause_value)
                    )
        return self._handle_full_desired(instr, machine, ranked[0], ranked[0].cluster)

    def _handle_full_desired(
        self,
        instr: InFlight,
        machine: MachineView,
        preferred: InFlight,
        desired: int,
    ) -> SteeringDecision:
        """Desired cluster is full: baseline behaviour is to load-balance."""
        cluster = least_loaded_cluster(machine)
        if cluster is None:
            return structural_stall(machine)
        return steer_decision(cluster, SteerCause.LOAD_BALANCE_FULL)

    def _in_flight_producers(
        self, instr: InFlight, machine: MachineView
    ) -> list[InFlight]:
        """Register producers whose value is not yet visible everywhere.

        A producer still matters to steering while its result has not been
        broadcast to remote clusters: until ``complete + forwarding`` has
        passed, collocating with it saves the forwarding latency.
        """
        reg_deps = instr.deps.reg_deps
        if not reg_deps:
            return []
        producers = []
        visible_before = machine.now + 1 - machine.forwarding_latency
        # Index the simulator's record list directly when it is exposed;
        # ``machine.record`` is the same lookup behind a method call.
        records = getattr(machine, "_records", None)
        if records is not None:
            for dep in reg_deps:
                producer = records[dep]
                complete = producer.complete_time
                if complete < 0 or complete >= visible_before:
                    producers.append(producer)
            return producers
        record = machine.record
        for dep in reg_deps:
            producer = record(dep)
            complete = producer.complete_time
            if complete < 0 or complete >= visible_before:
                producers.append(producer)
        return producers

    def _ranked_producers(self, producers: list[InFlight]) -> list[InFlight]:
        """Producers in preference order (best first).

        Baseline preference: the most recently fetched producer -- the
        youngest in-flight operand is the one most likely to arrive last, so
        collocating with it hides the most latency.
        """
        if len(producers) == 1:
            return producers
        return sorted(producers, key=lambda p: p.index, reverse=True)


@dataclass
class CriticalitySteeringConfig:
    """Knobs for the criticality-directed steering stack."""

    # 'binary' prefers predicted-critical producers (focused steering);
    # 'loc' prefers the highest-LoC producer (used once LoC exists).
    preference: str = "binary"
    stall_over_steer: bool = False
    stall_loc_threshold: float = 0.30
    proactive: bool = False
    # Proactive override (Section 7): refuse to load-balance a consumer whose
    # LoC exceeds ``keep_min_loc`` and is at least ``keep_fraction`` of the
    # producer's LoC -- it is probably the most critical consumer.
    keep_min_loc: float = 0.05
    keep_fraction: float = 0.5

    def __post_init__(self) -> None:
        if self.preference not in ("binary", "loc"):
            raise ValueError(f"unknown preference {self.preference!r}")
        if not 0.0 <= self.stall_loc_threshold <= 1.0:
            raise ValueError("stall_loc_threshold must be in [0, 1]")


class CriticalitySteering(DependenceSteering):
    """Dependence steering plus the paper's criticality policies."""

    def __init__(self, config: CriticalitySteeringConfig | None = None):
        self.config = config or CriticalitySteeringConfig()
        parts = ["focused" if self.config.preference == "binary" else "loc"]
        if self.config.stall_over_steer:
            parts.append("stall")
        if self.config.proactive:
            parts.append("proactive")
        self.name = "+".join(parts)
        # Only the proactive stack learns from retiring instructions; the
        # consumer-LoC and followed-producer bookkeeping below feeds that
        # learning exclusively, so non-proactive configurations skip it.
        self._proactive = self.config.proactive
        self.wants_commit_events = self.config.proactive
        self.reset()

    def reset(self) -> None:
        self._mview = None
        # Producers already followed by one consumer (proactive rule).
        self._followed: set[int] = set()
        # Highest consumer LoC seen per producing instruction (trace index).
        self._max_consumer_loc: dict[int, float] = {}
        # Learned balance-candidate table, PC-indexed.  A PC trains toward
        # "candidate" whenever a retiring instance was not its producer's most
        # critical consumer.
        self._balance_candidates: dict[int, SaturatingCounter] = {}

    def choose(self, instr: InFlight, machine: MachineView) -> SteeringDecision:
        view = self._mview
        if view is None or view[0] is not machine:
            self._mview = view = (
                machine,
                getattr(machine, "_records", None),
                getattr(machine, "_occupancy", None),
                getattr(machine, "_window_size", None),
            )
        records = view[1]
        first = None
        producers = None
        if records is not None:
            reg_deps = instr.deps.reg_deps
            if reg_deps:
                visible_before = machine.now + 1 - machine.forwarding_latency
                for dep in reg_deps:
                    producer = records[dep]
                    complete = producer.complete_time
                    if complete < 0 or complete >= visible_before:
                        if first is None:
                            first = producer
                        elif producers is None:
                            producers = [first, producer]
                        else:
                            producers.append(producer)
        else:
            found = self._in_flight_producers(instr, machine)
            if found:
                first = found[0]
                if len(found) > 1:
                    producers = found

        if first is None:
            cluster = least_loaded_cluster(machine)
            if cluster is None:
                return structural_stall(machine)
            decision = _steer_cache_get((cluster, _NO_PRODUCER_V))
            return decision if decision is not None else steer_decision(
                cluster, _NO_PRODUCER
            )

        if producers is None:
            ranked = (first,)
            cause_value = _PRODUCER_V
            preferred = first
        else:
            ranked = self._ranked_producers(producers)
            preferred = ranked[0]
            first_cluster = producers[0].cluster
            cause_value = _PRODUCER_V
            for producer in producers:
                if producer.cluster != first_cluster:
                    cause_value = _DYADIC_V
                    break

        proactive = self._proactive
        if proactive:
            self._note_consumer(instr, producers if producers is not None else ranked)
            if self._should_balance_away(instr, preferred):
                cluster = least_loaded_cluster(machine)
                if cluster is None:
                    return structural_stall(machine)
                self._followed.add(preferred.index)
                return steer_decision(cluster, SteerCause.PROACTIVE)

        window_size = view[3]
        if window_size is not None:
            occupancy = view[2]
            for producer in ranked:
                cluster = producer.cluster
                if occupancy[cluster] < window_size:
                    if proactive:
                        self._followed.add(producer.index)
                    decision = _steer_cache_get((cluster, cause_value))
                    return decision if decision is not None else steer_decision(
                        cluster, SteerCause(cause_value)
                    )
        else:
            window_free = machine.window_free
            for producer in ranked:
                cluster = producer.cluster
                if window_free(cluster) > 0:
                    if proactive:
                        self._followed.add(producer.index)
                    decision = _steer_cache_get((cluster, cause_value))
                    return decision if decision is not None else steer_decision(
                        cluster, SteerCause(cause_value)
                    )
        return self._handle_full_desired(instr, machine, preferred, preferred.cluster)

    def describe(self) -> dict:
        config = self.config
        return {
            "name": self.name,
            "preference": config.preference,
            "stall_over_steer": config.stall_over_steer,
            "stall_loc_threshold": config.stall_loc_threshold,
            "proactive": config.proactive,
            "keep_min_loc": config.keep_min_loc,
            "keep_fraction": config.keep_fraction,
        }

    def on_commit(self, instr: InFlight) -> None:
        """Retire-time learning of balance candidates (Section 7)."""
        if not self.config.proactive:
            return
        for dep in instr.deps.reg_deps:
            best = self._max_consumer_loc.get(dep)
            if best is None:
                continue
            counter = self._balance_candidates.get(instr.instr.pc)
            if counter is None:
                counter = SaturatingCounter(bits=2, increment=1, decrement=1, threshold=2)
                self._balance_candidates[instr.instr.pc] = counter
            counter.train(instr.loc < best)
            # The per-value records are no longer needed once a consumer of
            # the value retires behind it; allow the dict to stay bounded.
            if len(self._max_consumer_loc) > 65536:
                self._max_consumer_loc.clear()

    def _ranked_producers(self, producers: list[InFlight]) -> list[InFlight]:
        if len(producers) == 1:
            return producers
        if self.config.preference == "binary":
            # Focused steering: a predicted-critical producer always wins.
            return sorted(
                producers,
                key=lambda p: (p.predicted_critical, p.index),
                reverse=True,
            )
        return sorted(producers, key=lambda p: (p.loc, p.index), reverse=True)

    def _handle_full_desired(
        self,
        instr: InFlight,
        machine: MachineView,
        preferred: InFlight,
        desired: int,
    ) -> SteeringDecision:
        if (
            self.config.stall_over_steer
            and instr.loc >= self.config.stall_loc_threshold
        ):
            return stall_decision(DispatchReason.STEER_STALL, desired)
        cluster = least_loaded_cluster(machine)
        if cluster is None:
            return structural_stall(machine)
        return steer_decision(cluster, SteerCause.LOAD_BALANCE_FULL)

    def _note_consumer(self, instr: InFlight, producers: list[InFlight]) -> None:
        """Track the most critical consumer seen for each produced value."""
        for producer in producers:
            best = self._max_consumer_loc.get(producer.index)
            if best is None or instr.loc > best:
                self._max_consumer_loc[producer.index] = instr.loc

    def _should_balance_away(self, instr: InFlight, preferred: InFlight) -> bool:
        """Proactive rule: push this consumer off the producer's cluster?"""
        config = self.config
        # Retire-time learning is the strongest signal: a PC that keeps
        # retiring as not-its-producer's-most-critical-consumer is balanced
        # away even if its own LoC is respectable (Figure 13(b): the loads
        # make room for the recurrence).
        counter = self._balance_candidates.get(instr.instr.pc)
        if counter is not None and counter.predict():
            return True
        # Single-consumer rule: the producer has already been followed --
        # unless the override says this is the most critical consumer
        # (LoC above 5% and at least half the producer's).
        if (
            instr.loc > config.keep_min_loc
            and instr.loc >= config.keep_fraction * preferred.loc
        ):
            return False
        return preferred.index in self._followed
