"""Dependence-based steering (Kemp & Franklin style) and the paper's
criticality-directed refinements, composed as one configurable policy stack.

The baseline collocates a consumer with an in-flight producer, falling back
to the least-loaded cluster.  The refinements, cumulative in the paper's
Figure 14:

* **focused steering** (Fields et al.): when several producers compete, the
  one holding a *predicted-critical* producer wins;
* **LoC preference**: ties among producers resolve toward the highest
  likelihood of criticality;
* **stall-over-steer** (Section 5): if the desired cluster is full and the
  consumer's LoC is at or above a threshold (30% in the paper), stall
  dispatch instead of load-balancing the critical chain away;
* **proactive load-balancing** (Section 6): steer only the most critical
  consumer to the producer's cluster and push the rest away, using a
  retire-time-learned table of "balance candidate" PCs plus the
  followed-producer rule.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.instruction import DispatchReason, InFlight, SteerCause
from repro.core.steering.base import (
    MachineView,
    SteeringDecision,
    SteeringPolicy,
    least_loaded_cluster,
    structural_stall,
)
from repro.util.counters import SaturatingCounter


class DependenceSteering(SteeringPolicy):
    """Plain dependence-based steering with load-balance fallback."""

    name = "dependence"

    def choose(self, instr: InFlight, machine: MachineView) -> SteeringDecision:
        producers = self._in_flight_producers(instr, machine)
        if not producers:
            cluster = least_loaded_cluster(machine)
            if cluster is None:
                return structural_stall(machine)
            return SteeringDecision(cluster, SteerCause.NO_PRODUCER)

        ranked = self._ranked_producers(producers)
        clusters = {p.cluster for p in producers}
        cause = SteerCause.DYADIC if len(clusters) > 1 else SteerCause.PRODUCER
        # "Whenever there is a choice of cluster to which a consumer can be
        # sent": any producer's cluster keeps locality, so try them all in
        # preference order before giving up.
        for producer in ranked:
            if machine.window_free(producer.cluster) > 0:
                return SteeringDecision(producer.cluster, cause)
        return self._handle_full_desired(instr, machine, ranked[0], ranked[0].cluster)

    def _handle_full_desired(
        self,
        instr: InFlight,
        machine: MachineView,
        preferred: InFlight,
        desired: int,
    ) -> SteeringDecision:
        """Desired cluster is full: baseline behaviour is to load-balance."""
        cluster = least_loaded_cluster(machine)
        if cluster is None:
            return structural_stall(machine)
        return SteeringDecision(cluster, SteerCause.LOAD_BALANCE_FULL)

    def _in_flight_producers(
        self, instr: InFlight, machine: MachineView
    ) -> list[InFlight]:
        """Register producers whose value is not yet visible everywhere.

        A producer still matters to steering while its result has not been
        broadcast to remote clusters: until ``complete + forwarding`` has
        passed, collocating with it saves the forwarding latency.
        """
        producers = []
        horizon = machine.now + 1
        for dep in instr.deps.reg_deps:
            producer = machine.record(dep)
            if (
                producer.complete_time < 0
                or producer.complete_time + machine.forwarding_latency >= horizon
            ):
                producers.append(producer)
        return producers

    def _ranked_producers(self, producers: list[InFlight]) -> list[InFlight]:
        """Producers in preference order (best first).

        Baseline preference: the most recently fetched producer -- the
        youngest in-flight operand is the one most likely to arrive last, so
        collocating with it hides the most latency.
        """
        return sorted(producers, key=lambda p: p.index, reverse=True)


@dataclass
class CriticalitySteeringConfig:
    """Knobs for the criticality-directed steering stack."""

    # 'binary' prefers predicted-critical producers (focused steering);
    # 'loc' prefers the highest-LoC producer (used once LoC exists).
    preference: str = "binary"
    stall_over_steer: bool = False
    stall_loc_threshold: float = 0.30
    proactive: bool = False
    # Proactive override (Section 7): refuse to load-balance a consumer whose
    # LoC exceeds ``keep_min_loc`` and is at least ``keep_fraction`` of the
    # producer's LoC -- it is probably the most critical consumer.
    keep_min_loc: float = 0.05
    keep_fraction: float = 0.5

    def __post_init__(self) -> None:
        if self.preference not in ("binary", "loc"):
            raise ValueError(f"unknown preference {self.preference!r}")
        if not 0.0 <= self.stall_loc_threshold <= 1.0:
            raise ValueError("stall_loc_threshold must be in [0, 1]")


class CriticalitySteering(DependenceSteering):
    """Dependence steering plus the paper's criticality policies."""

    def __init__(self, config: CriticalitySteeringConfig | None = None):
        self.config = config or CriticalitySteeringConfig()
        parts = ["focused" if self.config.preference == "binary" else "loc"]
        if self.config.stall_over_steer:
            parts.append("stall")
        if self.config.proactive:
            parts.append("proactive")
        self.name = "+".join(parts)
        self.reset()

    def reset(self) -> None:
        # Producers already followed by one consumer (proactive rule).
        self._followed: set[int] = set()
        # Highest consumer LoC seen per producing instruction (trace index).
        self._max_consumer_loc: dict[int, float] = {}
        # Learned balance-candidate table, PC-indexed.  A PC trains toward
        # "candidate" whenever a retiring instance was not its producer's most
        # critical consumer.
        self._balance_candidates: dict[int, SaturatingCounter] = {}

    def choose(self, instr: InFlight, machine: MachineView) -> SteeringDecision:
        producers = self._in_flight_producers(instr, machine)
        if not producers:
            cluster = least_loaded_cluster(machine)
            if cluster is None:
                return structural_stall(machine)
            return SteeringDecision(cluster, SteerCause.NO_PRODUCER)

        ranked = self._ranked_producers(producers)
        preferred = ranked[0]
        clusters = {p.cluster for p in producers}
        cause = SteerCause.DYADIC if len(clusters) > 1 else SteerCause.PRODUCER

        self._note_consumer(instr, producers)
        if self.config.proactive and self._should_balance_away(instr, preferred):
            cluster = least_loaded_cluster(machine)
            if cluster is None:
                return structural_stall(machine)
            self._followed.add(preferred.index)
            return SteeringDecision(cluster, SteerCause.PROACTIVE)

        for producer in ranked:
            if machine.window_free(producer.cluster) > 0:
                self._followed.add(producer.index)
                return SteeringDecision(producer.cluster, cause)
        return self._handle_full_desired(instr, machine, preferred, preferred.cluster)

    def on_commit(self, instr: InFlight) -> None:
        """Retire-time learning of balance candidates (Section 7)."""
        if not self.config.proactive:
            return
        for dep in instr.deps.reg_deps:
            best = self._max_consumer_loc.get(dep)
            if best is None:
                continue
            counter = self._balance_candidates.get(instr.instr.pc)
            if counter is None:
                counter = SaturatingCounter(bits=2, increment=1, decrement=1, threshold=2)
                self._balance_candidates[instr.instr.pc] = counter
            counter.train(instr.loc < best)
            # The per-value records are no longer needed once a consumer of
            # the value retires behind it; allow the dict to stay bounded.
            if len(self._max_consumer_loc) > 65536:
                self._max_consumer_loc.clear()

    def _ranked_producers(self, producers: list[InFlight]) -> list[InFlight]:
        if self.config.preference == "binary":
            # Focused steering: a predicted-critical producer always wins.
            return sorted(
                producers,
                key=lambda p: (p.predicted_critical, p.index),
                reverse=True,
            )
        return sorted(producers, key=lambda p: (p.loc, p.index), reverse=True)

    def _handle_full_desired(
        self,
        instr: InFlight,
        machine: MachineView,
        preferred: InFlight,
        desired: int,
    ) -> SteeringDecision:
        if (
            self.config.stall_over_steer
            and instr.loc >= self.config.stall_loc_threshold
        ):
            return SteeringDecision(
                cluster=None,
                stall_reason=DispatchReason.STEER_STALL,
                blocking_cluster=desired,
            )
        cluster = least_loaded_cluster(machine)
        if cluster is None:
            return structural_stall(machine)
        return SteeringDecision(cluster, SteerCause.LOAD_BALANCE_FULL)

    def _note_consumer(self, instr: InFlight, producers: list[InFlight]) -> None:
        """Track the most critical consumer seen for each produced value."""
        for producer in producers:
            best = self._max_consumer_loc.get(producer.index)
            if best is None or instr.loc > best:
                self._max_consumer_loc[producer.index] = instr.loc

    def _should_balance_away(self, instr: InFlight, preferred: InFlight) -> bool:
        """Proactive rule: push this consumer off the producer's cluster?"""
        config = self.config
        # Retire-time learning is the strongest signal: a PC that keeps
        # retiring as not-its-producer's-most-critical-consumer is balanced
        # away even if its own LoC is respectable (Figure 13(b): the loads
        # make room for the recurrence).
        counter = self._balance_candidates.get(instr.instr.pc)
        if counter is not None and counter.predict():
            return True
        # Single-consumer rule: the producer has already been followed --
        # unless the override says this is the most critical consumer
        # (LoC above 5% and at least half the producer's).
        if (
            instr.loc > config.keep_min_loc
            and instr.loc >= config.keep_fraction * preferred.loc
        ):
            return False
        return preferred.index in self._followed
