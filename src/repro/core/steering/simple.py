"""Dependence-oblivious steering baselines.

These are not evaluated in the paper's figures but serve as sanity bounds
and test fixtures: modulo (round-robin) steering ignores locality entirely;
pure load-balance steering optimizes only occupancy.
"""

from __future__ import annotations

from repro.core.instruction import InFlight, SteerCause
from repro.core.steering.base import (
    MachineView,
    SteeringDecision,
    SteeringPolicy,
    least_loaded_cluster,
    structural_stall,
)


class ModuloSteering(SteeringPolicy):
    """Round-robin cluster assignment."""

    name = "modulo"

    def __init__(self) -> None:
        self._next = 0

    def reset(self) -> None:
        self._next = 0

    def choose(self, instr: InFlight, machine: MachineView) -> SteeringDecision:
        for offset in range(machine.num_clusters):
            cluster = (self._next + offset) % machine.num_clusters
            if machine.window_free(cluster) > 0:
                self._next = (cluster + 1) % machine.num_clusters
                return SteeringDecision(cluster, SteerCause.NO_PRODUCER)
        return structural_stall(machine)


class LoadBalanceSteering(SteeringPolicy):
    """Always pick the least-loaded cluster."""

    name = "loadbal"

    def choose(self, instr: InFlight, machine: MachineView) -> SteeringDecision:
        cluster = least_loaded_cluster(machine)
        if cluster is None:
            return structural_stall(machine)
        return SteeringDecision(cluster, SteerCause.NO_PRODUCER)
