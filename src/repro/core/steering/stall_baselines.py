"""Stall-decision baselines contrasted with LoC-gated stalling (Section 5).

The paper credits Gonzalez et al. with observing that stalling the front
end can beat load-balancing, but argues their control signal -- "the number
of in-flight instructions at each cluster" -- is "a very coarse, and
potentially misleading, measure": what actually determines whether stalling
helps is whether the code is execute-critical (stall) or fetch-critical
(keep fetching).  These two baselines make that argument testable:

* :class:`AlwaysStallSteering` stalls whenever the desired cluster is full
  (the upper bound on stalling);
* :class:`OccupancyStallSteering` stalls when the desired cluster is full
  and machine-wide occupancy exceeds a threshold (a Gonzalez-style
  load-driven rule).

``benchmarks/test_ablation_stall_signal.py`` compares both against the
paper's LoC-gated stall-over-steer.
"""

from __future__ import annotations

from repro.core.instruction import DispatchReason, InFlight, SteerCause
from repro.core.steering.base import (
    MachineView,
    SteeringDecision,
    least_loaded_cluster,
    structural_stall,
)
from repro.core.steering.dependence import DependenceSteering


class AlwaysStallSteering(DependenceSteering):
    """Dependence steering that always stalls on a full desired cluster."""

    name = "stall-always"

    def _handle_full_desired(
        self,
        instr: InFlight,
        machine: MachineView,
        preferred: InFlight,
        desired: int,
    ) -> SteeringDecision:
        return SteeringDecision(
            cluster=None,
            stall_reason=DispatchReason.STEER_STALL,
            blocking_cluster=desired,
        )


class OccupancyStallSteering(DependenceSteering):
    """Gonzalez-style: cluster load, not criticality, drives the stall.

    When the desired cluster is full, stall if total window occupancy is at
    or above ``occupancy_threshold`` (the back end looks busy, so fetching
    faster cannot help); otherwise load-balance.
    """

    def __init__(self, occupancy_threshold: float = 0.75, window_size: int = 0):
        if not 0.0 <= occupancy_threshold <= 1.0:
            raise ValueError("occupancy_threshold must be in [0, 1]")
        self.occupancy_threshold = occupancy_threshold
        self._window_size = window_size
        self.name = f"stall-occupancy@{occupancy_threshold:.2f}"

    def _handle_full_desired(
        self,
        instr: InFlight,
        machine: MachineView,
        preferred: InFlight,
        desired: int,
    ) -> SteeringDecision:
        total = sum(
            machine.cluster_load(c) for c in range(machine.num_clusters)
        )
        capacity = total + sum(
            machine.window_free(c) for c in range(machine.num_clusters)
        )
        if capacity and total / capacity >= self.occupancy_threshold:
            return SteeringDecision(
                cluster=None,
                stall_reason=DispatchReason.STEER_STALL,
                blocking_cluster=desired,
            )
        cluster = least_loaded_cluster(machine)
        if cluster is None:
            return structural_stall(machine)
        return SteeringDecision(cluster, SteerCause.LOAD_BALANCE_FULL)
