"""Exact JSON serialization of :class:`SimulationResult`.

The persistent run cache (:mod:`repro.experiments.cache`) and the
parallel-vs-serial determinism tests both need a lossless, canonical
representation of everything a run produced: the machine configuration,
every per-instruction :class:`~repro.core.instruction.InFlight` record
(including its event provenance enums and its consumer back-references),
the misprediction set and the optional ILP profile.

The representation is plain JSON types only, so ``result_to_dict(a) ==
result_to_dict(b)`` is the definition of "bit-identical results" used by
the test suite, and ``result_from_dict(result_to_dict(r))`` reproduces a
result whose every derived statistic (CPI, breakdowns, event
classifications) matches the original exactly.

Cross-record references (``InFlight.waiters``) are serialized as trace
indices and re-linked on load, so the reconstructed record graph has the
same shape as the live one.

Telemetry payloads (``SimulationResult.telemetry``) are optional and
round-trip losslessly, but are deliberately **absent** from the dict when
unset -- a telemetry-off result serializes byte-identically to the
pre-telemetry schema, so existing cache entries stay valid and
``CACHE_SCHEMA_VERSION`` did not need to move.  ``results_identical``
compares *simulation* output and ignores telemetry (an observational
payload that legitimately differs between the event and reference
simulators, which sample live state differently).
"""

from __future__ import annotations

from typing import Any

from repro.core.config import ClusterConfig, MachineConfig
from repro.core.instruction import (
    CommitReason,
    DispatchReason,
    InFlight,
    SteerCause,
)
from repro.core.rename import Dependences
from repro.core.results import IlpProfile, SimulationResult
from repro.frontend.fetch import FrontEndConfig
from repro.memory.cache import CacheConfig, MemoryConfig
from repro.vm.isa import OpClass
from repro.vm.trace import DynamicInstruction

# ---------------------------------------------------------------------------
# Machine configuration
# ---------------------------------------------------------------------------


def _cluster_to_dict(cluster: ClusterConfig) -> dict[str, Any]:
    payload: dict[str, Any] = {
        "issue_width": cluster.issue_width,
        "int_ports": cluster.int_ports,
        "fp_ports": cluster.fp_ports,
        "mem_ports": cluster.mem_ports,
        "window_size": cluster.window_size,
    }
    # Key only present when set: a cluster without overrides serializes
    # byte-identically to the pre-heterogeneity schema.
    if cluster.latency_overrides:
        payload["latency_overrides"] = {
            name: cycles for name, cycles in cluster.latency_overrides
        }
    return payload


def _cluster_from_dict(data: dict[str, Any]) -> ClusterConfig:
    return ClusterConfig(**data)


def config_to_dict(config: MachineConfig) -> dict[str, Any]:
    """Flatten a :class:`MachineConfig` tree into JSON types.

    Uniform machines keep the legacy ``num_clusters``/``cluster`` spelling
    byte-for-byte (existing cache entries and goldens stay valid);
    heterogeneous machines serialize a ``clusters`` list instead.
    """
    memory = config.memory
    if config.is_uniform:
        core: dict[str, Any] = {
            "num_clusters": config.num_clusters,
            "cluster": _cluster_to_dict(config.cluster),
        }
    else:
        core = {"clusters": [_cluster_to_dict(c) for c in config.clusters]}
    return {
        **core,
        "rob_size": config.rob_size,
        "dispatch_width": config.dispatch_width,
        "commit_width": config.commit_width,
        "forwarding_latency": config.forwarding_latency,
        "forwarding_bandwidth": config.forwarding_bandwidth,
        "frontend": {
            "width": config.frontend.width,
            "depth_to_dispatch": config.frontend.depth_to_dispatch,
            "buffer_size": config.frontend.buffer_size,
            "break_on_taken_branch": config.frontend.break_on_taken_branch,
        },
        "memory": {
            "l1": _cache_config_to_dict(memory.l1),
            "l2_latency": memory.l2_latency,
            "l2": _cache_config_to_dict(memory.l2) if memory.l2 else None,
            "memory_latency": memory.memory_latency,
        },
    }


def config_from_dict(data: dict[str, Any]) -> MachineConfig:
    """Inverse of :func:`config_to_dict` (accepts both cluster spellings)."""
    memory = data["memory"]
    if "clusters" in data:
        clusters = tuple(_cluster_from_dict(c) for c in data["clusters"])
    else:
        clusters = (_cluster_from_dict(data["cluster"]),) * data["num_clusters"]
    return MachineConfig(
        clusters=clusters,
        rob_size=data["rob_size"],
        dispatch_width=data["dispatch_width"],
        commit_width=data["commit_width"],
        forwarding_latency=data["forwarding_latency"],
        forwarding_bandwidth=data["forwarding_bandwidth"],
        frontend=FrontEndConfig(**data["frontend"]),
        memory=MemoryConfig(
            l1=CacheConfig(**memory["l1"]),
            l2_latency=memory["l2_latency"],
            l2=CacheConfig(**memory["l2"]) if memory["l2"] else None,
            memory_latency=memory["memory_latency"],
        ),
    )


def _cache_config_to_dict(cache: CacheConfig) -> dict[str, Any]:
    return {
        "size_bytes": cache.size_bytes,
        "associativity": cache.associativity,
        "line_bytes": cache.line_bytes,
        "hit_latency": cache.hit_latency,
    }


# ---------------------------------------------------------------------------
# Per-instruction records
# ---------------------------------------------------------------------------


def _instr_to_dict(instr: DynamicInstruction) -> dict[str, Any]:
    return {
        "index": instr.index,
        "pc": instr.pc,
        "opcode": instr.opcode,
        "opclass": instr.opclass.name,
        "dest": instr.dest,
        "srcs": list(instr.srcs),
        "is_branch": instr.is_branch,
        "is_conditional_branch": instr.is_conditional_branch,
        "taken": instr.taken,
        "next_pc": instr.next_pc,
        "mem_addr": instr.mem_addr,
    }


def _instr_from_dict(data: dict[str, Any]) -> DynamicInstruction:
    return DynamicInstruction(
        index=data["index"],
        pc=data["pc"],
        opcode=data["opcode"],
        opclass=OpClass[data["opclass"]],
        dest=data["dest"],
        srcs=tuple(data["srcs"]),
        is_branch=data["is_branch"],
        is_conditional_branch=data["is_conditional_branch"],
        taken=data["taken"],
        next_pc=data["next_pc"],
        mem_addr=data["mem_addr"],
    )


def record_to_dict(record: InFlight) -> dict[str, Any]:
    """One :class:`InFlight` as JSON types; ``waiters`` become indices."""
    return {
        "instr": _instr_to_dict(record.instr),
        "deps": {
            "reg_deps": list(record.deps.reg_deps),
            "mem_dep": record.deps.mem_dep,
        },
        "cluster": record.cluster,
        "dispatch_time": record.dispatch_time,
        "ready_time": record.ready_time,
        "issue_time": record.issue_time,
        "complete_time": record.complete_time,
        "commit_time": record.commit_time,
        "pending_deps": record.pending_deps,
        "operand_avail": record.operand_avail,
        "last_arriving_producer": record.last_arriving_producer,
        "critical_operand_forwarded": record.critical_operand_forwarded,
        "mem_latency_extra": record.mem_latency_extra,
        "latency": record.latency,
        "predicted_critical": record.predicted_critical,
        "loc": record.loc,
        "dispatch_reason": record.dispatch_reason.name,
        "dispatch_pred": record.dispatch_pred,
        "steer_cause": record.steer_cause.name,
        "commit_reason": record.commit_reason.name,
        "waiters": [w.index for w in record.waiters],
        # JSON object keys are strings; cluster ids convert back on load.
        "forwarded_to_clusters": {
            str(c): t for c, t in record.forwarded_to_clusters.items()
        },
    }


def _record_from_dict(data: dict[str, Any]) -> InFlight:
    """Rebuild one record; ``waiters`` are linked by the caller."""
    deps = Dependences(
        reg_deps=tuple(data["deps"]["reg_deps"]), mem_dep=data["deps"]["mem_dep"]
    )
    record = InFlight(_instr_from_dict(data["instr"]), deps)
    record.cluster = data["cluster"]
    record.dispatch_time = data["dispatch_time"]
    record.ready_time = data["ready_time"]
    record.issue_time = data["issue_time"]
    record.complete_time = data["complete_time"]
    record.commit_time = data["commit_time"]
    record.pending_deps = data["pending_deps"]
    record.operand_avail = data["operand_avail"]
    record.last_arriving_producer = data["last_arriving_producer"]
    record.critical_operand_forwarded = data["critical_operand_forwarded"]
    record.mem_latency_extra = data["mem_latency_extra"]
    record.latency = data["latency"]
    record.predicted_critical = data["predicted_critical"]
    record.loc = data["loc"]
    record.dispatch_reason = DispatchReason[data["dispatch_reason"]]
    record.dispatch_pred = data["dispatch_pred"]
    record.steer_cause = SteerCause[data["steer_cause"]]
    record.commit_reason = CommitReason[data["commit_reason"]]
    record.forwarded_to_clusters = {
        int(c): t for c, t in data["forwarded_to_clusters"].items()
    }
    return record


# ---------------------------------------------------------------------------
# Whole results
# ---------------------------------------------------------------------------


def result_to_dict(result: SimulationResult) -> dict[str, Any]:
    """Lossless JSON-type representation of a run.

    The ``telemetry`` key exists only when the run carried a payload, so
    telemetry-off results keep the exact pre-telemetry representation.
    """
    ilp = result.ilp_profile
    data = {
        "config": config_to_dict(result.config),
        "records": [record_to_dict(r) for r in result.records],
        "cycles": result.cycles,
        "mispredicted": sorted(result.mispredicted),
        "global_values": result.global_values,
        "l1_hits": result.l1_hits,
        "l1_misses": result.l1_misses,
        "ilp_profile": None
        if ilp is None
        else {
            "issued_sum": {str(k): v for k, v in sorted(ilp.issued_sum.items())},
            "cycle_count": {str(k): v for k, v in sorted(ilp.cycle_count.items())},
        },
        "steering_name": result.steering_name,
        "scheduler_name": result.scheduler_name,
    }
    if result.telemetry is not None:
        from repro.telemetry.recorder import telemetry_to_dict

        data["telemetry"] = telemetry_to_dict(result.telemetry)
    return data


def result_from_dict(data: dict[str, Any]) -> SimulationResult:
    """Inverse of :func:`result_to_dict`, re-linking consumer references."""
    records = [_record_from_dict(r) for r in data["records"]]
    by_index = {record.index: record for record in records}
    for record, raw in zip(records, data["records"]):
        record.waiters = [by_index[i] for i in raw["waiters"]]
    ilp = None
    if data["ilp_profile"] is not None:
        ilp = IlpProfile(
            issued_sum={
                int(k): v for k, v in data["ilp_profile"]["issued_sum"].items()
            },
            cycle_count={
                int(k): v for k, v in data["ilp_profile"]["cycle_count"].items()
            },
        )
    telemetry = None
    if data.get("telemetry") is not None:
        from repro.telemetry.recorder import telemetry_from_dict

        telemetry = telemetry_from_dict(data["telemetry"])
    return SimulationResult(
        config=config_from_dict(data["config"]),
        records=records,
        cycles=data["cycles"],
        mispredicted=frozenset(data["mispredicted"]),
        global_values=data["global_values"],
        l1_hits=data["l1_hits"],
        l1_misses=data["l1_misses"],
        ilp_profile=ilp,
        steering_name=data["steering_name"],
        scheduler_name=data["scheduler_name"],
        telemetry=telemetry,
    )


def results_identical(a: SimulationResult, b: SimulationResult) -> bool:
    """Whether two runs produced bit-identical results.

    Compares the canonical JSON forms, so every timing field, provenance
    enum, waiter edge and counter must match -- the invariant the parallel
    execution layer guarantees relative to serial execution.  Telemetry is
    observational metadata, not simulation output, and is excluded.
    """
    left = result_to_dict(a)
    right = result_to_dict(b)
    left.pop("telemetry", None)
    right.pop("telemetry", None)
    return left == right
