"""Batched sweep backend: one trace decode, many grid points, SoA state.

A Figure 14-style sweep runs the *same* kernel trace under many
(policy, cluster-count) combinations.  The event-driven
:class:`~repro.core.simulator.ClusteredSimulator` re-derives everything
per run: it allocates ~N :class:`~repro.core.instruction.InFlight`
objects, re-tabulates port classes and latencies, and pays a Python
attribute access for every field touch of the hot loop.  This module is
the third simulation backend ("batched"): it precomputes the
trace-dependent tables **once** per kernel (:class:`TracePrecompute`)
and runs each grid point over flat structure-of-arrays columns -- plain
Python lists indexed by trace position -- with the steering, scheduling
and predictor-training logic of the supported policy stacks inlined into
the cycle loop.

The contract is **bit-identity** with the event backend: every
per-instruction timestamp, provenance enum and counter matches
:func:`repro.core.serialize.results_identical` exactly, on every
supported (trace, config, policy) combination.  This holds by
construction:

* the cycle loop mirrors the event simulator phase-for-phase (commit,
  issue, fetch, dispatch/steer, idle-skip), including the stall-guard
  and the head-of-dispatch block bookkeeping;
* heap entries carry ``(priority, index)`` / ``(ready_time, index, ...)``
  tuples whose priority components are exactly the event backend's
  (priority tuples end in the unique trace index, so ordering never
  falls through to a record comparison in either backend);
* the inlined steering replicates :class:`~repro.core.steering.
  dependence.DependenceSteering` / ``CriticalitySteering`` decision for
  decision (producer visibility window, ranking keys, proactive
  balance rules, stall-over-steer) and the inlined predictors replicate
  the saturating / probabilistic counters update-for-update, including
  the per-PC seeded RNG streams;
* the chunked trainer's critical-path walk is ported control-flow-exact
  (only the critical *set* is computed; the cycle breakdown the event
  trainer also produces is dead weight for training).

Supported fast-path stacks: dependence or criticality steering (any
configuration) with the oldest/critical/loc schedulers and the
``chunked`` predictor, i.e. all five of the paper's Figure 14 stacks.
Readiness-aware steering, the token predictor and metrics runs are not
ported; the execution layer (:mod:`repro.experiments.batch`) falls back
to the event backend for those, which is bit-identical anyway.

The differential armor lives in ``tests/test_differential.py`` (batched
vs event matrix) and ``tests/test_batched.py`` (grid-order/partition
invariance, shared-precompute isolation).
"""

from __future__ import annotations

from dataclasses import dataclass
from heapq import heappop, heappush
from typing import Sequence

from repro.core.config import MachineConfig
from repro.core.instruction import (
    CommitReason,
    DispatchReason,
    InFlight,
    SteerCause,
)
from repro.core.rename import Dependences, extract_dependences
from repro.core.results import IlpProfile, SimulationResult
from repro.core.simulator import _PORT_AND_LATENCY, SimulationDiverged
from repro.frontend.branch_predictor import (
    GshareBranchPredictor,
    annotate_mispredictions,
)
from repro.memory.cache import MemoryHierarchy
from repro.util.rng import seeded_rng
from repro.vm.isa import OpClass
from repro.vm.trace import DynamicInstruction

_LOAD_CLASS = OpClass.LOAD

__all__ = [
    "ArrayPredictorState",
    "BatchedPolicy",
    "TracePrecompute",
    "simulate_batched",
]


class TracePrecompute:
    """Configuration-independent tables shared by every run of one trace.

    Everything here is immutable with respect to simulation: runs index
    these tables but never write them, so one precompute can back any
    number of grid points (and is safe to share across warm-up and
    measured runs).  The isolation tests mutate-and-check this property.
    """

    __slots__ = (
        "trace",
        "dependences",
        "mispredicted",
        "total",
        "pclass",
        "base_lat",
        "adjacency",
        "reg_deps",
        "mem_dep",
        "pcs",
        "pc_id",
        "unique_pcs",
        "is_misp",
        "is_load",
        "mem_addr",
        "is_taken_branch",
        "redirect_col",
        "fetch_stop_misp",
        "fetch_stop_taken",
        "_lat_columns",
    )

    def __init__(
        self,
        trace: Sequence[DynamicInstruction],
        dependences: Sequence[Dependences] | None = None,
        mispredicted: frozenset[int] | None = None,
    ):
        if not trace:
            raise ValueError("cannot simulate an empty trace")
        if dependences is None:
            dependences = tuple(extract_dependences(trace))
        if mispredicted is None:
            mispredicted = frozenset(
                annotate_mispredictions(trace, GshareBranchPredictor())
            )
        total = len(trace)
        self.trace = trace
        self.dependences = dependences
        self.mispredicted = mispredicted
        self.total = total
        pclass = [0] * total
        base_lat = [0] * total
        port_and_latency = _PORT_AND_LATENCY
        for i, instr in enumerate(trace):
            pclass[i], base_lat[i] = port_and_latency[instr.opclass._value_]
        self.pclass = pclass
        self.base_lat = base_lat
        self.adjacency = [deps.all_deps for deps in dependences]
        self.reg_deps = [deps.reg_deps for deps in dependences]
        self.mem_dep = [deps.mem_dep for deps in dependences]
        pcs = [instr.pc for instr in trace]
        self.pcs = pcs
        # Dense PC ids: predictor state lives in flat arrays indexed by
        # id instead of dicts keyed by pc.
        pc_to_id: dict[int, int] = {}
        unique_pcs: list[int] = []
        pc_id = [0] * total
        for i, pc in enumerate(pcs):
            pid = pc_to_id.get(pc)
            if pid is None:
                pid = pc_to_id[pc] = len(unique_pcs)
                unique_pcs.append(pc)
            pc_id[i] = pid
        self.pc_id = pc_id
        self.unique_pcs = unique_pcs
        is_misp = [False] * total
        for index in mispredicted:
            if 0 <= index < total:
                is_misp[index] = True
        self.is_misp = is_misp
        self.is_load = [False] * total
        self.mem_addr = [0] * total
        self.is_taken_branch = [False] * total
        for i, instr in enumerate(trace):
            if pclass[i] == 2:
                self.is_load[i] = instr.opclass is _LOAD_CLASS
                self.mem_addr[i] = instr.mem_addr
            if instr.is_branch and instr.taken:
                self.is_taken_branch[i] = True
        # Fetch resumes at ``i + 1`` right after mispredicted branch ``i``
        # resolves, so redirect provenance is a static property of the
        # trace (the event front end records the same pairs dynamically).
        # Column form (-1 = no redirect) for the dispatch hot path.
        redirect_col = [-1] * total
        for i in mispredicted:
            if 0 <= i and i + 1 < total:
                redirect_col[i + 1] = i
        self.redirect_col = redirect_col
        # Next fetch-stop position at or after i, so a fetch burst is
        # O(1) instead of a per-instruction scan: one table for fronts
        # that stop only on mispredictions, one for fronts that also
        # break on taken branches (config selects at run setup).
        stop_misp = [total] * total
        stop_taken = [total] * total
        nxt_m = nxt_t = total
        for i in range(total - 1, -1, -1):
            if is_misp[i]:
                nxt_m = i
                nxt_t = i
            elif self.is_taken_branch[i]:
                nxt_t = i
            stop_misp[i] = nxt_m
            stop_taken[i] = nxt_t
        self.fetch_stop_misp = stop_misp
        self.fetch_stop_taken = stop_taken
        # Memoized per-cluster latency columns, keyed by a ClusterConfig's
        # normalized ``latency_overrides`` tuple.  Columns are written once
        # at creation and only read afterwards, so sharing one precompute
        # across grid points stays sound.
        self._lat_columns: dict[tuple, list[int]] = {}

    def latency_column(self, overrides: tuple) -> list[int]:
        """The base-latency column with ``overrides`` applied (memoized).

        ``overrides`` is a :class:`~repro.core.config.ClusterConfig`'s
        normalized ``latency_overrides`` tuple; the empty tuple aliases the
        shared ``base_lat`` column.
        """
        if not overrides:
            return self.base_lat
        cached = self._lat_columns.get(overrides)
        if cached is None:
            over = dict(overrides)
            base = self.base_lat
            cached = self._lat_columns[overrides] = [
                over.get(instr.opclass._value_, base[i])
                for i, instr in enumerate(self.trace)
            ]
        return cached

    @classmethod
    def from_prepared(cls, prepared) -> "TracePrecompute":
        """Build from a :class:`~repro.experiments.parallel.PreparedWorkload`."""
        return cls(prepared.trace, prepared.dependences, prepared.mispredicted)


@dataclass(frozen=True)
class BatchedPolicy:
    """A policy stack lowered to the flags the inlined fast path branches on.

    Produced from a :class:`~repro.specs.PolicySpec` by
    :func:`repro.experiments.batch.fast_policy`; ``None`` from that
    function means the stack is outside the fast path.
    """

    steering_kind: str  # "dependence" | "criticality"
    preference: str = "binary"  # producer ranking: "binary" | "loc"
    stall_over_steer: bool = False
    stall_loc_threshold: float = 0.30
    proactive: bool = False
    keep_min_loc: float = 0.05
    keep_fraction: float = 0.5
    scheduler: str = "oldest"  # "oldest" | "critical" | "loc"
    needs_predictors: bool = False
    chunk_size: int = 2048

    @property
    def steering_name(self) -> str:
        """The name the equivalent steering policy object reports."""
        if self.steering_kind == "dependence":
            return "dependence"
        parts = ["focused" if self.preference == "binary" else "loc"]
        if self.stall_over_steer:
            parts.append("stall")
        if self.proactive:
            parts.append("proactive")
        return "+".join(parts)


class ArrayPredictorState:
    """The predictor suite's counters, hoisted into pc-id-indexed arrays.

    Replicates :class:`~repro.criticality.loc.PredictorSuite` with the
    default binary predictor (6-bit, +8/-1, threshold 8) and a 16-level
    LoC predictor in any of the three storage modes.  Training and
    queries are update-for-update identical, including the per-PC
    ``seeded_rng("loc", seed, pc)`` draw sequences of the probabilistic
    mode (streams are per-PC, so lazy creation order is immaterial).
    """

    __slots__ = (
        "mode",
        "seed",
        "unique_pcs",
        "bin_val",
        "loc_level",
        "loc_hits",
        "loc_total",
        "rngs",
    )

    def __init__(self, pre: TracePrecompute, loc_mode: str, seed: int):
        if loc_mode not in ("probabilistic", "stratified", "exact"):
            raise ValueError(f"unknown LoC mode {loc_mode!r}")
        self.mode = loc_mode
        self.seed = seed
        self.unique_pcs = pre.unique_pcs
        n = len(pre.unique_pcs)
        self.bin_val = [0] * n
        self.loc_level = [0] * n
        self.loc_hits = [0] * n
        self.loc_total = [0] * n
        # Per-PC RNG streams, created on first draw (creation consumes no
        # randomness, so laziness cannot perturb the sequences).
        self.rngs: list = [None] * n

    # The two dispatch-time queries, as pure functions of counter state
    # (the event backend memoizes these per PC; memos are caches only).
    def predict_critical(self, pid: int) -> bool:
        return self.bin_val[pid] >= 8

    def loc(self, pid: int) -> float:
        mode = self.mode
        if mode == "probabilistic":
            return self.loc_level[pid] / 15
        total = self.loc_total[pid]
        if not total:
            return 0.0
        if mode == "exact":
            return self.loc_hits[pid] / total
        return round((self.loc_hits[pid] / total) * 15) / 15

    def train(self, pid: int, outcome: bool) -> None:
        """One training event for ``pid`` (both predictors, like the suite)."""
        v = self.bin_val[pid]
        if outcome:
            self.bin_val[pid] = v + 8 if v < 56 else 63
        elif v:
            self.bin_val[pid] = v - 1
        if self.mode == "probabilistic":
            level = self.loc_level[pid]
            estimate = level / 15
            if outcome:
                move = 1.0 - estimate
                if move > 0:
                    rng = self.rngs[pid]
                    if rng is None:
                        rng = self.rngs[pid] = seeded_rng(
                            "loc", self.seed, self.unique_pcs[pid]
                        )
                    if rng.random() < move:
                        self.loc_level[pid] = level + 1
            elif estimate > 0:
                rng = self.rngs[pid]
                if rng is None:
                    rng = self.rngs[pid] = seeded_rng(
                        "loc", self.seed, self.unique_pcs[pid]
                    )
                if rng.random() < estimate:
                    self.loc_level[pid] = level - 1
        else:
            self.loc_total[pid] += 1
            if outcome:
                self.loc_hits[pid] += 1


# Node kinds of the chunked trainer's backward walk, as small ints.
_D, _E, _C, _E_ISSUE = 0, 1, 2, 3


def simulate_batched(
    pre: TracePrecompute,
    config: MachineConfig,
    policy: BatchedPolicy,
    predictors: ArrayPredictorState | None = None,
    live_training: bool = True,
    collect_ilp: bool = False,
    max_cycles: int | None = None,
    materialize: bool = True,
    frozen_cache: dict | None = None,
) -> SimulationResult | None:
    """One grid point over the shared precompute; SoA port of the event loop.

    ``predictors`` carries the warm state across the warm-up/measured
    pair exactly like a :class:`~repro.criticality.loc.PredictorSuite`
    does for the event backend; ``live_training=False`` freezes it (the
    benchmark methodology).  ``materialize=False`` skips building the
    :class:`InFlight` records and returns ``None`` -- warm-up runs only
    exist for their predictor side effects.

    ``frozen_cache`` (frozen runs only) memoizes the per-run constants a
    frozen predictor suite induces -- the sampled prediction/LoC columns
    and the scheduler priority table -- so a sweep of grid points over
    one frozen suite tabulates them once.  The caller owns the dict and
    MUST NOT share it across different suites or training states; the
    cached lists are never written after creation, which the isolation
    tests assert.

    All other per-run state is freshly allocated here; nothing is
    written to ``pre`` or retained between calls, so any sequence of
    calls over one precompute is independent (the isolation property the
    batched executor and its tests rely on).
    """
    total = pre.total
    trace = pre.trace
    num_clusters = config.num_clusters
    fwd = config.forwarding_latency
    bandwidth = config.forwarding_bandwidth

    # --- SoA columns (the InFlight slots, one flat list per field) ----
    cluster_col = [-1] * total
    dispatch_t = [-1] * total
    ready_t = [-1] * total
    issue_t = [-1] * total
    complete_t = [-1] * total
    commit_t = [-1] * total
    pending_col = [0] * total
    op_avail = [0] * total
    last_arr: list[int | None] = [None] * total
    crit_fwd = [False] * total
    mem_extra = [0] * total
    # Pre-filled with base latencies: only loads rewrite their cell, and
    # diverged runs raise before materializing, so unissued cells are
    # never observed.
    latency_col = list(pre.base_lat)
    pred_col = [False] * total
    loc_col = [0.0] * total
    dreason_col = [DispatchReason.START] * total
    dpred_col: list[int | None] = [None] * total
    scause_col = [SteerCause.NO_PRODUCER] * total
    creason_col = [CommitReason.COMPLETION] * total
    waiters: list[list[int] | None] = [None] * total
    fwd_to: list[dict[int, int] | None] = [None] * total
    prio: list[tuple | None] = [None] * total

    # --- precomputed trace tables (read-only) -------------------------
    pclass = pre.pclass
    base_lat = pre.base_lat
    adjacency = pre.adjacency
    reg_deps = pre.reg_deps
    mem_dep = pre.mem_dep
    pcs = pre.pcs
    pc_id = pre.pc_id
    is_misp = pre.is_misp

    # --- per-run machine state ----------------------------------------
    occupancy = [0] * num_clusters
    last_issued = [-1] * num_clusters
    wakeup_lists: list[list] = [[] for __ in range(num_clusters)]
    ready_lists: list[list] = [[] for __ in range(num_clusters)]
    transfer_used: dict[int, int] = {}
    memory = MemoryHierarchy(config.memory)
    ilp = IlpProfile() if collect_ilp else None

    # Inlined front end (FrontEndModel, SoA form).  Instructions enter
    # the fetch buffer in trace order and leave in trace order, so the
    # buffer is always the contiguous index range [buf_lo, cursor).
    frontend_cfg = config.frontend
    fetch_width = frontend_cfg.width
    fetch_depth = frontend_cfg.depth_to_dispatch
    fetch_buffer_size = frontend_cfg.buffer_size
    fetch_stop = (
        pre.fetch_stop_taken
        if frontend_cfg.break_on_taken_branch
        else pre.fetch_stop_misp
    )
    redirect_col = pre.redirect_col
    cursor = 0
    buf_lo = 0
    unblock_time = fetch_depth
    blocked_on = -1  # mispredicted branch fetch waits on; -1 = none

    clusters_cfg = config.clusters
    if any(c.fp_ports == 0 or c.mem_ports == 0 for c in clusters_cfg):
        # Capability redirects are not ported to this backend; the
        # execution layer keeps such configs on the event path.
        raise ValueError(
            "batched backend requires every cluster to have FP and memory "
            "ports; zero-port clusters run on the event backend"
        )
    window_sizes = [c.window_size for c in clusters_cfg]
    issue_widths = [c.issue_width for c in clusters_cfg]
    port_limits_by_cluster = [
        (c.int_ports, c.fp_ports, c.mem_ports) for c in clusters_cfg
    ]
    # Per-cluster latency plane: clusters without overrides alias the
    # shared base-latency column, so uniform machines pay nothing.
    lat_plane = [pre.latency_column(c.latency_overrides) for c in clusters_cfg]
    has_lat_overrides = any(c.latency_overrides for c in clusters_cfg)
    commit_width = config.commit_width
    dispatch_width = config.dispatch_width
    rob_size = config.rob_size
    l1_hit = config.memory.l1.hit_latency

    # --- policy flags -------------------------------------------------
    # Producer ranking: 0 = youngest-index (dependence baseline),
    # 1 = binary prediction, 2 = LoC.
    if policy.steering_kind == "dependence":
        rank_mode = 0
    elif policy.preference == "binary":
        rank_mode = 1
    else:
        rank_mode = 2
    stall_over_steer = policy.stall_over_steer
    stall_threshold = policy.stall_loc_threshold
    proactive = policy.proactive
    keep_min_loc = policy.keep_min_loc
    keep_fraction = policy.keep_fraction
    scheduler = policy.scheduler
    sched_oldest = scheduler == "oldest"
    sched_critical = scheduler == "critical"
    chunk_size = policy.chunk_size

    # Per-run steering state (CriticalitySteering.reset() equivalents).
    followed: set[int] = set()
    max_consumer_loc: dict[int, float] = {}
    balance_candidates: dict[int, int] = {}

    # Predictor sampling mode.
    frozen = predictors is None or not live_training
    suite = predictors
    if suite is not None:
        mode_prob = suite.mode == "probabilistic"
        mode_exact = suite.mode == "exact"
        bin_val = suite.bin_val
        loc_level = suite.loc_level
        loc_hits = suite.loc_hits
        loc_total = suite.loc_total
    training = suite is not None and live_training
    flush_ptr = 0  # committed-but-untrained range start (trainer buffer)

    # Frozen predictors (or none): predictions and priorities are
    # constants of the run; tabulate once per unique PC like the event
    # backend's frozen-priority precompute.  Frozen runs never write
    # these columns afterwards, so grid points sharing one frozen suite
    # may share the tabulated lists through ``frozen_cache``.
    if frozen:
        cached = None if frozen_cache is None else frozen_cache.get("pred_loc")
        if cached is not None:
            pred_col, loc_col = cached
        else:
            if suite is not None:
                by_pc: dict[int, tuple[bool, float]] = {}
                by_pc_get = by_pc.get
                suite_loc = suite.loc
                for index in range(total):
                    pid = pc_id[index]
                    hit = by_pc_get(pid)
                    if hit is None:
                        hit = by_pc[pid] = (bin_val[pid] >= 8, suite_loc(pid))
                    pred_col[index], loc_col[index] = hit
            if frozen_cache is not None:
                frozen_cache["pred_loc"] = (pred_col, loc_col)
        cached = None if frozen_cache is None else frozen_cache.get(scheduler)
        if cached is not None:
            prio = cached
        else:
            if sched_oldest:
                for index in range(total):
                    prio[index] = (index,)
            elif sched_critical:
                for index in range(total):
                    prio[index] = (0 if pred_col[index] else 1, index)
            else:
                for index in range(total):
                    prio[index] = (-loc_col[index], index)
            if frozen_cache is not None:
                frozen_cache[scheduler] = prio

    # Enum locals for the hot loop.
    completion = CommitReason.COMPLETION
    commit_order = CommitReason.COMMIT_ORDER
    start_r = DispatchReason.START
    fetch_bw = DispatchReason.FETCH_BANDWIDTH
    fetch_redirect = DispatchReason.FETCH_REDIRECT
    rob_full = DispatchReason.ROB_FULL
    cluster_full = DispatchReason.CLUSTER_FULL
    steer_stall = DispatchReason.STEER_STALL
    no_producer = SteerCause.NO_PRODUCER
    producer_c = SteerCause.PRODUCER
    dyadic = SteerCause.DYADIC
    load_balance_full = SteerCause.LOAD_BALANCE_FULL
    proactive_c = SteerCause.PROACTIVE
    stalled_c = SteerCause.STALLED

    load_latency = memory.load_latency
    store_access = memory.store_access
    is_load = pre.is_load
    mem_addr = pre.mem_addr
    cluster_range = range(num_clusters)

    # ------------------------------------------------------------------
    def remote_arrival(p_index: int, cluster: int) -> tuple[int, int]:
        # Port of ClusteredSimulator._remote_arrival over the columns.
        fmap = fwd_to[p_index]
        if fmap is None:
            fmap = {}
            fwd_to[p_index] = fmap
        else:
            arrival = fmap.get(cluster)
            if arrival is not None:
                return arrival, 0
        departure = complete_t[p_index]
        if bandwidth is not None:
            while transfer_used.get(departure, 0) >= bandwidth:
                departure += 1
            transfer_used[departure] = transfer_used.get(departure, 0) + 1
        arrival = departure + fwd
        fmap[cluster] = arrival
        return arrival, 1

    def least_loaded() -> int:
        # least_loaded_cluster(): fewest in-flight with window space,
        # first-lowest ties; -1 when every window is full.
        best = -1
        best_load = None
        for c in cluster_range:
            load = occupancy[c]
            if load < window_sizes[c] and (best_load is None or load < best_load):
                best = c
                best_load = load
        return best

    def fullest_cluster() -> int:
        # structural_stall(): the first cluster of maximal load.
        best = 0
        best_load = occupancy[0]
        for c in range(1, num_clusters):
            load = occupancy[c]
            if load > best_load:
                best = c
                best_load = load
        return best

    def train_chunk(lo: int, hi: int) -> None:
        # ChunkedCriticalityTrainer._train_chunk: the backward walk of
        # analyze_critical_path, control-flow-exact, computing only the
        # critical set (training never reads the cycle breakdown).
        critical: set[int] = set()
        idx = hi - 1
        kind = _C
        while True:
            if kind != _C:
                critical.add(idx)
            if kind == _C:
                if creason_col[idx] is commit_order and idx - 1 >= lo:
                    idx -= 1
                    continue
                kind = _E
            elif kind == _E:
                kind = _E_ISSUE
            elif kind == _E_ISSUE:
                p = last_arr[idx]
                if (
                    p is not None
                    and lo <= p < hi
                    and op_avail[idx] == ready_t[idx]
                    and op_avail[idx] > dispatch_t[idx] + 1
                ):
                    idx = p
                    kind = _E
                else:
                    kind = _D
            else:  # _D
                reason = dreason_col[idx]
                pv = dpred_col[idx]
                if reason is start_r or pv is None or not lo <= pv < hi:
                    break
                if reason is fetch_bw:
                    idx = pv
                elif reason is fetch_redirect:
                    idx = pv
                    kind = _E
                elif reason is rob_full:
                    idx = pv
                    kind = _C
                else:  # CLUSTER_FULL / STEER_STALL
                    idx = pv
                    kind = _E_ISSUE
        # Inlined ArrayPredictorState.train over the chunk (binary
        # saturating counter and the LoC counter of the active mode).
        rngs = suite.rngs
        unique_pcs = suite.unique_pcs
        suite_seed = suite.seed
        for i in range(lo, hi):
            pid = pc_id[i]
            outcome = i in critical
            v = bin_val[pid]
            if outcome:
                bin_val[pid] = v + 8 if v < 56 else 63
            elif v:
                bin_val[pid] = v - 1
            if mode_prob:
                level = loc_level[pid]
                estimate = level / 15
                if outcome:
                    move = 1.0 - estimate
                    if move > 0:
                        rng = rngs[pid]
                        if rng is None:
                            rng = rngs[pid] = seeded_rng(
                                "loc", suite_seed, unique_pcs[pid]
                            )
                        if rng.random() < move:
                            loc_level[pid] = level + 1
                elif estimate > 0:
                    rng = rngs[pid]
                    if rng is None:
                        rng = rngs[pid] = seeded_rng(
                            "loc", suite_seed, unique_pcs[pid]
                        )
                    if rng.random() < estimate:
                        loc_level[pid] = level - 1
            else:
                loc_total[pid] += 1
                if outcome:
                    loc_hits[pid] += 1

    # ------------------------------------------------------------------
    global_values = 0
    rob_count = 0
    commit_ptr = 0
    now = 0
    ports_used = [0, 0, 0]
    head_block: tuple[DispatchReason, int | None] | None = None
    # Issue-phase fast skip: scan the clusters only when a ready pool is
    # non-empty or some wakeup heap head has matured.  ``wake_min`` is
    # maintained exactly (lowered on every wakeup push, recomputed from
    # the heap heads after every scan), so skipping never hides work and
    # the idle-skip below can use it instead of re-scanning the heaps.
    inf = float("inf")
    pools_nonempty = False
    wake_min = inf

    while commit_ptr < total:
        # ---- commit phase -------------------------------------------
        committed = 0
        head_complete = complete_t[commit_ptr]
        while 0 <= head_complete < now and committed < commit_width:
            i = commit_ptr
            complete = complete_t[i]
            if complete < 0 or complete + 1 > now:
                break
            commit_t[i] = now
            creason_col[i] = completion if complete + 1 == now else commit_order
            rob_count -= 1
            commit_ptr += 1
            committed += 1
            if training and commit_ptr - flush_ptr >= chunk_size:
                train_chunk(flush_ptr, commit_ptr)
                flush_ptr = commit_ptr
            if proactive:
                # CriticalitySteering.on_commit: retire-time learning of
                # balance candidates (2-bit counter, +1/-1, threshold 2).
                loc_i = loc_col[i]
                pc = pcs[i]
                for dep in reg_deps[i]:
                    best = max_consumer_loc.get(dep)
                    if best is None:
                        continue
                    count = balance_candidates.get(pc, 0)
                    if loc_i < best:
                        if count < 3:
                            count += 1
                    elif count > 0:
                        count -= 1
                    balance_candidates[pc] = count
                    if len(max_consumer_loc) > 65536:
                        max_consumer_loc.clear()
            if commit_ptr >= total:
                break
        if commit_ptr >= total:
            break

        # ---- issue phase --------------------------------------------
        available_this_cycle = 0
        issued_this_cycle = 0
        if pools_nonempty or wake_min <= now:
            pools_nonempty = False
            for cluster in cluster_range:
                wakeup_heap = wakeup_lists[cluster]
                pool = ready_lists[cluster]
                if wakeup_heap and wakeup_heap[0][0] <= now:
                    while wakeup_heap and wakeup_heap[0][0] <= now:
                        pool.append(heappop(wakeup_heap)[2])
                if not pool:
                    continue
                if ilp is not None:
                    available_this_cycle += len(pool)
                issued = 0
                ports_used[0] = ports_used[1] = ports_used[2] = 0
                # The pool is a plain list sorted on demand: priorities
                # are unique, so iterating the sorted list visits the
                # same sequence heappop would, at C sort speed, and
                # inserts are appends.
                pool.sort()
                blocked = None
                pos = 0
                pool_len = len(pool)
                issue_width = issue_widths[cluster]
                port_limits = port_limits_by_cluster[cluster]
                base_lat_c = lat_plane[cluster]
                while pos < pool_len and issued < issue_width:
                    entry = pool[pos]
                    pos += 1
                    index = entry[-1]
                    port = pclass[index]
                    if ports_used[port] >= port_limits[port]:
                        if blocked is None:
                            blocked = [entry]
                        else:
                            blocked.append(entry)
                        continue
                    ports_used[port] += 1
                    issued += 1
                    issue_t[index] = now
                    latency = base_lat_c[index]
                    if port == 2:
                        if is_load[index]:
                            access = load_latency(mem_addr[index])
                            latency += access
                            latency_col[index] = latency
                            extra = access - l1_hit
                            if extra > 0:
                                mem_extra[index] = extra
                        else:
                            store_access(mem_addr[index])
                            if has_lat_overrides:
                                latency_col[index] = latency
                    elif has_lat_overrides:
                        latency_col[index] = latency
                    complete = now + latency
                    complete_t[index] = complete
                    if is_misp[index] and blocked_on == index:
                        # resolve_misprediction: fetch resumes after refill.
                        blocked_on = -1
                        unblock_time = complete + fetch_depth
                    occupancy[cluster] -= 1
                    last_issued[cluster] = index
                    consumers = waiters[index]
                    if consumers:
                        # Inlined _wake_consumers.
                        for waiter in consumers:
                            w_cluster = cluster_col[waiter]
                            crossed = (
                                w_cluster != cluster and mem_dep[waiter] != index
                            )
                            if crossed:
                                arrival, new = remote_arrival(index, w_cluster)
                                global_values += new
                            else:
                                arrival = complete
                            if arrival >= op_avail[waiter]:
                                op_avail[waiter] = arrival
                                last_arr[waiter] = index
                                crit_fwd[waiter] = crossed
                            pending = pending_col[waiter] - 1
                            pending_col[waiter] = pending
                            if pending == 0:
                                ready_time = dispatch_t[waiter] + 1
                                avail = op_avail[waiter]
                                if avail > ready_time:
                                    ready_time = avail
                                ready_t[waiter] = ready_time
                                heappush(
                                    wakeup_lists[w_cluster],
                                    (ready_time, waiter, prio[waiter]),
                                )
                        waiters[index] = None
                if pos < pool_len:
                    # Entries beyond the issue-width cut stay pooled.
                    if blocked is None:
                        blocked = pool[pos:]
                    else:
                        blocked.extend(pool[pos:])
                if blocked is not None:
                    ready_lists[cluster] = blocked
                    pools_nonempty = True
                else:
                    pool.clear()
                issued_this_cycle += issued
            wake_min = inf
            for wakeup_heap in wakeup_lists:
                if wakeup_heap and wakeup_heap[0][0] < wake_min:
                    wake_min = wakeup_heap[0][0]
        if ilp is not None:
            ilp.record(available_this_cycle, issued_this_cycle)

        # ---- fetch phase (inlined FrontEndModel.tick) ----------------
        # O(1) burst: the precomputed stop table gives the first
        # misprediction / taken-branch break point; the stop
        # instruction itself is still fetched, exactly like the
        # per-instruction loop it replaces.
        fetched = 0
        if blocked_on < 0 and unblock_time <= now and cursor < total:
            width = fetch_buffer_size - (cursor - buf_lo)
            if width > fetch_width:
                width = fetch_width
            end = cursor + width
            if end > total:
                end = total
            stop = fetch_stop[cursor]
            if stop < end:
                end = stop + 1
                if is_misp[stop]:
                    blocked_on = stop
            fetched = end - cursor
            cursor = end

        # ---- dispatch/steer phase -----------------------------------
        dispatched = 0
        stall_guard = None
        while dispatched < dispatch_width:
            index = buf_lo
            if index >= cursor:
                if blocked_on >= 0 and cursor < total:
                    head_block = (fetch_redirect, blocked_on)
                break
            if rob_count >= rob_size:
                head_block = (rob_full, index - rob_size)
                break
            if not frozen:
                # Re-sample the predictors on every dispatch attempt
                # (training between attempts can change the answer).
                pid = pc_id[index]
                pred_col[index] = bin_val[pid] >= 8
                if mode_prob:
                    loc_col[index] = loc_level[pid] / 15
                else:
                    t = loc_total[pid]
                    if not t:
                        loc_col[index] = 0.0
                    elif mode_exact:
                        loc_col[index] = loc_hits[pid] / t
                    else:
                        loc_col[index] = round((loc_hits[pid] / t) * 15) / 15

            # ---- inlined steering.choose ----------------------------
            # In-flight producers: value not yet visible everywhere.
            first = -1
            producers = None
            rdeps = reg_deps[index]
            if rdeps:
                visible_before = now + 1 - fwd
                for dep in rdeps:
                    complete = complete_t[dep]
                    if complete < 0 or complete >= visible_before:
                        if first < 0:
                            first = dep
                        elif producers is None:
                            producers = [first, dep]
                        else:
                            producers.append(dep)

            stall = None  # (reason, blocking_cluster)
            cluster = -1
            if first < 0:
                # Inlined least_loaded() (the hottest steering outcome).
                best_load = None
                for c in cluster_range:
                    load = occupancy[c]
                    if load < window_sizes[c] and (
                        best_load is None or load < best_load
                    ):
                        cluster = c
                        best_load = load
                if cluster < 0:
                    stall = (cluster_full, fullest_cluster())
                else:
                    cause = no_producer
            else:
                if producers is None:
                    ranked = None
                    preferred = first
                    cause = producer_c
                else:
                    # Rank keys end in the unique producer index, so the
                    # two-producer case (the common one) needs a single
                    # comparison instead of sorted()+lambda.
                    if rank_mode == 0:
                        if len(producers) == 2:
                            a, b = producers
                            ranked = [b, a] if b > a else [a, b]
                        else:
                            ranked = sorted(producers, reverse=True)
                    elif rank_mode == 1:
                        if len(producers) == 2:
                            a, b = producers
                            if (pred_col[b], b) > (pred_col[a], a):
                                ranked = [b, a]
                            else:
                                ranked = [a, b]
                        else:
                            ranked = sorted(
                                producers,
                                key=lambda p: (pred_col[p], p),
                                reverse=True,
                            )
                    else:
                        if len(producers) == 2:
                            a, b = producers
                            if (loc_col[b], b) > (loc_col[a], a):
                                ranked = [b, a]
                            else:
                                ranked = [a, b]
                        else:
                            ranked = sorted(
                                producers,
                                key=lambda p: (loc_col[p], p),
                                reverse=True,
                            )
                    preferred = ranked[0]
                    first_cluster = cluster_col[producers[0]]
                    cause = producer_c
                    for p in producers:
                        if cluster_col[p] != first_cluster:
                            cause = dyadic
                            break
                if proactive:
                    # _note_consumer + _should_balance_away.
                    loc_i = loc_col[index]
                    if producers is None:
                        best = max_consumer_loc.get(first)
                        if best is None or loc_i > best:
                            max_consumer_loc[first] = loc_i
                    else:
                        for p in producers:
                            best = max_consumer_loc.get(p)
                            if best is None or loc_i > best:
                                max_consumer_loc[p] = loc_i
                    count = balance_candidates.get(pcs[index])
                    if count is not None and count >= 2:
                        balance = True
                    elif loc_i > keep_min_loc and loc_i >= keep_fraction * loc_col[preferred]:
                        balance = False
                    else:
                        balance = preferred in followed
                    if balance:
                        cluster = least_loaded()
                        if cluster < 0:
                            stall = (cluster_full, fullest_cluster())
                        else:
                            followed.add(preferred)
                            cause = proactive_c
                if cluster < 0 and stall is None:
                    # Try the producers' clusters in preference order.
                    if ranked is None:
                        target = cluster_col[first]
                        if occupancy[target] < window_sizes[target]:
                            if proactive:
                                followed.add(first)
                            cluster = target
                    else:
                        for p in ranked:
                            target = cluster_col[p]
                            if occupancy[target] < window_sizes[target]:
                                if proactive:
                                    followed.add(p)
                                cluster = target
                                break
                    if cluster < 0:
                        # _handle_full_desired.
                        if stall_over_steer and loc_col[index] >= stall_threshold:
                            stall = (steer_stall, cluster_col[preferred])
                        else:
                            cluster = least_loaded()
                            if cluster < 0:
                                stall = (cluster_full, fullest_cluster())
                            else:
                                cause = load_balance_full

            if stall is not None:
                reason, blocking = stall
                head_block = (reason, last_issued[blocking])
                # Stall-guard for idle skipping: the earliest producer
                # visibility expiry that could flip this decision.
                for dep in rdeps:
                    complete = complete_t[dep]
                    if complete >= 0:
                        expiry = complete + fwd
                        if expiry > now and (
                            stall_guard is None or expiry < stall_guard
                        ):
                            stall_guard = expiry
                break

            # ---- dispatch -------------------------------------------
            buf_lo += 1
            cluster_col[index] = cluster
            scause_col[index] = cause
            dispatch_t[index] = now
            if head_block is not None:
                reason, pred = head_block
                dreason_col[index] = reason
                dpred_col[index] = pred
                if reason is steer_stall:
                    scause_col[index] = stalled_c
                if pred is not None and pred < 0:
                    dreason_col[index] = fetch_bw
                    dpred_col[index] = index - 1 if index > 0 else None
                head_block = None
            else:
                redirect = redirect_col[index]
                if redirect >= 0:
                    dreason_col[index] = fetch_redirect
                    dpred_col[index] = redirect
                elif index:
                    dreason_col[index] = fetch_bw
                    dpred_col[index] = index - 1
                # else: the START/None column defaults already apply.
            occupancy[cluster] += 1
            rob_count += 1
            if frozen:
                priority = prio[index]
            else:
                if sched_oldest:
                    priority = (index,)
                elif sched_critical:
                    priority = (0 if pred_col[index] else 1, index)
                else:
                    priority = (-loc_col[index], index)
                prio[index] = priority
            # Inlined _wire_dependences.
            pending = 0
            deps_tuple = adjacency[index]
            if deps_tuple:
                mdep = mem_dep[index]
                for dep in deps_tuple:
                    if issue_t[dep] < 0:
                        w = waiters[dep]
                        if w is None:
                            waiters[dep] = [index]
                        else:
                            w.append(index)
                        pending += 1
                        continue
                    crossed = cluster_col[dep] != cluster and dep != mdep
                    if crossed:
                        arrival, new = remote_arrival(dep, cluster)
                        global_values += new
                    else:
                        arrival = complete_t[dep]
                    if arrival >= op_avail[index]:
                        op_avail[index] = arrival
                        last_arr[index] = dep
                        crit_fwd[index] = crossed
            pending_col[index] = pending
            if pending == 0:
                ready_time = now + 1
                if op_avail[index] > ready_time:
                    ready_time = op_avail[index]
                ready_t[index] = ready_time
                if ready_time == now + 1:
                    # Issue already ran this cycle; skip the wakeup
                    # round-trip (no ready-pressure tracking here).
                    ready_lists[cluster].append(priority)
                    pools_nonempty = True
                else:
                    heappush(
                        wakeup_lists[cluster], (ready_time, index, priority)
                    )
                    if ready_time < wake_min:
                        wake_min = ready_time
            dispatched += 1

        now += 1
        # ---- idle-cycle skipping ------------------------------------
        if not (committed or issued_this_cycle or fetched or dispatched):
            head_complete = complete_t[commit_ptr]
            next_event = head_complete + 1 if head_complete >= 0 else None
            # Pools are empty on idle cycles (a non-empty pool always
            # issues at least one entry), so ``wake_min`` is the exact
            # earliest wakeup.
            if wake_min != inf and (next_event is None or wake_min < next_event):
                next_event = wake_min
            # Inlined next_fetch_time(): only a future unblock can make
            # fetch progress without dispatch or execution moving first.
            if (
                blocked_on < 0
                and cursor < total
                and cursor - buf_lo < fetch_buffer_size
                and (next_event is None or unblock_time < next_event)
            ):
                next_event = unblock_time
            if stall_guard is not None and (
                next_event is None or stall_guard < next_event
            ):
                next_event = stall_guard
            if next_event is not None and next_event > now:
                if ilp is not None:
                    ilp.record_idle(next_event - now)
                now = next_event
        if max_cycles is not None and now > max_cycles:
            raise SimulationDiverged(max_cycles, commit_ptr, total)

    # Trainer.finish(): flush the trailing partial chunk.
    if training and total - flush_ptr > 1:
        train_chunk(flush_ptr, total)

    if not materialize:
        return None

    # ---- materialize the InFlight records ---------------------------
    # One zip over all columns: the tuple unpack replaces 20 indexed
    # loads per record (this loop is ~30% of a frozen run).
    records = []
    append = records.append
    new = InFlight.__new__
    i = 0
    for (
        instr,
        deps,
        cl,
        dtv,
        rtv,
        itv,
        ctv,
        cmv,
        pend,
        oav,
        lav,
        cfv,
        mev,
        latv,
        prv,
        locv,
        drv,
        dpv,
        scv,
        crv,
        fmap,
    ) in zip(
        trace,
        pre.dependences,
        cluster_col,
        dispatch_t,
        ready_t,
        issue_t,
        complete_t,
        commit_t,
        pending_col,
        op_avail,
        last_arr,
        crit_fwd,
        mem_extra,
        latency_col,
        pred_col,
        loc_col,
        dreason_col,
        dpred_col,
        scause_col,
        creason_col,
        fwd_to,
    ):
        rec = new(InFlight)
        rec.instr = instr
        rec.deps = deps
        rec.index = i
        rec.cluster = cl
        rec.dispatch_time = dtv
        rec.ready_time = rtv
        rec.issue_time = itv
        rec.complete_time = ctv
        rec.commit_time = cmv
        rec.pending_deps = pend
        rec.operand_avail = oav
        rec.last_arriving_producer = lav
        rec.critical_operand_forwarded = cfv
        rec.mem_latency_extra = mev
        rec.latency = latv
        rec.predicted_critical = prv
        rec.loc = locv
        rec.dispatch_reason = drv
        rec.dispatch_pred = dpv
        rec.steer_cause = scv
        rec.commit_reason = crv
        # Every producer's waiter list drains at its issue (all
        # instructions issue), matching the event backend's end state.
        rec.waiters = []
        rec.forwarded_to_clusters = fmap if fmap is not None else {}
        append(rec)
        i += 1

    return SimulationResult(
        config=config,
        records=records,
        cycles=commit_t[total - 1] + 1,
        mispredicted=pre.mispredicted,
        global_values=global_values,
        l1_hits=memory.l1.hits,
        l1_misses=memory.l1.misses,
        ilp_profile=ilp,
        steering_name=policy.steering_name,
        scheduler_name=policy.scheduler,
    )
