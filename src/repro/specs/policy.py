"""Serializable policy stacks: steering + scheduler + predictor specs.

A :class:`PolicySpec` is the declarative form of what the old
``build_policy(name)`` constructed by hand: a steering policy, a
per-cluster scheduler, and (when either consumes criticality) a
predictor suite.  The paper's five stacks are canonical presets in
:data:`PRESETS`; any other composition -- e.g. dependence steering with
the LoC scheduler -- is a first-class spec that runs through the same
cache, worker pool and reports.

Canonical form and cache keys
-----------------------------

Two spellings of the same stack must hash identically:

* a preset name (``"s"``) and its fully expanded spec;
* a spec that omits a defaulted parameter and one that spells it out;
* JSON dicts with keys in any order.

:func:`resolve_policy` maps any accepted form to a ``PolicySpec`` whose
sub-spec parameters are fully normalized against the registry factories'
signatures; :meth:`PolicySpec.canonical_payload` then excludes the
cosmetic ``name`` so renaming a spec never invalidates cached results.
:func:`canonical_policy` goes the other way -- a spec that equals a
preset collapses back to the preset's name string -- so legacy code
paths (figure tables, reports, goldens) keep seeing plain names.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Mapping

from repro.specs.common import (
    SpecError,
    canonical_json,
    reject_unknown_keys,
    require_type,
)
from repro.specs.registry import PREDICTORS, SCHEDULERS, STEERING, Registry

__all__ = [
    "PRESETS",
    "ComponentSpec",
    "PolicySpec",
    "PredictorSpec",
    "SchedulerSpec",
    "SteeringSpec",
    "canonical_policy",
    "policy_label",
    "policy_names",
    "resolve_policy",
]


def _normalized_params(
    registry: Registry, kind: str, params: Any
) -> tuple[tuple[str, Any], ...]:
    if isinstance(params, tuple):
        params = dict(params)
    require_type(params, dict, f"{registry.label} params")
    merged = registry.normalize(kind, params)
    return tuple(sorted(merged.items()))


@dataclass(frozen=True)
class ComponentSpec:
    """One registry-buildable component: a kind plus normalized parameters.

    ``params`` is stored as a sorted item tuple (hashable); construction
    validates the kind against the registry and materializes every
    factory default, so equality and hashing are spelling-independent.
    """

    kind: str
    params: tuple[tuple[str, Any], ...] = ()

    registry: Registry = None  # set by subclasses

    def __post_init__(self) -> None:
        require_type(self.kind, str, f"{self.registry.label} kind")
        object.__setattr__(
            self, "params", _normalized_params(self.registry, self.kind, self.params)
        )

    def build(self, **runtime: Any):
        return self.registry.build(self.kind, dict(self.params), **runtime)

    # ------------------------------------------------------------------
    def canonical_payload(self) -> dict[str, Any]:
        return {"kind": self.kind, "params": dict(self.params)}

    def to_dict(self) -> dict[str, Any]:
        return self.canonical_payload()

    @classmethod
    def from_dict(cls, data: Any) -> "ComponentSpec":
        if isinstance(data, cls):
            return data
        if isinstance(data, str):
            # Shorthand: a bare kind name with default parameters.
            return cls(kind=data)
        require_type(data, dict, f"{cls.registry.label} spec")
        reject_unknown_keys(data, {"kind", "params"}, f"{cls.registry.label} spec")
        if "kind" not in data:
            raise SpecError(f"{cls.registry.label} spec requires 'kind'")
        return cls(kind=data["kind"], params=tuple((data.get("params") or {}).items()))


@dataclass(frozen=True)
class SteeringSpec(ComponentSpec):
    registry: Registry = field(default=STEERING, repr=False, compare=False)


@dataclass(frozen=True)
class SchedulerSpec(ComponentSpec):
    registry: Registry = field(default=SCHEDULERS, repr=False, compare=False)


@dataclass(frozen=True)
class PredictorSpec(ComponentSpec):
    """A predictor suite + trainer; built with runtime ``loc_mode``/``seed``."""

    registry: Registry = field(default=PREDICTORS, repr=False, compare=False)


@dataclass(frozen=True)
class PolicySpec:
    """A complete policy stack.

    ``predictor=None`` means the stack consumes no criticality state (the
    dependence baseline); runs then skip predictor warm-up entirely,
    matching the old ``needs_predictors=False``.  ``name`` is cosmetic --
    a display label, excluded from the canonical payload.
    """

    steering: SteeringSpec
    scheduler: SchedulerSpec
    predictor: PredictorSpec | None = None
    name: str = ""

    def __post_init__(self) -> None:
        require_type(self.name, str, "PolicySpec.name")
        if not isinstance(self.steering, SteeringSpec):
            object.__setattr__(
                self, "steering", SteeringSpec.from_dict(self.steering)
            )
        if not isinstance(self.scheduler, SchedulerSpec):
            object.__setattr__(
                self, "scheduler", SchedulerSpec.from_dict(self.scheduler)
            )
        if self.predictor is not None and not isinstance(self.predictor, PredictorSpec):
            object.__setattr__(
                self, "predictor", PredictorSpec.from_dict(self.predictor)
            )

    # ------------------------------------------------------------------
    @property
    def needs_predictors(self) -> bool:
        return self.predictor is not None

    @property
    def label(self) -> str:
        """Display name: the given name, or a derived ``steering+scheduler``."""
        if self.name:
            return self.name
        parts = [self.steering.kind, self.scheduler.kind]
        if self.predictor is not None and self.predictor.kind != "chunked":
            parts.append(self.predictor.kind)
        return "+".join(parts)

    def build(self):
        """Fresh ``(steering, scheduler, needs_predictors)`` -- the old
        ``build_policy`` contract."""
        return self.steering.build(), self.scheduler.build(), self.needs_predictors

    def build_predictors(self, loc_mode: str, seed: int):
        """Fresh ``(PredictorSuite, trainer)`` for a run, or ``(None, None)``."""
        if self.predictor is None:
            return None, None
        return self.predictor.build(loc_mode=loc_mode, seed=seed)

    # ------------------------------------------------------------------
    def canonical_payload(self) -> dict[str, Any]:
        """Hash-stable semantics: components only, never the display name."""
        payload = {
            "steering": self.steering.canonical_payload(),
            "scheduler": self.scheduler.canonical_payload(),
        }
        if self.predictor is not None:
            payload["predictor"] = self.predictor.canonical_payload()
        return payload

    def to_dict(self) -> dict[str, Any]:
        data: dict[str, Any] = {}
        if self.name:
            data["name"] = self.name
        data.update(self.canonical_payload())
        return data

    @classmethod
    def from_dict(cls, data: Any) -> "PolicySpec":
        if isinstance(data, str):
            return resolve_policy(data)
        require_type(data, dict, "PolicySpec")
        reject_unknown_keys(
            data, {"name", "steering", "scheduler", "predictor"}, "PolicySpec"
        )
        for key in ("steering", "scheduler"):
            if key not in data:
                raise SpecError(f"PolicySpec requires {key!r}")
        predictor = data.get("predictor")
        return cls(
            steering=SteeringSpec.from_dict(data["steering"]),
            scheduler=SchedulerSpec.from_dict(data["scheduler"]),
            predictor=None if predictor is None else PredictorSpec.from_dict(predictor),
            name=data.get("name", ""),
        )


def _preset(
    name: str,
    steering_kind: str,
    steering_params: Mapping[str, Any],
    scheduler_kind: str,
    predictors: bool = True,
) -> PolicySpec:
    return PolicySpec(
        steering=SteeringSpec(steering_kind, tuple(steering_params.items())),
        scheduler=SchedulerSpec(scheduler_kind),
        predictor=PredictorSpec("chunked") if predictors else None,
        name=name,
    )


# The paper's five policy stacks (Figure 14's bar labels) plus the
# readiness-aware variant exercised by the differential suite.  Each
# preset builds exactly what the old ``build_policy`` built.
PRESETS: dict[str, PolicySpec] = {
    "dependence": _preset("dependence", "dependence", {}, "oldest", predictors=False),
    "focused": _preset("focused", "criticality", {"preference": "binary"}, "critical"),
    "l": _preset("l", "criticality", {"preference": "loc"}, "loc"),
    "s": _preset(
        "s",
        "criticality",
        {"preference": "loc", "stall_over_steer": True},
        "loc",
    ),
    "p": _preset(
        "p",
        "criticality",
        {"preference": "loc", "stall_over_steer": True, "proactive": True},
        "loc",
    ),
    "readiness": PolicySpec(
        steering=SteeringSpec("readiness"),
        scheduler=SchedulerSpec("loc"),
        predictor=PredictorSpec("chunked"),
        name="readiness",
    ),
    # FU-affinity steering for heterogeneous machines: capability- and
    # latency-aware, needs no predictors.
    "affinity": _preset("affinity", "affinity", {}, "oldest", predictors=False),
}

# Preset lookup by canonical JSON, for collapsing specs back to names.
_PRESET_BY_PAYLOAD = {
    canonical_json(spec.canonical_payload()): name for name, spec in PRESETS.items()
}


def policy_names() -> tuple[str, ...]:
    """The paper's policy preset names, Figure 14 order."""
    return ("dependence", "focused", "l", "s", "p")


def resolve_policy(policy: "str | PolicySpec | Mapping[str, Any]") -> PolicySpec:
    """Any accepted policy form -> a normalized :class:`PolicySpec`.

    Accepts a preset name, a ``PolicySpec``, or a spec dict.  Unknown
    names raise :class:`SpecError` listing the presets.
    """
    if isinstance(policy, PolicySpec):
        return policy
    if isinstance(policy, str):
        try:
            return PRESETS[policy]
        except KeyError:
            raise SpecError(
                f"unknown policy {policy!r}; presets: "
                f"{', '.join(sorted(PRESETS))} (or pass a PolicySpec)"
            ) from None
    if isinstance(policy, Mapping):
        return PolicySpec.from_dict(dict(policy))
    raise SpecError(f"cannot interpret {policy!r} as a policy")


def canonical_policy(policy: "str | PolicySpec | Mapping[str, Any]") -> "str | PolicySpec":
    """Collapse ``policy`` to its canonical job form.

    A stack that equals a preset becomes the preset's name string (the
    form every legacy code path, report and golden file expects); any
    other composition stays a ``PolicySpec``.
    """
    if isinstance(policy, str):
        resolve_policy(policy)  # validate the name
        return policy
    spec = resolve_policy(policy)
    preset = _PRESET_BY_PAYLOAD.get(canonical_json(spec.canonical_payload()))
    if preset is not None:
        return preset
    if spec.name:
        # The name is cosmetic for hashing but keep it for display.
        return spec
    return replace(spec, name=spec.label)


def policy_label(policy: "str | PolicySpec") -> str:
    """Human-readable policy name for status lines and run reports."""
    if isinstance(policy, str):
        return policy
    return policy.label
