"""Shared plumbing for the declarative spec layer.

Every spec in :mod:`repro.specs` is a frozen dataclass with a
``to_dict``/``from_dict`` pair (schema-validated, plain JSON types only)
and a *canonical payload* -- the JSON-type dict that defines its
semantics.  Canonical payloads are hashed with :func:`spec_hash`; the
persistent run cache keys on these hashes, so two specs that mean the
same thing must hash identically no matter how they were spelled
(dict ordering, preset name vs expanded form, defaulted vs explicit
parameters).
"""

from __future__ import annotations

import hashlib
import json
from typing import Any

__all__ = ["SpecError", "canonical_json", "spec_hash"]

# JSON scalar types a spec parameter may take.  Compound values are
# deliberately excluded: parameters must stay trivially hashable and
# order-free so canonical hashing cannot be perturbed by spelling.
SCALAR_TYPES = (str, int, float, bool, type(None))


class SpecError(ValueError):
    """A malformed, unknown or inconsistent spec.

    Subclasses ``ValueError`` so legacy callers catching ``ValueError``
    (e.g. around the old ``build_policy``) keep working.
    """


def canonical_json(data: Any) -> str:
    """Deterministic JSON: sorted keys, no whitespace.

    This is the byte form that gets hashed, so two dicts with the same
    items in any order serialize -- and therefore hash -- identically.
    """
    return json.dumps(data, sort_keys=True, separators=(",", ":"))


def spec_hash(spec_or_payload: Any) -> str:
    """SHA-256 of a spec's canonical payload (or of a raw payload dict)."""
    payload = spec_or_payload
    canonical = getattr(spec_or_payload, "canonical_payload", None)
    if callable(canonical):
        payload = canonical()
    return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()


def require_type(value: Any, kind: type | tuple, what: str) -> Any:
    """``value`` if it has the expected JSON type, else a :class:`SpecError`."""
    if kind in (int, (int,)) and isinstance(value, bool):
        raise SpecError(f"{what} must be an integer, got {value!r}")
    if not isinstance(value, kind):
        name = kind.__name__ if isinstance(kind, type) else "/".join(
            k.__name__ for k in kind
        )
        raise SpecError(f"{what} must be {name}, got {value!r}")
    return value


def reject_unknown_keys(data: dict, allowed: set[str], what: str) -> None:
    """Schema guard: unknown keys are typos, not extensions."""
    unknown = sorted(set(data) - allowed)
    if unknown:
        raise SpecError(
            f"{what} has unknown keys {unknown}; allowed: {sorted(allowed)}"
        )
