"""Serializable machine geometry: :class:`MachineSpec`.

A ``MachineSpec`` is the declarative form of the paper's machine
configurations -- the cluster count plus the knobs
:func:`repro.core.config.clustered_machine` accepts -- validated eagerly
(bad geometries fail at spec-construction time, before any simulation)
and hashable into cache keys via its canonical payload.

``clusters`` may also be a per-cluster list (heterogeneous machines):
each entry spells one :class:`~repro.core.config.ClusterConfig`,
including optional ``latency_overrides``.  The canonical payload
*collapses* a uniform list that matches the paper scaling back to the
legacy integer spelling, so a spec written either way hashes (and
caches) identically -- heterogeneous payloads are strictly new keys.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any

from repro.core.config import (
    TOTAL_WIDTH,
    ClusterConfig,
    MachineConfig,
    clustered_machine,
    heterogeneous_machine,
)
from repro.specs.common import SpecError, reject_unknown_keys, require_type

__all__ = ["MachineSpec"]

_SCHEMA_KEYS = {
    "clusters",
    "forwarding_latency",
    "forwarding_bandwidth",
    "rob_size",
    "dispatch_width",
    "commit_width",
}

_CLUSTER_ENTRY_KEYS = {
    "issue_width",
    "int_ports",
    "fp_ports",
    "mem_ports",
    "window_size",
    "latency_overrides",
}


def _cluster_entry(data: Any, where: str) -> ClusterConfig:
    """One per-cluster spec entry -> a validated :class:`ClusterConfig`."""
    if isinstance(data, ClusterConfig):
        return data
    require_type(data, dict, where)
    reject_unknown_keys(data, _CLUSTER_ENTRY_KEYS, where)
    missing = _CLUSTER_ENTRY_KEYS - {"latency_overrides"} - set(data)
    if missing:
        raise SpecError(f"{where} missing keys: {sorted(missing)}")
    try:
        return ClusterConfig(**data)
    except (TypeError, ValueError) as exc:
        raise SpecError(f"invalid {where}: {exc}") from exc


def _cluster_payload(cluster: ClusterConfig) -> dict[str, Any]:
    """Canonical JSON form of one cluster entry (overrides key only if set)."""
    payload: dict[str, Any] = {
        "issue_width": cluster.issue_width,
        "int_ports": cluster.int_ports,
        "fp_ports": cluster.fp_ports,
        "mem_ports": cluster.mem_ports,
        "window_size": cluster.window_size,
    }
    if cluster.latency_overrides:
        payload["latency_overrides"] = dict(cluster.latency_overrides)
    return payload


@dataclass(frozen=True)
class MachineSpec:
    """Declarative form of a machine: the paper's N equal clusters, or an
    explicit per-cluster list (heterogeneous geometry).

    ``None`` overrides mean "use the :class:`MachineConfig` default"; they
    are omitted from the canonical payload so a spec that spells no
    override hashes identically to one that spells ``null``.
    """

    clusters: int | tuple[ClusterConfig, ...]
    forwarding_latency: int = 2
    forwarding_bandwidth: int | None = None
    rob_size: int | None = None
    dispatch_width: int | None = None
    commit_width: int | None = None

    def __post_init__(self) -> None:
        if not isinstance(self.clusters, int) or isinstance(self.clusters, bool):
            require_type(self.clusters, (tuple, list), "MachineSpec.clusters")
            entries = tuple(
                _cluster_entry(entry, f"MachineSpec.clusters[{i}]")
                for i, entry in enumerate(self.clusters)
            )
            if not entries:
                raise SpecError("MachineSpec.clusters list cannot be empty")
            object.__setattr__(self, "clusters", entries)
        require_type(self.forwarding_latency, int, "MachineSpec.forwarding_latency")
        for field in ("forwarding_bandwidth", "rob_size", "dispatch_width", "commit_width"):
            value = getattr(self, field)
            if value is not None:
                require_type(value, int, f"MachineSpec.{field}")
        if isinstance(self.clusters, int) and (
            self.clusters <= 0 or TOTAL_WIDTH % self.clusters != 0
        ):
            raise SpecError(
                f"MachineSpec.clusters must divide the {TOTAL_WIDTH}-wide "
                f"machine, got {self.clusters}"
            )
        if self.forwarding_latency < 0:
            raise SpecError("MachineSpec.forwarding_latency cannot be negative")
        if self.forwarding_bandwidth is not None and self.forwarding_bandwidth <= 0:
            raise SpecError(
                "MachineSpec.forwarding_bandwidth must be positive or omitted"
            )
        # Build once to surface every MachineConfig invariant (e.g. a ROB
        # smaller than the aggregate window) at spec time.
        try:
            self.build()
        except ValueError as exc:
            raise SpecError(f"invalid machine geometry: {exc}") from exc

    # ------------------------------------------------------------------
    @property
    def is_heterogeneous(self) -> bool:
        """Whether this spec spells an explicit per-cluster list."""
        return not isinstance(self.clusters, int)

    @property
    def label(self) -> str:
        """Paper-style name, e.g. ``4x2w``; ``4w+2w+2w`` for hetero lists."""
        if isinstance(self.clusters, int):
            return f"{self.clusters}x{TOTAL_WIDTH // self.clusters}w"
        return self.build().name

    def overrides(self) -> dict[str, int]:
        """The non-default MachineConfig overrides this spec carries."""
        return {
            field: value
            for field in ("forwarding_bandwidth", "rob_size", "dispatch_width", "commit_width")
            if (value := getattr(self, field)) is not None
        }

    def build(self) -> MachineConfig:
        """The live :class:`MachineConfig` this spec describes."""
        if isinstance(self.clusters, int):
            return clustered_machine(
                self.clusters,
                forwarding_latency=self.forwarding_latency,
                **self.overrides(),
            )
        overrides = self.overrides()
        rob_size = overrides.pop("rob_size", None)
        return heterogeneous_machine(
            self.clusters,
            forwarding_latency=self.forwarding_latency,
            rob_size=rob_size,
            **overrides,
        )

    # ------------------------------------------------------------------
    def _legacy_collapse(self) -> int | None:
        """The legacy integer spelling of a uniform cluster list, if any.

        A list collapses only when the built machine is exactly what
        ``clustered_machine(n)`` (plus this spec's overrides) would
        produce -- the condition under which the legacy payload already
        names this machine, keeping homogeneous hashes unchanged.
        """
        clusters = self.clusters
        if isinstance(clusters, int):
            return clusters
        n = len(clusters)
        if any(entry != clusters[0] for entry in clusters[1:]):
            return None
        if TOTAL_WIDTH % n != 0:
            return None
        try:
            legacy = clustered_machine(
                n, forwarding_latency=self.forwarding_latency, **self.overrides()
            )
        except ValueError:
            return None
        return n if legacy == self.build() else None

    def canonical_payload(self) -> dict[str, Any]:
        """Hash-stable dict: defaults materialized, None overrides dropped,
        uniform cluster lists collapsed to the legacy integer spelling."""
        collapsed = self._legacy_collapse()
        if collapsed is not None:
            clusters: Any = collapsed
        else:
            clusters = [_cluster_payload(entry) for entry in self.clusters]
        payload = {
            "clusters": clusters,
            "forwarding_latency": self.forwarding_latency,
        }
        payload.update(self.overrides())
        return payload

    def to_dict(self) -> dict[str, Any]:
        return self.canonical_payload()

    @classmethod
    def from_dict(cls, data: Any) -> "MachineSpec":
        if isinstance(data, cls):
            return data
        if isinstance(data, int) and not isinstance(data, bool):
            # Shorthand: a bare cluster count.
            return cls(clusters=data)
        require_type(data, dict, "MachineSpec")
        reject_unknown_keys(data, _SCHEMA_KEYS, "MachineSpec")
        if "clusters" not in data:
            raise SpecError("MachineSpec requires 'clusters'")
        kwargs = dict(data)
        clusters = kwargs.pop("clusters")
        if isinstance(clusters, list):
            clusters = tuple(
                _cluster_entry(entry, f"MachineSpec.clusters[{i}]")
                for i, entry in enumerate(clusters)
            )
        return cls(clusters=clusters, **kwargs)

    @classmethod
    def from_config(cls, config: MachineConfig) -> "MachineSpec":
        """The spec for a ``MachineConfig``.

        Paper-shaped configs produce the legacy integer spelling; any
        other shape (heterogeneous lists, custom uniform clusters) gets
        the explicit per-cluster spelling.  Raises :class:`SpecError`
        only when neither reproduces ``config`` exactly.
        """
        defaults = {
            f.name: f.default for f in dataclasses.fields(MachineConfig)
        }
        overrides = {
            field: getattr(config, field)
            for field in ("forwarding_bandwidth", "rob_size", "dispatch_width", "commit_width")
            if getattr(config, field) != defaults[field]
        }
        try:
            spec = cls(
                clusters=config.num_clusters,
                forwarding_latency=config.forwarding_latency,
                **overrides,
            )
            if spec.build() == config:
                return spec
        except SpecError:
            pass
        # rob_size always rides along for the explicit spelling:
        # heterogeneous_machine defaults it dynamically (max(256, total
        # window)), so reproducing ``config`` requires pinning it.
        overrides["rob_size"] = config.rob_size
        spec = cls(
            clusters=config.clusters,
            forwarding_latency=config.forwarding_latency,
            **overrides,
        )
        if spec.build() != config:
            raise SpecError(
                f"machine config {config.name} is not expressible as a MachineSpec"
            )
        return spec
