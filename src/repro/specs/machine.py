"""Serializable machine geometry: :class:`MachineSpec`.

A ``MachineSpec`` is the declarative form of the paper's machine
configurations -- the cluster count plus the knobs
:func:`repro.core.config.clustered_machine` accepts -- validated eagerly
(bad geometries fail at spec-construction time, before any simulation)
and hashable into cache keys via its canonical payload.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any

from repro.core.config import TOTAL_WIDTH, MachineConfig, clustered_machine
from repro.specs.common import SpecError, reject_unknown_keys, require_type

__all__ = ["MachineSpec"]

_SCHEMA_KEYS = {
    "clusters",
    "forwarding_latency",
    "forwarding_bandwidth",
    "rob_size",
    "dispatch_width",
    "commit_width",
}


@dataclass(frozen=True)
class MachineSpec:
    """Declarative form of a paper machine: N equal clusters of the 8-wide core.

    ``None`` overrides mean "use the :class:`MachineConfig` default"; they
    are omitted from the canonical payload so a spec that spells no
    override hashes identically to one that spells ``null``.
    """

    clusters: int
    forwarding_latency: int = 2
    forwarding_bandwidth: int | None = None
    rob_size: int | None = None
    dispatch_width: int | None = None
    commit_width: int | None = None

    def __post_init__(self) -> None:
        require_type(self.clusters, int, "MachineSpec.clusters")
        require_type(self.forwarding_latency, int, "MachineSpec.forwarding_latency")
        for field in ("forwarding_bandwidth", "rob_size", "dispatch_width", "commit_width"):
            value = getattr(self, field)
            if value is not None:
                require_type(value, int, f"MachineSpec.{field}")
        if self.clusters <= 0 or TOTAL_WIDTH % self.clusters != 0:
            raise SpecError(
                f"MachineSpec.clusters must divide the {TOTAL_WIDTH}-wide "
                f"machine, got {self.clusters}"
            )
        if self.forwarding_latency < 0:
            raise SpecError("MachineSpec.forwarding_latency cannot be negative")
        if self.forwarding_bandwidth is not None and self.forwarding_bandwidth <= 0:
            raise SpecError(
                "MachineSpec.forwarding_bandwidth must be positive or omitted"
            )
        # Build once to surface every MachineConfig invariant (e.g. a ROB
        # smaller than the aggregate window) at spec time.
        try:
            self.build()
        except ValueError as exc:
            raise SpecError(f"invalid machine geometry: {exc}") from exc

    # ------------------------------------------------------------------
    @property
    def label(self) -> str:
        """Paper-style name, e.g. ``4x2w``."""
        return f"{self.clusters}x{TOTAL_WIDTH // self.clusters}w"

    def overrides(self) -> dict[str, int]:
        """The non-default MachineConfig overrides this spec carries."""
        return {
            field: value
            for field in ("forwarding_bandwidth", "rob_size", "dispatch_width", "commit_width")
            if (value := getattr(self, field)) is not None
        }

    def build(self) -> MachineConfig:
        """The live :class:`MachineConfig` this spec describes."""
        return clustered_machine(
            self.clusters,
            forwarding_latency=self.forwarding_latency,
            **self.overrides(),
        )

    # ------------------------------------------------------------------
    def canonical_payload(self) -> dict[str, Any]:
        """Hash-stable dict: defaults materialized, None overrides dropped."""
        payload = {
            "clusters": self.clusters,
            "forwarding_latency": self.forwarding_latency,
        }
        payload.update(self.overrides())
        return payload

    def to_dict(self) -> dict[str, Any]:
        return self.canonical_payload()

    @classmethod
    def from_dict(cls, data: Any) -> "MachineSpec":
        if isinstance(data, cls):
            return data
        if isinstance(data, int) and not isinstance(data, bool):
            # Shorthand: a bare cluster count.
            return cls(clusters=data)
        require_type(data, dict, "MachineSpec")
        reject_unknown_keys(data, _SCHEMA_KEYS, "MachineSpec")
        if "clusters" not in data:
            raise SpecError("MachineSpec requires 'clusters'")
        return cls(**data)

    @classmethod
    def from_config(cls, config: MachineConfig) -> "MachineSpec":
        """The spec for a paper-shaped ``MachineConfig``.

        Raises :class:`SpecError` for configs :func:`clustered_machine`
        cannot produce (hand-built cluster shapes).
        """
        defaults = {
            f.name: f.default for f in dataclasses.fields(MachineConfig)
        }
        spec = cls(
            clusters=config.num_clusters,
            forwarding_latency=config.forwarding_latency,
            **{
                field: getattr(config, field)
                for field in ("forwarding_bandwidth", "rob_size", "dispatch_width", "commit_width")
                if getattr(config, field) != defaults[field]
            },
        )
        if spec.build() != config:
            raise SpecError(
                f"machine config {config.name} is not expressible as a MachineSpec"
            )
        return spec
