"""Serializable experiments: :class:`SweepSpec` and :class:`ExperimentSpec`.

An experiment spec is a JSON-checkable description of a whole sweep:
which workloads, which machine geometries, which policy stacks, and the
run knobs (instructions, seed, LoC mode).  ``spec.jobs(bench)``
enumerates the exact :class:`~repro.experiments.parallel.RunJob`\\ s --
the same objects the figure modules' ``plan_*`` functions emit -- so a
spec runs through the parallel workers, the persistent cache and the run
reports without any new Python.

Job order is workload-major (all of one kernel's runs before the next
kernel), with each sweep block iterating machines then policies.  The
shipped figure specs mirror their ``plan_*`` order exactly.

A spec may link itself to a reproduced figure via ``figure``; the runner
then verifies the spec's job set matches the figure's plan and renders
the figure's own table instead of the generic sweep table.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.specs.common import SpecError, reject_unknown_keys, require_type
from repro.specs.machine import MachineSpec
from repro.specs.policy import PolicySpec, canonical_policy
from repro.specs.workload import WorkloadSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.harness import Workbench
    from repro.experiments.parallel import RunJob

__all__ = ["ExperimentSpec", "SweepSpec", "load_spec"]

SCHEMA = "repro.experiment_spec/1"


def _spec_tuple(values: Any, loader, what: str) -> tuple:
    require_type(values, (list, tuple), what)
    if not values:
        raise SpecError(f"{what} must not be empty")
    return tuple(loader(value) for value in values)


@dataclass(frozen=True)
class SweepSpec:
    """One block of an experiment: machines x policies."""

    machines: tuple[MachineSpec, ...]
    policies: tuple["str | PolicySpec", ...]
    collect_ilp: bool = False
    warm: bool = True

    def __post_init__(self) -> None:
        object.__setattr__(
            self,
            "machines",
            _spec_tuple(self.machines, MachineSpec.from_dict, "SweepSpec.machines"),
        )
        object.__setattr__(
            self,
            "policies",
            _spec_tuple(self.policies, canonical_policy, "SweepSpec.policies"),
        )
        require_type(self.collect_ilp, bool, "SweepSpec.collect_ilp")
        require_type(self.warm, bool, "SweepSpec.warm")

    # ------------------------------------------------------------------
    def canonical_payload(self) -> dict[str, Any]:
        payload: dict[str, Any] = {
            "machines": [m.canonical_payload() for m in self.machines],
            "policies": [
                p if isinstance(p, str) else p.canonical_payload()
                for p in self.policies
            ],
        }
        if self.collect_ilp:
            payload["collect_ilp"] = True
        if not self.warm:
            payload["warm"] = False
        return payload

    def to_dict(self) -> dict[str, Any]:
        data: dict[str, Any] = {
            "machines": [m.to_dict() for m in self.machines],
            "policies": [
                p if isinstance(p, str) else p.to_dict() for p in self.policies
            ],
        }
        if self.collect_ilp:
            data["collect_ilp"] = True
        if not self.warm:
            data["warm"] = False
        return data

    @classmethod
    def from_dict(cls, data: Any) -> "SweepSpec":
        require_type(data, dict, "SweepSpec")
        reject_unknown_keys(
            data, {"machines", "policies", "collect_ilp", "warm"}, "SweepSpec"
        )
        for key in ("machines", "policies"):
            if key not in data:
                raise SpecError(f"SweepSpec requires {key!r}")
        return cls(
            machines=tuple(data["machines"]),
            policies=tuple(data["policies"]),
            collect_ilp=data.get("collect_ilp", False),
            warm=data.get("warm", True),
        )


@dataclass(frozen=True)
class ExperimentSpec:
    """A complete, serializable experiment.

    ``instructions`` / ``seed`` / ``loc_mode`` of ``None`` inherit the
    workbench's values (so CLI flags keep working); ``workloads=None``
    means the full suite.  ``figure`` optionally names a reproduced
    figure whose plan this spec claims to match.
    """

    name: str
    sweeps: tuple[SweepSpec, ...]
    workloads: tuple[WorkloadSpec, ...] | None = None
    instructions: int | None = None
    seed: int | None = None
    loc_mode: str | None = None
    figure: str | None = None
    description: str = ""
    execution: dict[str, Any] | None = None

    # Keys that override the executor's ExecutionPolicy...
    _POLICY_KEYS = ("max_retries", "job_timeout", "fail_fast")
    # ...plus knobs that pick *how* a sweep runs rather than what it
    # computes (scheduling priority for `repro serve`; the execution
    # backend name), which execution_policy() must filter out:
    # ExecutionPolicy has no such fields, and replace() would raise.
    _EXECUTION_KEYS = _POLICY_KEYS + ("priority", "executor")

    def __post_init__(self) -> None:
        require_type(self.name, str, "ExperimentSpec.name")
        if not self.name:
            raise SpecError("ExperimentSpec requires a non-empty name")
        object.__setattr__(
            self,
            "sweeps",
            _spec_tuple(self.sweeps, self._sweep_loader, "ExperimentSpec.sweeps"),
        )
        if self.workloads is not None:
            workloads = _spec_tuple(
                self.workloads, WorkloadSpec.from_dict, "ExperimentSpec.workloads"
            )
            kernels = [w.kernel for w in workloads]
            if len(set(kernels)) != len(kernels):
                # A kernel may appear once: repeated entries would be
                # ambiguous about which overrides win, and the generic
                # sweep table keys rows by kernel name.
                raise SpecError(
                    "ExperimentSpec.workloads lists a kernel more than once"
                )
            object.__setattr__(self, "workloads", workloads)
        if self.instructions is not None:
            require_type(self.instructions, int, "ExperimentSpec.instructions")
            if self.instructions <= 0:
                raise SpecError("ExperimentSpec.instructions must be positive")
        if self.seed is not None:
            require_type(self.seed, int, "ExperimentSpec.seed")
        if self.loc_mode is not None:
            require_type(self.loc_mode, str, "ExperimentSpec.loc_mode")
        if self.figure is not None:
            require_type(self.figure, str, "ExperimentSpec.figure")
        require_type(self.description, str, "ExperimentSpec.description")
        if self.execution is not None:
            require_type(self.execution, dict, "ExperimentSpec.execution")
            reject_unknown_keys(
                self.execution, set(self._EXECUTION_KEYS), "ExperimentSpec.execution"
            )
            if "max_retries" in self.execution:
                require_type(
                    self.execution["max_retries"],
                    int,
                    "ExperimentSpec.execution.max_retries",
                )
                if self.execution["max_retries"] < 0:
                    raise SpecError("ExperimentSpec.execution.max_retries must be >= 0")
            if "job_timeout" in self.execution:
                timeout = self.execution["job_timeout"]
                if timeout is not None:
                    require_type(
                        timeout, (int, float), "ExperimentSpec.execution.job_timeout"
                    )
                    if isinstance(timeout, bool) or timeout <= 0:
                        raise SpecError(
                            "ExperimentSpec.execution.job_timeout must be positive"
                        )
            if "fail_fast" in self.execution:
                require_type(
                    self.execution["fail_fast"],
                    bool,
                    "ExperimentSpec.execution.fail_fast",
                )
            if "priority" in self.execution:
                require_type(
                    self.execution["priority"],
                    int,
                    "ExperimentSpec.execution.priority",
                )
            if "executor" in self.execution:
                require_type(
                    self.execution["executor"],
                    str,
                    "ExperimentSpec.execution.executor",
                )
                from repro.experiments.executor import executor_names

                if self.execution["executor"] not in executor_names():
                    raise SpecError(
                        "ExperimentSpec.execution.executor must be one of "
                        f"{', '.join(executor_names())}, "
                        f"not {self.execution['executor']!r}"
                    )
            object.__setattr__(self, "execution", dict(self.execution))

    @staticmethod
    def _sweep_loader(data: Any) -> SweepSpec:
        if isinstance(data, SweepSpec):
            return data
        return SweepSpec.from_dict(data)

    # ------------------------------------------------------------------
    def benchmarks(self, bench: "Workbench"):
        """The suite kernels this spec runs on ``bench``."""
        if self.workloads is None:
            return [(spec, None, None) for spec in bench.benchmarks]
        return [
            (w.resolve(), w.instructions, w.seed) for w in self.workloads
        ]

    def jobs(self, bench: "Workbench") -> "list[RunJob]":
        """Every run this experiment needs, in execution (plan) order.

        Policies are canonicalized and the simulator backend is chosen by
        :meth:`Workbench.sim_for`, exactly as :meth:`Workbench.job` does
        -- a spec-built plan and a hand-built job for the same run must
        agree on one job identity (and one cache key), including the
        ``batch="auto"`` promotion to the batched backend.
        """
        from repro.experiments.parallel import RunJob
        from repro.specs.policy import canonical_policy

        jobs: list[RunJob] = []
        for kernel, instr_override, seed_override in self.benchmarks(bench):
            instructions = (
                instr_override
                if instr_override is not None
                else self.instructions
                if self.instructions is not None
                else bench.instructions
            )
            seed = (
                seed_override
                if seed_override is not None
                else self.seed
                if self.seed is not None
                else bench.seed
            )
            loc_mode = self.loc_mode if self.loc_mode is not None else bench.loc_mode
            for sweep in self.sweeps:
                for machine in sweep.machines:
                    config = machine.build()
                    for policy in sweep.policies:
                        policy = canonical_policy(policy)
                        jobs.append(
                            RunJob(
                                kernel=kernel.name,
                                instructions=instructions,
                                seed=seed,
                                loc_mode=loc_mode,
                                config=config,
                                policy=policy,
                                collect_ilp=sweep.collect_ilp,
                                warm=sweep.warm,
                                sim=bench.sim_for(policy, config),
                                metrics=bench.metrics,
                            )
                        )
        return jobs

    def execution_policy(self, base):
        """The spec's ``execution`` overrides applied over ``base``.

        ``base`` is an :class:`~repro.experiments.outcomes.ExecutionPolicy`
        (typically the workbench's, i.e. the CLI flags); keys the spec
        does not set keep the base values.  Returns ``base`` unchanged
        when the spec declares no overrides.  Service-only execution
        keys (``priority``) are not policy fields and are ignored here.
        """
        overrides = {
            key: value
            for key, value in (self.execution or {}).items()
            if key in self._POLICY_KEYS
        }
        if not overrides:
            return base
        from dataclasses import replace

        return replace(base, **overrides)

    # ------------------------------------------------------------------
    def canonical_payload(self) -> dict[str, Any]:
        # ``execution`` is deliberately absent: how a sweep is babysat
        # (retries, timeouts) never changes what it computes, so it must
        # not perturb spec_hash -- cached results and resume manifests
        # stay valid when someone tunes the fault-tolerance knobs.
        payload: dict[str, Any] = {
            "sweeps": [s.canonical_payload() for s in self.sweeps],
        }
        if self.workloads is not None:
            payload["workloads"] = [w.canonical_payload() for w in self.workloads]
        for key in ("instructions", "seed", "loc_mode"):
            value = getattr(self, key)
            if value is not None:
                payload[key] = value
        return payload

    def to_dict(self) -> dict[str, Any]:
        data: dict[str, Any] = {"schema": SCHEMA, "name": self.name}
        if self.description:
            data["description"] = self.description
        if self.figure is not None:
            data["figure"] = self.figure
        for key in ("instructions", "seed", "loc_mode"):
            value = getattr(self, key)
            if value is not None:
                data[key] = value
        if self.execution is not None:
            data["execution"] = dict(self.execution)
        if self.workloads is not None:
            data["workloads"] = [w.to_dict() for w in self.workloads]
        data["sweeps"] = [s.to_dict() for s in self.sweeps]
        return data

    @classmethod
    def from_dict(cls, data: Any) -> "ExperimentSpec":
        require_type(data, dict, "ExperimentSpec")
        reject_unknown_keys(
            data,
            {
                "schema",
                "name",
                "description",
                "figure",
                "instructions",
                "seed",
                "loc_mode",
                "workloads",
                "sweeps",
                "execution",
            },
            "ExperimentSpec",
        )
        schema = data.get("schema", SCHEMA)
        if schema != SCHEMA:
            raise SpecError(
                f"unsupported experiment-spec schema {schema!r}; this build "
                f"reads {SCHEMA!r}"
            )
        if "name" not in data:
            raise SpecError("ExperimentSpec requires 'name'")
        if "sweeps" not in data:
            raise SpecError("ExperimentSpec requires 'sweeps'")
        workloads = data.get("workloads")
        return cls(
            name=data["name"],
            sweeps=tuple(data["sweeps"]),
            workloads=None if workloads is None else tuple(workloads),
            instructions=data.get("instructions"),
            seed=data.get("seed"),
            loc_mode=data.get("loc_mode"),
            figure=data.get("figure"),
            description=data.get("description", ""),
            execution=data.get("execution"),
        )

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent) + ("\n" if indent else "")


def load_spec(path: "str | pathlib.Path") -> ExperimentSpec:
    """Read and validate an :class:`ExperimentSpec` JSON file."""
    path = pathlib.Path(path)
    try:
        data = json.loads(path.read_text())
    except OSError as exc:
        raise SpecError(f"cannot read spec {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise SpecError(f"spec {path} is not valid JSON: {exc}") from exc
    return ExperimentSpec.from_dict(data)
