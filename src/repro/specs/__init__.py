"""Declarative spec layer: machines, policies, workloads and experiments as data.

The paper's composition space -- steering x scheduling x predictor x
cluster geometry -- is described by frozen, serializable spec dataclasses
instead of hand-written constructor calls:

* :class:`MachineSpec` -- cluster geometry (``clusters``, forwarding
  latency/bandwidth, optional ROB/dispatch/commit overrides);
* :class:`PolicySpec` -- a steering + scheduler + predictor stack, with
  the paper's five stacks as presets (:data:`PRESETS`);
* :class:`WorkloadSpec` -- one suite kernel with optional overrides;
* :class:`ExperimentSpec` -- workloads x sweep blocks, loadable from a
  JSON file (:func:`load_spec`, CLI ``--spec``).

Components are built through typed registries
(:func:`register_steering`, :func:`register_scheduler`,
:func:`register_predictor`), so out-of-tree policies plug into specs, the
CLI, the persistent cache and run reports without touching core.

Canonical payloads (:meth:`~MachineSpec.canonical_payload` etc.) are the
hash domain for cache keys: semantically equal specs -- preset name vs
expanded form, defaulted vs explicit parameters, any JSON key order --
hash identically via :func:`spec_hash`.
"""

from repro.specs.common import SpecError, canonical_json, spec_hash
from repro.specs.experiment import ExperimentSpec, SweepSpec, load_spec
from repro.specs.machine import MachineSpec
from repro.specs.policy import (
    PRESETS,
    PolicySpec,
    PredictorSpec,
    SchedulerSpec,
    SteeringSpec,
    canonical_policy,
    policy_label,
    policy_names,
    resolve_policy,
)
from repro.specs.registry import (
    PREDICTORS,
    Registry,
    SCHEDULERS,
    STEERING,
    register_predictor,
    register_scheduler,
    register_steering,
)
from repro.specs.workload import WorkloadSpec

__all__ = [
    "PRESETS",
    "PREDICTORS",
    "ExperimentSpec",
    "MachineSpec",
    "PolicySpec",
    "PredictorSpec",
    "Registry",
    "SCHEDULERS",
    "STEERING",
    "SchedulerSpec",
    "SpecError",
    "SteeringSpec",
    "SweepSpec",
    "WorkloadSpec",
    "canonical_json",
    "canonical_policy",
    "load_spec",
    "policy_label",
    "policy_names",
    "register_predictor",
    "register_scheduler",
    "register_steering",
    "resolve_policy",
    "spec_hash",
]
