"""Typed component registries: how specs become live policy objects.

A registry maps a *kind* name (``"dependence"``, ``"loc"``, ``"chunked"``)
to a factory.  Factories are plain callables whose keyword parameters --
all of which must carry defaults -- define the spec schema for that kind:
the spec layer inspects the signature to validate parameter names, fill
defaults into canonical payloads (so a spec that spells a default
explicitly hashes identically to one that omits it) and coerce obvious
JSON type drift (``1`` for a float parameter).

Out-of-tree code plugs in without touching core::

    from repro.api import register_steering

    @register_steering("ineffectuality")
    def build_ineffectuality(window: int = 64):
        return MyIneffectualitySteering(window)

and ``"ineffectuality"`` immediately works everywhere a steering kind is
accepted: ``PolicySpec`` files, the CLI's ``--spec``, the run cache, run
reports.

Three registries are populated here with every in-tree component:

* :data:`STEERING` -- cluster-assignment policies;
* :data:`SCHEDULERS` -- per-cluster issue-priority policies;
* :data:`PREDICTORS` -- criticality predictor suites + trainers (these
  factories additionally receive the runtime ``loc_mode`` and ``seed``
  arguments, which belong to the :class:`~repro.experiments.parallel.
  RunJob`, not the spec).
"""

from __future__ import annotations

import inspect
from typing import Any, Callable

from repro.specs.common import SCALAR_TYPES, SpecError

__all__ = [
    "PREDICTORS",
    "Registry",
    "SCHEDULERS",
    "STEERING",
    "register_predictor",
    "register_scheduler",
    "register_steering",
]


class Registry:
    """A named table of spec-buildable component factories."""

    def __init__(self, label: str, runtime_params: tuple[str, ...] = ()):
        self.label = label
        # Parameters the *caller* supplies at build time (never the spec);
        # they are invisible to spec validation and canonical payloads.
        self.runtime_params = runtime_params
        self._factories: dict[str, Callable] = {}

    # ------------------------------------------------------------------
    def register(self, name: str, factory: Callable | None = None):
        """Register ``factory`` under ``name`` (usable as a decorator)."""

        def add(fn: Callable):
            existing = self._factories.get(name)
            if existing is not None and existing is not fn:
                raise SpecError(
                    f"{self.label} kind {name!r} is already registered"
                )
            self._spec_params(fn)  # validate the signature eagerly
            self._factories[name] = fn
            return fn

        if factory is not None:
            return add(factory)
        return add

    def unregister(self, name: str) -> None:
        """Remove a registration (test/plugin teardown helper)."""
        self._factories.pop(name, None)

    def names(self) -> list[str]:
        """Registered kind names, sorted."""
        return sorted(self._factories)

    def __contains__(self, name: str) -> bool:
        return name in self._factories

    def get(self, name: str) -> Callable:
        """The factory for ``name``; unknown kinds list the valid ones."""
        try:
            return self._factories[name]
        except KeyError:
            raise SpecError(
                f"unknown {self.label} kind {name!r}; "
                f"registered: {', '.join(self.names())}"
            ) from None

    # ------------------------------------------------------------------
    def _spec_params(self, factory: Callable) -> dict[str, Any]:
        """name -> default for every spec-settable factory parameter."""
        params = {}
        for param in inspect.signature(factory).parameters.values():
            if param.name in self.runtime_params:
                continue
            if param.kind in (param.VAR_POSITIONAL, param.VAR_KEYWORD):
                raise SpecError(
                    f"{self.label} factory {factory!r} may not use "
                    "*args/**kwargs: spec parameters must be named"
                )
            if param.default is param.empty:
                raise SpecError(
                    f"{self.label} factory parameter {param.name!r} needs a "
                    "default: specs omit parameters they do not set"
                )
            params[param.name] = param.default
        return params

    def normalize(self, name: str, params: dict[str, Any]) -> dict[str, Any]:
        """Validate ``params`` for ``name`` and materialize every default.

        The returned dict always contains *all* spec parameters, so the
        canonical payload -- and hence the cache key -- is identical
        whether a spec spelled a default explicitly or omitted it.
        """
        accepted = self._spec_params(self.get(name))
        unknown = sorted(set(params) - set(accepted))
        if unknown:
            raise SpecError(
                f"{self.label} kind {name!r} has no parameters {unknown}; "
                f"accepted: {sorted(accepted)}"
            )
        merged = dict(accepted)
        for key, value in params.items():
            default = accepted[key]
            if not isinstance(value, SCALAR_TYPES):
                raise SpecError(
                    f"{self.label} {name!r} parameter {key!r} must be a JSON "
                    f"scalar, got {value!r}"
                )
            # Canonical-form coercion: a literal ``1`` for a float-valued
            # parameter must hash like ``1.0``.
            if (
                isinstance(default, float)
                and isinstance(value, int)
                and not isinstance(value, bool)
            ):
                value = float(value)
            merged[key] = value
        return merged

    def build(self, name: str, params: dict[str, Any], **runtime: Any):
        """Instantiate ``name`` with spec ``params`` plus runtime arguments."""
        return self.get(name)(**runtime, **params)


STEERING = Registry("steering")
SCHEDULERS = Registry("scheduler")
PREDICTORS = Registry("predictor", runtime_params=("loc_mode", "seed"))

# Decorator aliases -- the extension surface re-exported by repro.api.
register_steering = STEERING.register
register_scheduler = SCHEDULERS.register
register_predictor = PREDICTORS.register


# ---------------------------------------------------------------------------
# In-tree steering policies
# ---------------------------------------------------------------------------


@register_steering("dependence")
def _build_dependence_steering():
    from repro.core.steering.dependence import DependenceSteering

    return DependenceSteering()


def _criticality_config(
    preference: str,
    stall_over_steer: bool,
    stall_loc_threshold: float,
    proactive: bool,
    keep_min_loc: float,
    keep_fraction: float,
):
    from repro.core.steering.dependence import CriticalitySteeringConfig

    return CriticalitySteeringConfig(
        preference=preference,
        stall_over_steer=stall_over_steer,
        stall_loc_threshold=stall_loc_threshold,
        proactive=proactive,
        keep_min_loc=keep_min_loc,
        keep_fraction=keep_fraction,
    )


@register_steering("criticality")
def _build_criticality_steering(
    preference: str = "binary",
    stall_over_steer: bool = False,
    stall_loc_threshold: float = 0.30,
    proactive: bool = False,
    keep_min_loc: float = 0.05,
    keep_fraction: float = 0.5,
):
    from repro.core.steering.dependence import CriticalitySteering

    return CriticalitySteering(
        _criticality_config(
            preference,
            stall_over_steer,
            stall_loc_threshold,
            proactive,
            keep_min_loc,
            keep_fraction,
        )
    )


@register_steering("readiness")
def _build_readiness_steering(
    horizon: int = 2,
    preference: str = "loc",
    stall_over_steer: bool = True,
    stall_loc_threshold: float = 0.30,
    proactive: bool = True,
    keep_min_loc: float = 0.05,
    keep_fraction: float = 0.5,
):
    from repro.core.steering.readiness import ReadinessAwareSteering

    return ReadinessAwareSteering(
        _criticality_config(
            preference,
            stall_over_steer,
            stall_loc_threshold,
            proactive,
            keep_min_loc,
            keep_fraction,
        ),
        horizon=horizon,
    )


@register_steering("affinity")
def _build_affinity_steering(prefer_producer: bool = True):
    from repro.core.steering.affinity import AffinitySteering

    return AffinitySteering(prefer_producer=prefer_producer)


@register_steering("modulo")
def _build_modulo_steering():
    from repro.core.steering.simple import ModuloSteering

    return ModuloSteering()


@register_steering("loadbal")
def _build_loadbal_steering():
    from repro.core.steering.simple import LoadBalanceSteering

    return LoadBalanceSteering()


@register_steering("stall_always")
def _build_always_stall_steering():
    from repro.core.steering.stall_baselines import AlwaysStallSteering

    return AlwaysStallSteering()


@register_steering("stall_occupancy")
def _build_occupancy_stall_steering(occupancy_threshold: float = 0.75):
    from repro.core.steering.stall_baselines import OccupancyStallSteering

    return OccupancyStallSteering(occupancy_threshold=occupancy_threshold)


# ---------------------------------------------------------------------------
# In-tree schedulers
# ---------------------------------------------------------------------------


@register_scheduler("oldest")
def _build_oldest_scheduler():
    from repro.core.scheduling.policies import OldestFirstScheduler

    return OldestFirstScheduler()


@register_scheduler("critical")
def _build_critical_scheduler():
    from repro.core.scheduling.policies import CriticalFirstScheduler

    return CriticalFirstScheduler()


@register_scheduler("loc")
def _build_loc_scheduler():
    from repro.core.scheduling.policies import LocScheduler

    return LocScheduler()


# ---------------------------------------------------------------------------
# In-tree predictor suites (factory returns (PredictorSuite, trainer))
# ---------------------------------------------------------------------------


def _loc_suite(loc_mode: str, seed: int):
    from repro.criticality.loc import LocPredictor, PredictorSuite

    return PredictorSuite(loc_predictor=LocPredictor(mode=loc_mode, seed=seed))


@register_predictor("chunked")
def _build_chunked_predictors(loc_mode: str, seed: int, chunk_size: int = 2048):
    from repro.criticality.trainer import ChunkedCriticalityTrainer

    suite = _loc_suite(loc_mode, seed)
    return suite, ChunkedCriticalityTrainer(suite, chunk_size=chunk_size)


@register_predictor("token")
def _build_token_predictors(
    loc_mode: str,
    seed: int,
    plant_interval: int = 32,
    survival_distance: int = 384,
    num_tokens: int = 8,
):
    from repro.criticality.token_detector import TokenPassingTrainer

    suite = _loc_suite(loc_mode, seed)
    trainer = TokenPassingTrainer(
        suite,
        plant_interval=plant_interval,
        survival_distance=survival_distance,
        num_tokens=num_tokens,
    )
    return suite, trainer
