"""Serializable workload selection: :class:`WorkloadSpec`.

A workload spec names one suite kernel and may override the experiment's
instruction budget or data seed for that kernel alone.  In JSON a bare
string (``"vpr"``) is shorthand for a spec with no overrides.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.specs.common import SpecError, reject_unknown_keys, require_type
from repro.workloads.common import KernelSpec
from repro.workloads.suite import get_kernel, suite_names

__all__ = ["WorkloadSpec"]


@dataclass(frozen=True)
class WorkloadSpec:
    """One suite kernel, with optional per-kernel overrides."""

    kernel: str
    instructions: int | None = None
    seed: int | None = None

    def __post_init__(self) -> None:
        require_type(self.kernel, str, "WorkloadSpec.kernel")
        if self.kernel not in suite_names():
            raise SpecError(
                f"unknown kernel {self.kernel!r}; suite: {', '.join(suite_names())}"
            )
        for name in ("instructions", "seed"):
            value = getattr(self, name)
            if value is not None:
                require_type(value, int, f"WorkloadSpec.{name}")
        if self.instructions is not None and self.instructions <= 0:
            raise SpecError("WorkloadSpec.instructions must be positive")

    def resolve(self) -> KernelSpec:
        """The live suite kernel this spec names."""
        return get_kernel(self.kernel)

    # ------------------------------------------------------------------
    def canonical_payload(self) -> Any:
        if self.instructions is None and self.seed is None:
            return self.kernel
        payload: dict[str, Any] = {"kernel": self.kernel}
        if self.instructions is not None:
            payload["instructions"] = self.instructions
        if self.seed is not None:
            payload["seed"] = self.seed
        return payload

    def to_dict(self) -> Any:
        return self.canonical_payload()

    @classmethod
    def from_dict(cls, data: Any) -> "WorkloadSpec":
        if isinstance(data, cls):
            return data
        if isinstance(data, str):
            return cls(kernel=data)
        require_type(data, dict, "WorkloadSpec")
        reject_unknown_keys(data, {"kernel", "instructions", "seed"}, "WorkloadSpec")
        if "kernel" not in data:
            raise SpecError("WorkloadSpec requires 'kernel'")
        return cls(**data)
