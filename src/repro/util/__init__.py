"""Shared utilities: counters, deterministic RNG, table rendering."""

from repro.util.counters import (
    ExactFrequencyCounter,
    ProbabilisticLevelCounter,
    SaturatingCounter,
    StratifiedFrequencyCounter,
)
from repro.util.rng import seeded_rng
from repro.util.tables import format_histogram, format_stacked_rows, format_table

__all__ = [
    "ExactFrequencyCounter",
    "ProbabilisticLevelCounter",
    "SaturatingCounter",
    "StratifiedFrequencyCounter",
    "seeded_rng",
    "format_histogram",
    "format_stacked_rows",
    "format_table",
]
