"""Saturating and probabilistic counters used by the criticality predictors.

The paper's focused-scheduling baseline (Fields et al.) uses 6-bit saturating
counters that increment by 8 when an instruction trains critical and decrement
by 1 otherwise, with a predict-critical threshold of 8 (Section 4, footnote 6).

The likelihood-of-criticality predictor (Section 7) stratifies LoC into 16
levels stored in 4 bits, maintained with probabilistic counter updates in the
style of Riley & Zilles (2005): on each training event the counter moves one
level toward the observed outcome with a probability chosen so that the
steady-state level tracks the underlying criticality frequency.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field


@dataclass
class SaturatingCounter:
    """A saturating up/down counter.

    Parameters mirror the Fields predictor: ``bits`` bounds the value to
    ``[0, 2**bits - 1]``; ``increment``/``decrement`` are the step sizes for
    the two training directions; ``threshold`` is the predict-true cutoff.
    """

    bits: int = 6
    increment: int = 8
    decrement: int = 1
    threshold: int = 8
    value: int = 0

    def __post_init__(self) -> None:
        if self.bits <= 0:
            raise ValueError(f"bits must be positive, got {self.bits}")
        self._max = (1 << self.bits) - 1
        if not 0 <= self.value <= self._max:
            raise ValueError(f"value {self.value} out of range for {self.bits} bits")

    @property
    def max_value(self) -> int:
        """Largest representable counter value."""
        return self._max

    def train(self, outcome: bool) -> None:
        """Move the counter toward ``outcome`` (True = critical)."""
        if outcome:
            self.value = min(self._max, self.value + self.increment)
        else:
            self.value = max(0, self.value - self.decrement)

    def predict(self) -> bool:
        """Return True when the counter is at or above the threshold."""
        return self.value >= self.threshold


@dataclass
class ProbabilisticLevelCounter:
    """A ``levels``-level counter updated probabilistically.

    Level ``k`` of ``L`` levels represents an estimated frequency of
    ``k / (L - 1)``.  On a training event with outcome ``o`` (0 or 1) the
    counter moves one level toward ``o`` with probability proportional to the
    distance between ``o`` and the current estimate.  In steady state the
    expected level equals the underlying outcome frequency: at level ``k`` the
    up-rate is ``p * (1 - k/(L-1))`` and the down-rate ``(1-p) * k/(L-1)``,
    which balance exactly when ``k/(L-1) == p``.

    With ``levels=16`` this is the paper's 4-bit LoC counter.
    """

    levels: int = 16
    level: int = 0
    rng: random.Random = field(default_factory=random.Random, repr=False)

    def __post_init__(self) -> None:
        if self.levels < 2:
            raise ValueError(f"need at least 2 levels, got {self.levels}")
        if not 0 <= self.level < self.levels:
            raise ValueError(f"level {self.level} out of range")

    @property
    def fraction(self) -> float:
        """The frequency estimate represented by the current level."""
        return self.level / (self.levels - 1)

    def train(self, outcome: bool) -> None:
        """Probabilistically move one level toward ``outcome``."""
        estimate = self.fraction
        if outcome:
            move_probability = 1.0 - estimate
            if move_probability > 0 and self.rng.random() < move_probability:
                self.level += 1
        else:
            move_probability = estimate
            if move_probability > 0 and self.rng.random() < move_probability:
                self.level -= 1


@dataclass
class ExactFrequencyCounter:
    """Unbounded-precision frequency counter (the LoC ablation baseline).

    Tracks the exact fraction of training events with outcome True.
    """

    hits: int = 0
    total: int = 0

    @property
    def fraction(self) -> float:
        """Observed frequency of True outcomes; 0.0 before any training."""
        if self.total == 0:
            return 0.0
        return self.hits / self.total

    def train(self, outcome: bool) -> None:
        """Record one outcome."""
        self.total += 1
        if outcome:
            self.hits += 1


@dataclass
class StratifiedFrequencyCounter:
    """Exact frequency counter quantized to a fixed number of levels.

    Used by the ablation comparing 16-level stratification against unlimited
    precision (Section 7: "stratifying LoC into 16 levels produces results
    almost equivalent to a counter with unlimited precision").
    """

    levels: int = 16
    hits: int = 0
    total: int = 0

    def __post_init__(self) -> None:
        if self.levels < 2:
            raise ValueError(f"need at least 2 levels, got {self.levels}")

    @property
    def fraction(self) -> float:
        """Observed frequency, rounded to the nearest representable level."""
        if self.total == 0:
            return 0.0
        exact = self.hits / self.total
        steps = self.levels - 1
        return round(exact * steps) / steps

    def train(self, outcome: bool) -> None:
        """Record one outcome."""
        self.total += 1
        if outcome:
            self.hits += 1
