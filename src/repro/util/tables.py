"""Plain-text table and histogram rendering for experiment output.

The benchmark harness prints the same rows and series the paper's figures
plot; these helpers keep that output aligned and readable without any
plotting dependency.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    float_format: str = "{:.3f}",
) -> str:
    """Render ``rows`` under ``headers`` as an aligned plain-text table."""
    rendered_rows = []
    for row in rows:
        rendered = []
        for cell in row:
            if isinstance(cell, float):
                rendered.append(float_format.format(cell))
            else:
                rendered.append(str(cell))
        rendered_rows.append(rendered)

    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells)).rstrip()

    separator = "  ".join("-" * w for w in widths)
    body = [line(headers), separator]
    body.extend(line(row) for row in rendered_rows)
    return "\n".join(body)


def format_histogram(
    bins: Sequence[str],
    values: Sequence[float],
    width: int = 50,
) -> str:
    """Render a labelled horizontal bar histogram."""
    if len(bins) != len(values):
        raise ValueError("bins and values must have equal length")
    peak = max(values) if values else 0.0
    label_width = max((len(b) for b in bins), default=0)
    lines = []
    for label, value in zip(bins, values):
        bar_length = 0 if peak == 0 else round(width * value / peak)
        lines.append(f"{label.rjust(label_width)} | {'#' * bar_length} {value:.2f}")
    return "\n".join(lines)


def format_stacked_rows(
    labels: Sequence[str],
    components: dict[str, Sequence[float]],
) -> str:
    """Render stacked-bar data (one component column per stack segment)."""
    headers = ["config", *components.keys(), "total"]
    rows = []
    for i, label in enumerate(labels):
        segment_values = [components[name][i] for name in components]
        rows.append([label, *segment_values, sum(segment_values)])
    return format_table(headers, rows)
