"""Deterministic random-number helpers.

Every stochastic component in the simulator (workload data initialization,
probabilistic counter updates) takes an explicit seed so that experiment runs
are exactly reproducible.
"""

from __future__ import annotations

import random
import zlib


def seeded_rng(*parts: object) -> random.Random:
    """Create a ``random.Random`` deterministically derived from ``parts``.

    The parts (strings, ints, etc.) are hashed with crc32 so that the same
    logical identity -- e.g. ``("vpr", "data", 0)`` -- always yields the same
    stream, independent of Python's per-process hash randomization.
    """
    key = "\x1f".join(str(p) for p in parts)
    return random.Random(zlib.crc32(key.encode("utf-8")))
