"""``python -m repro``: forward to the ``repro`` console command."""

from repro.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
