"""Figure 4: focused steering and scheduling (the state of the art).

The same configurations as Figure 2, but simulated with Fields et al.'s
focused policy instead of idealized scheduling.  The paper's finding: the
2-cluster machine is usually within 5% of monolithic, the 4-cluster machine
shows slowdowns over 10%, and the 8-cluster machine averages ~20% -- an
order of magnitude worse than the idealized potential.
"""

from __future__ import annotations

from repro.core.config import monolithic_machine
from repro.experiments.figure import FigureData, annotate_failures
from repro.experiments.harness import Workbench
from repro.specs import ExperimentSpec, MachineSpec, SweepSpec

# Registry name: the key this figure goes by in EXPERIMENTS / PLANS
# and on the CLI.
NAME = "figure4"

__all__ = ["NAME", "plan_figure4", "run_figure4", "spec_figure4"]

CLUSTER_COUNTS = (2, 4, 8)


def spec_figure4(forwarding_latency: int = 2) -> ExperimentSpec:
    """Figure 4's sweep as a declarative spec."""
    return ExperimentSpec(
        name=NAME,
        figure=NAME,
        description="Focused steering and scheduling vs monolithic",
        sweeps=(
            SweepSpec(machines=(MachineSpec(1),), policies=("focused",)),
            SweepSpec(
                machines=tuple(
                    MachineSpec(count, forwarding_latency=forwarding_latency)
                    for count in CLUSTER_COUNTS
                ),
                policies=("focused",),
            ),
        ),
    )


def plan_figure4(bench: Workbench, forwarding_latency: int = 2):
    """The runs Figure 4 needs, for parallel prefetch."""
    return spec_figure4(forwarding_latency).jobs(bench)


def run_figure4(bench: Workbench, forwarding_latency: int = 2) -> FigureData:
    """Reproduce Figure 4 rows (one per benchmark, plus the average)."""
    bench.prefetch(plan_figure4(bench, forwarding_latency))
    figure = FigureData(
        figure_id="Figure 4",
        title="Focused steering and scheduling (normalized CPI vs 1x8w)",
        headers=["benchmark", "2x4w", "4x2w", "8x1w"],
        notes=[
            "paper: ~5% (2 clusters), >10% on several (4 clusters), "
            "~20% average (8 clusters)",
        ],
    )
    sums = [0.0] * len(CLUSTER_COUNTS)
    ok_counts = [0] * len(CLUSTER_COUNTS)
    failed = []
    for spec in bench.benchmarks:
        base_out = bench.outcome(spec, monolithic_machine(), "focused")
        if not base_out.ok:
            # No baseline, no normalization: the whole row fails.
            failed.append(base_out)
            label = base_out.failure.label()
            figure.add_row(spec.name, *([label] * len(CLUSTER_COUNTS)))
            continue
        base = base_out.result.cpi
        cells = []
        for i, count in enumerate(CLUSTER_COUNTS):
            config = bench.clustered(count, forwarding_latency)
            out = bench.outcome(spec, config, "focused")
            if not out.ok:
                failed.append(out)
                cells.append(out.failure.label())
                continue
            value = out.result.cpi / base
            cells.append(value)
            sums[i] += value
            ok_counts[i] += 1
        figure.add_row(spec.name, *cells)
    figure.add_row(
        "AVE", *[s / n if n else float("nan") for s, n in zip(sums, ok_counts)]
    )
    annotate_failures(figure, failed)
    return figure
