"""Multi-seed aggregation (the paper's three-sample methodology).

Section 2.1: "For each benchmark, we average results from three 100 million
instruction runs ... starting at 3, 5 and 8 billion instructions into the
run."  Our analogue: run the same experiment with several workload data
seeds and average the numeric cells of the resulting figures, reporting the
spread so the stability of each shape is visible.
"""

from __future__ import annotations

import math
from collections.abc import Callable, Sequence

from repro.experiments.cache import RunCache
from repro.experiments.figure import FigureData
from repro.experiments.harness import Workbench


def run_seeded(
    experiment: Callable[[Workbench], FigureData],
    seeds: Sequence[int] = (0, 1, 2),
    instructions: int = 8000,
    benchmarks=None,
    workers: int = 0,
    cache: RunCache | None = None,
    **workbench_kwargs,
) -> FigureData:
    """Run ``experiment`` once per seed and average the numeric cells.

    Rows are matched positionally (every seed produces the same row
    structure since only workload data changes).  Non-numeric cells must
    agree across seeds.  The returned figure carries a per-column
    max-spread note.

    Seeds are embarrassingly parallel: with ``workers`` > 1, each seed's
    workbench fans its simulations out over a process pool (via the
    experiment's prefetch plan), and a shared ``cache`` persists every
    seed's runs across invocations.
    """
    if not seeds:
        raise ValueError("need at least one seed")
    figures = []
    for seed in seeds:
        bench = Workbench(
            instructions=instructions,
            seed=seed,
            benchmarks=benchmarks,
            workers=workers,
            cache=cache,
            **workbench_kwargs,
        )
        figures.append(experiment(bench))
    return average_figures(figures, seeds)


def average_figures(
    figures: Sequence[FigureData], seeds: Sequence[int]
) -> FigureData:
    """Cell-wise average of structurally compatible figures.

    Rows are matched positionally when every seed produced the same row
    count.  Figures whose row *sets* legitimately differ across seeds
    (e.g. Figure 15's available-ILP bins, which depend on the workload
    data) are aligned by row label instead; a row missing from some seeds
    is averaged over the seeds that have it.
    """
    first = figures[0]
    for other in figures[1:]:
        if list(other.headers) != list(first.headers):
            raise ValueError("figures have different headers across seeds")

    if all(len(fig.rows) == len(first.rows) for fig in figures):
        row_groups = [
            [fig.rows[row_index] for fig in figures]
            for row_index in range(len(first.rows))
        ]
    else:
        row_groups = _align_rows_by_label(figures)

    merged = FigureData(
        figure_id=first.figure_id,
        title=f"{first.title} (mean of {len(figures)} seeds)",
        headers=first.headers,
        notes=list(first.notes),
    )
    worst_spread = 0.0
    for rows in row_groups:
        cells = []
        for col_index in range(len(first.headers)):
            values = [row[col_index] for row in rows]
            if all(isinstance(v, (int, float)) and not isinstance(v, bool)
                   for v in values):
                finite = [v for v in values if not math.isnan(v)]
                if not finite:
                    cells.append(float("nan"))
                    continue
                mean = sum(finite) / len(finite)
                cells.append(mean)
                worst_spread = max(worst_spread, max(finite) - min(finite))
            else:
                if any(v != values[0] for v in values):
                    raise ValueError(
                        f"non-numeric cell differs across seeds: {values}"
                    )
                cells.append(values[0])
        merged.rows.append(tuple(cells))
    merged.notes.append(
        f"seeds {list(seeds)}; worst per-cell spread {worst_spread:.4f}"
    )
    return merged


def _align_rows_by_label(
    figures: Sequence[FigureData],
) -> list[list[Sequence[object]]]:
    """Group rows by first-cell label, in first-seen order across seeds."""
    for fig in figures:
        labels = [row[0] for row in fig.rows]
        if len(set(labels)) != len(labels):
            raise ValueError(
                "figures have different structure across seeds and "
                "row labels are not unique enough to align them"
            )
    order: list[object] = []
    groups: dict[object, list[Sequence[object]]] = {}
    for fig in figures:
        for row in fig.rows:
            if row[0] not in groups:
                order.append(row[0])
                groups[row[0]] = []
            groups[row[0]].append(row)
    return [groups[label] for label in order]
