"""Multi-seed aggregation (the paper's three-sample methodology).

Section 2.1: "For each benchmark, we average results from three 100 million
instruction runs ... starting at 3, 5 and 8 billion instructions into the
run."  Our analogue: run the same experiment with several workload data
seeds and average the numeric cells of the resulting figures, reporting the
spread so the stability of each shape is visible.
"""

from __future__ import annotations

import math
from collections.abc import Callable, Sequence

from repro.experiments.figure import FigureData
from repro.experiments.harness import Workbench


def run_seeded(
    experiment: Callable[[Workbench], FigureData],
    seeds: Sequence[int] = (0, 1, 2),
    instructions: int = 8000,
    benchmarks=None,
    **workbench_kwargs,
) -> FigureData:
    """Run ``experiment`` once per seed and average the numeric cells.

    Rows are matched positionally (every seed produces the same row
    structure since only workload data changes).  Non-numeric cells must
    agree across seeds.  The returned figure carries a per-column
    max-spread note.
    """
    if not seeds:
        raise ValueError("need at least one seed")
    figures = []
    for seed in seeds:
        bench = Workbench(
            instructions=instructions,
            seed=seed,
            benchmarks=benchmarks,
            **workbench_kwargs,
        )
        figures.append(experiment(bench))
    return average_figures(figures, seeds)


def average_figures(
    figures: Sequence[FigureData], seeds: Sequence[int]
) -> FigureData:
    """Cell-wise average of structurally identical figures."""
    first = figures[0]
    for other in figures[1:]:
        if len(other.rows) != len(first.rows) or list(other.headers) != list(
            first.headers
        ):
            raise ValueError("figures have different structure across seeds")

    merged = FigureData(
        figure_id=first.figure_id,
        title=f"{first.title} (mean of {len(figures)} seeds)",
        headers=first.headers,
        notes=list(first.notes),
    )
    worst_spread = 0.0
    for row_index in range(len(first.rows)):
        cells = []
        for col_index in range(len(first.headers)):
            values = [fig.rows[row_index][col_index] for fig in figures]
            if all(isinstance(v, (int, float)) and not isinstance(v, bool)
                   for v in values):
                finite = [v for v in values if not math.isnan(v)]
                if not finite:
                    cells.append(float("nan"))
                    continue
                mean = sum(finite) / len(finite)
                cells.append(mean)
                worst_spread = max(worst_spread, max(finite) - min(finite))
            else:
                if any(v != values[0] for v in values):
                    raise ValueError(
                        f"non-numeric cell differs across seeds: {values}"
                    )
                cells.append(values[0])
        merged.rows.append(tuple(cells))
    merged.notes.append(
        f"seeds {list(seeds)}; worst per-cell spread {worst_spread:.4f}"
    )
    return merged
