"""Batched sweep backend: one decode/precompute/training pass per trace.

A Figure 14 sweep runs the *same* kernel trace through ~11 policy x
cluster-count grid points.  The per-job event path repeats the
configuration-independent work -- trace generation, dependence/port
precompute, criticality-predictor training -- once per grid point.  This
module wires :func:`repro.core.batched.simulate_batched` (the
structure-of-arrays fast engine) into the job layer so that work happens
once per trace:

* :func:`fast_policy` lowers a :class:`~repro.specs.PolicySpec` to the
  flags the inlined engine branches on, or ``None`` when the stack is
  outside the fast path (readiness steering, token predictors,
  parameterized schedulers);
* :func:`execute_batched_job` runs one ``sim="batched"`` job -- the
  entry point :func:`repro.experiments.parallel.execute_job` dispatches
  to, so retries, chaos injection, serial/parallel execution and the
  run cache all compose unchanged;
* :func:`run_batched_group` executes a same-trace group of jobs sharing
  one :class:`~repro.core.batched.TracePrecompute`, one canonical
  predictor-training pass and one frozen-priority table cache (the
  :meth:`Workbench.prefetch <repro.experiments.harness.Workbench
  .prefetch>` fast path).

Methodology: ``warm=True`` batched runs measure with predictors
**frozen** after a single canonical training pass (the monolithic
machine under the ``l`` stack -- the same run every figure normalizes
against).  The trained state is therefore a function of
``(kernel, instructions, seed, loc_mode)`` only, which is what makes a
grid point's result independent of how a sweep is grouped or ordered:
running a job alone, in any batch, or in any permutation yields
bit-identical results and identical cache keys.  This deliberately
differs from the event backend's per-entry warm-up (each grid point
trains on its own machine/policy); the shift moves warm-run cycle
counts by well under 0.1% and is salted into the cache by the
``sim="batched"`` key field plus the ``CACHE_SCHEMA_VERSION`` bump that
landed with this backend.  ``warm=False`` runs train live from cold and
are bit-identical to the event backend's cold runs.

The engine itself is bit-identical to the event backend under *matched*
predictor state -- enforced per grid point by ``tests/test_differential
.py`` -- so the only observable difference is the warm-up methodology
above.
"""

from __future__ import annotations

import gc
import os
from contextlib import nullcontext
from typing import TYPE_CHECKING, Iterable, Sequence

from repro.core.batched import (
    ArrayPredictorState,
    BatchedPolicy,
    TracePrecompute,
    simulate_batched,
)
from repro.core.config import monolithic_machine
from repro.core.results import SimulationResult
from repro.experiments.parallel import (
    _MAX_CPI_GUARD,
    PreparedWorkload,
    RunJob,
    prepare_workload,
)
from repro.specs.policy import PolicySpec, policy_label, resolve_policy

if TYPE_CHECKING:  # pragma: no cover - avoid an import cycle at runtime
    from repro.telemetry.tracing import Tracer

__all__ = [
    "batch_key",
    "execute_batched_job",
    "fast_policy",
    "plan_groups",
    "run_batched_group",
    "supports_job",
    "warm_suite",
]

# Component kinds the inlined engine implements.  Anything else (readiness
# steering, token predictors, out-of-tree registrations) falls back to the
# event backend -- fast_policy returns None, the harness never promotes.
_FAST_STEERING = frozenset(("dependence", "criticality"))
_FAST_SCHEDULERS = frozenset(("oldest", "critical", "loc"))

# The canonical warm-up stack: the monolithic baseline under "l", i.e.
# exactly the run every figure normalizes against.  Training here makes
# the warmed predictor state a pure function of the trace + seed.
_WARM_POLICY = BatchedPolicy(
    steering_kind="criticality",
    preference="loc",
    scheduler="loc",
    needs_predictors=True,
)

_MISS = object()
_fast_cache: dict = {}


def fast_policy(policy: "str | PolicySpec") -> BatchedPolicy | None:
    """Lower ``policy`` to the batched engine's flags, or ``None``.

    ``None`` means the stack is outside the fast path and must run on the
    event backend.  The result is memoized per policy object (preset
    names and frozen ``PolicySpec``\\ s are both hashable).
    """
    try:
        cached = _fast_cache.get(policy, _MISS)
    except TypeError:  # unhashable spelling (a raw dict): no memo
        return _lower(policy)
    if cached is not _MISS:
        return cached
    lowered = _lower(policy)
    _fast_cache[policy] = lowered
    return lowered


def _lower(policy: "str | PolicySpec") -> BatchedPolicy | None:
    spec = resolve_policy(policy)
    scheduler = spec.scheduler
    if scheduler.kind not in _FAST_SCHEDULERS or dict(scheduler.params):
        return None
    predictor = spec.predictor
    chunk_size = 2048
    if predictor is not None:
        if predictor.kind != "chunked":
            return None
        chunk_size = dict(predictor.params)["chunk_size"]
    elif scheduler.kind != "oldest":
        # critical/loc scheduling reads predictor state; without a suite
        # the engine's columns would silently stay at their defaults.
        return None
    steering = spec.steering
    if steering.kind not in _FAST_STEERING:
        return None
    if steering.kind == "dependence":
        return BatchedPolicy(
            steering_kind="dependence",
            scheduler=scheduler.kind,
            needs_predictors=predictor is not None,
            chunk_size=chunk_size,
        )
    if predictor is None:
        return None  # criticality steering is meaningless untrained
    params = dict(steering.params)
    return BatchedPolicy(
        steering_kind="criticality",
        preference=params["preference"],
        stall_over_steer=params["stall_over_steer"],
        stall_loc_threshold=params["stall_loc_threshold"],
        proactive=params["proactive"],
        keep_min_loc=params["keep_min_loc"],
        keep_fraction=params["keep_fraction"],
        scheduler=scheduler.kind,
        needs_predictors=True,
        chunk_size=chunk_size,
    )


def batchable_config(config) -> bool:
    """Whether the batched engine can run ``config``.

    Clusters with a zero-port pool need the dispatch-level capability
    redirect, which is only implemented in the event and reference
    backends.
    """
    return all(c.fp_ports > 0 and c.mem_ports > 0 for c in config.clusters)


def supports_job(job: RunJob) -> bool:
    """Whether ``job`` can run on the batched backend at all."""
    return (
        not job.metrics
        and batchable_config(job.config)
        and fast_policy(job.policy) is not None
    )


def batch_key(job: RunJob) -> tuple:
    """The trace identity: jobs sharing it can share one precompute pass."""
    return (job.kernel, job.instructions, job.seed, job.loc_mode)


def _max_cycles(pre: TracePrecompute) -> int:
    return _MAX_CPI_GUARD * pre.total + 10_000


def warm_suite(
    pre: TracePrecompute, loc_mode: str, seed: int
) -> ArrayPredictorState:
    """The canonical warmed predictor state for one trace.

    One live-training pass of the monolithic baseline under the ``l``
    stack; deterministic in ``(trace, loc_mode, seed)`` and shared by
    every ``warm=True`` grid point of a batch.
    """
    suite = ArrayPredictorState(pre, loc_mode, seed)
    simulate_batched(
        pre,
        monolithic_machine(),
        _WARM_POLICY,
        predictors=suite,
        live_training=True,
        max_cycles=_max_cycles(pre),
        materialize=False,
    )
    return suite


def execute_batched_job(
    job: RunJob,
    prepared: PreparedWorkload | None = None,
    tracer: "Tracer | None" = None,
    pre: TracePrecompute | None = None,
    suite: ArrayPredictorState | None = None,
    frozen_cache: dict | None = None,
) -> SimulationResult:
    """Run one ``sim="batched"`` job.

    ``pre``/``suite``/``frozen_cache`` let :func:`run_batched_group`
    amortize the trace precompute, the canonical warm-up and the
    frozen-priority tables across a group; results are bit-identical
    with or without them.  ``suite`` must be the canonical
    :func:`warm_suite` state for this trace and ``frozen_cache`` must
    not be shared across different suites (the engine documents the
    contract on :func:`~repro.core.batched.simulate_batched`).

    Raises :class:`ValueError` for jobs the backend cannot run
    (``metrics=True``, or a policy outside the fast path).
    """
    pol = fast_policy(job.policy)
    if pol is None:
        raise ValueError(
            f"policy {policy_label(job.policy)!r} is outside the batched "
            "fast path; run it with sim='event' (or let the workbench "
            "choose -- it only promotes supported stacks)"
        )
    if job.metrics:
        raise ValueError(
            "the batched backend does not attach telemetry; run metrics "
            "jobs with sim='event'"
        )

    def span(name: str, **meta):
        if tracer is None:
            return nullcontext()
        return tracer.span(
            name, kernel=job.kernel, policy=policy_label(job.policy), **meta
        )

    if pre is None:
        if prepared is None:
            with span("trace-prep"):
                prepared = prepare_workload(job.kernel, job.instructions, job.seed)
        with span("trace-precompute"):
            pre = TracePrecompute.from_prepared(prepared)
    max_cycles = _max_cycles(pre)
    if not pol.needs_predictors:
        with span("measure", sim="batched"):
            return simulate_batched(
                pre,
                job.config,
                pol,
                collect_ilp=job.collect_ilp,
                max_cycles=max_cycles,
            )
    if not job.warm:
        # Cold run: live training from scratch, exactly the event
        # backend's warm=False semantics (bit-identical).
        fresh = ArrayPredictorState(pre, job.loc_mode, job.seed)
        with span("measure", sim="batched"):
            return simulate_batched(
                pre,
                job.config,
                pol,
                predictors=fresh,
                live_training=True,
                collect_ilp=job.collect_ilp,
                max_cycles=max_cycles,
            )
    if suite is None:
        with span("warmup", sim="batched"):
            suite = warm_suite(pre, job.loc_mode, job.seed)
    with span("measure", sim="batched"):
        return simulate_batched(
            pre,
            job.config,
            pol,
            predictors=suite,
            live_training=False,
            collect_ilp=job.collect_ilp,
            max_cycles=max_cycles,
            frozen_cache=frozen_cache,
        )


def run_batched_group(
    jobs: Sequence[RunJob],
    prepared: PreparedWorkload | None = None,
    tracer: "Tracer | None" = None,
) -> list[SimulationResult]:
    """Execute a same-trace group of batched jobs in one pass.

    All jobs must share :func:`batch_key`.  The trace is prepared and
    precomputed once, the canonical warm-up runs once (lazily, on the
    first ``warm=True`` predictor-consuming job), and frozen-priority
    tables are shared through one ``frozen_cache``.  The allocator's
    cyclic GC is paused for the duration (the engine allocates no
    cycles; scanning its flat columns is pure overhead).

    Returns results in job order, each bit-identical to what
    :func:`execute_batched_job` produces for the job alone.
    """
    jobs = list(jobs)
    if not jobs:
        return []
    keys = {batch_key(job) for job in jobs}
    if len(keys) != 1:
        raise ValueError(f"group spans multiple traces: {sorted(keys)}")
    first = jobs[0]
    if prepared is None:
        if tracer is not None:
            with tracer.span("trace-prep", kernel=first.kernel):
                prepared = prepare_workload(
                    first.kernel, first.instructions, first.seed
                )
        else:
            prepared = prepare_workload(first.kernel, first.instructions, first.seed)
    pre = TracePrecompute.from_prepared(prepared)
    suite: ArrayPredictorState | None = None
    frozen_cache: dict = {}
    results: list[SimulationResult] = []
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        for job in jobs:
            pol = fast_policy(job.policy)
            shared = pol is not None and pol.needs_predictors and job.warm
            if shared and suite is None:
                suite = warm_suite(pre, first.loc_mode, first.seed)
            results.append(
                execute_batched_job(
                    job,
                    prepared,
                    tracer=tracer,
                    pre=pre,
                    suite=suite if shared else None,
                    frozen_cache=frozen_cache if shared else None,
                )
            )
    finally:
        if was_enabled:
            gc.enable()
    return results


def group_worker(jobs: Sequence[RunJob]) -> list[SimulationResult]:
    """Pool-worker entry point for one group (picklable, no tracer)."""
    return run_batched_group(jobs)


def plan_groups(
    jobs: Iterable[RunJob], min_size: int = 2
) -> tuple[list[list[RunJob]], list[RunJob]]:
    """Partition ``jobs`` into same-trace batched groups and leftovers.

    A job joins a group when it is marked ``sim="batched"`` and the
    backend supports it; groups smaller than ``min_size`` fall back to
    the per-job path (no shared work to amortize).  Within a group, jobs
    keep their given order; leftovers keep their relative order too.
    """
    buckets: dict[tuple, list[RunJob]] = {}
    rest: list[RunJob] = []
    for job in jobs:
        if job.sim == "batched" and supports_job(job):
            buckets.setdefault(batch_key(job), []).append(job)
        else:
            rest.append(job)
    groups: list[list[RunJob]] = []
    for bucket in buckets.values():
        if len(bucket) >= min_size:
            groups.append(bucket)
        else:
            rest.extend(bucket)
    return groups, rest


def grouping_blocked() -> str | None:
    """Why grouped prefetch must be bypassed right now, or ``None``.

    Fault injection targets individual job attempts, so grouped
    execution would tunnel under the chaos harness; the per-job path
    keeps every attempt observable.
    """
    from repro.experiments import parallel

    if parallel._chaos_hook is not None:
        return "in-process chaos hook installed"
    if os.environ.get("REPRO_CHAOS"):
        return "REPRO_CHAOS active"
    return None
