"""Run an arbitrary :class:`~repro.specs.ExperimentSpec` end-to-end.

This is what the CLI's ``--spec path.json`` executes: the spec's jobs
are prefetched through the workbench (parallel workers + persistent
cache), then either

* the spec links itself to a reproduced figure (``figure`` field): the
  runner first verifies the spec's job set matches the figure's plan --
  so a stale or edited spec cannot silently masquerade as the figure --
  and then renders the figure's own table, byte-identical to running the
  figure by name; or
* the spec is a free-form sweep: a generic table with one row per run
  (benchmark x machine x policy) reporting cycles, CPI and IPC, plus a
  normalized-CPI column per benchmark when the sweep includes the
  monolithic machine.
"""

from __future__ import annotations

from repro.experiments.figure import FigureData
from repro.experiments.harness import Workbench
from repro.specs import ExperimentSpec, SpecError, policy_label

__all__ = ["run_spec"]


def _figure_runner(name: str):
    from repro.experiments import EXPERIMENTS

    runner = EXPERIMENTS.get(name)
    if runner is None:
        raise SpecError(
            f"spec links to unknown figure {name!r}; known: "
            f"{', '.join(EXPERIMENTS)}"
        )
    return runner


def _verify_figure_jobs(spec: ExperimentSpec, bench: Workbench) -> None:
    from repro.experiments import PLANS

    plan = PLANS.get(spec.figure)
    if plan is None:
        return
    planned = set(plan(bench))
    declared = set(spec.jobs(bench))
    if planned != declared:
        missing = len(planned - declared)
        extra = len(declared - planned)
        raise SpecError(
            f"spec {spec.name!r} claims figure {spec.figure!r} but its job "
            f"set differs from the figure's plan ({missing} missing, "
            f"{extra} extra); drop the 'figure' field to run it as a "
            "free-form sweep"
        )


def run_spec(bench: Workbench, spec: ExperimentSpec) -> FigureData:
    """Execute ``spec`` on ``bench`` and return its figure table."""
    if spec.figure is not None:
        _verify_figure_jobs(spec, bench)
        return _figure_runner(spec.figure)(bench)

    jobs = spec.jobs(bench)
    bench.prefetch(jobs)
    figure = FigureData(
        figure_id=spec.name,
        title=spec.description or f"Custom sweep {spec.name!r}",
        headers=["benchmark", "machine", "policy", "cycles", "cpi", "ipc"],
    )
    for job in jobs:
        result = bench.result_for(job)
        if result is None:
            # prefetch materialized exactly these jobs, so this cannot
            # happen short of a workbench bug; fail loudly over mislabeling.
            raise RuntimeError(f"prefetched job has no result: {job}")
        figure.add_row(
            job.kernel,
            job.config.name,
            policy_label(job.policy),
            result.cycles,
            result.cpi,
            result.ipc,
        )
    return figure
