"""Run an arbitrary :class:`~repro.specs.ExperimentSpec` end-to-end.

This is what the CLI's ``--spec path.json`` executes: the spec's jobs
are prefetched through the workbench (parallel workers + persistent
cache + the fault-tolerant executor), then either

* the spec links itself to a reproduced figure (``figure`` field): the
  runner first verifies the spec's job set matches the figure's plan --
  so a stale or edited spec cannot silently masquerade as the figure --
  and then renders the figure's own table, byte-identical to running the
  figure by name; or
* the spec is a free-form sweep: a generic table with one row per run
  (benchmark x machine x policy) reporting cycles, CPI and IPC.  Runs
  that failed past their retry budget render as explicit ``FAILED(...)``
  / ``TIMEOUT`` cells instead of killing the sweep.

Checkpoint/resume: pass a :class:`~repro.experiments.manifest.
SweepManifest` (the CLI opens one per spec, keyed by
:func:`~repro.specs.spec_hash`, whenever the persistent cache is on) and
every settled job is recorded and atomically persisted as it completes.
A sweep killed mid-flight -- ``KeyboardInterrupt`` included -- therefore
resumes re-executing only its unfinished jobs: finished results return
from the run cache, and the manifest supplies the "resumed N" note.
"""

from __future__ import annotations

from repro.experiments.cache import job_key
from repro.experiments.figure import FigureData, annotate_failures
from repro.experiments.harness import Workbench
from repro.experiments.manifest import SweepManifest
from repro.experiments.outcomes import JobOutcome
from repro.specs import ExperimentSpec, SpecError, policy_label

__all__ = ["run_spec"]


def _figure_runner(name: str):
    from repro.experiments import EXPERIMENTS

    runner = EXPERIMENTS.get(name)
    if runner is None:
        raise SpecError(
            f"spec links to unknown figure {name!r}; known: "
            f"{', '.join(EXPERIMENTS)}"
        )
    return runner


def _verify_figure_jobs(spec: ExperimentSpec, bench: Workbench) -> None:
    from repro.experiments import PLANS

    plan = PLANS.get(spec.figure)
    if plan is None:
        return
    planned = set(plan(bench))
    declared = set(spec.jobs(bench))
    if planned != declared:
        missing = len(planned - declared)
        extra = len(declared - planned)
        raise SpecError(
            f"spec {spec.name!r} claims figure {spec.figure!r} but its job "
            f"set differs from the figure's plan ({missing} missing, "
            f"{extra} extra); drop the 'figure' field to run it as a "
            "free-form sweep"
        )


def _prefetch_checkpointed(
    bench: Workbench, jobs: list, manifest: SweepManifest | None
) -> None:
    """Prefetch ``jobs``, journaling each settled outcome to ``manifest``.

    The manifest is saved after every settled job (atomic tmp+rename, a
    few hundred bytes per entry -- noise next to a simulation) and force-
    saved on the way out of *any* exit path, so an interrupt cannot lose
    the record of what already finished.
    """
    if manifest is None:
        bench.prefetch(jobs)
        return

    def record(outcome: JobOutcome) -> None:
        manifest.record(job_key(outcome.job), outcome)
        manifest.save()

    try:
        bench.prefetch(jobs, on_outcome=record)
    finally:
        manifest.save(force=True)


def run_spec(
    bench: Workbench,
    spec: ExperimentSpec,
    manifest: SweepManifest | None = None,
) -> FigureData:
    """Execute ``spec`` on ``bench`` and return its figure table."""
    saved_execution = bench.execution
    saved_executor = bench.executor
    bench.execution = spec.execution_policy(saved_execution)
    spec_executor = (spec.execution or {}).get("executor")
    if spec_executor is not None:
        bench.executor = spec_executor
    try:
        return _run_spec(bench, spec, manifest)
    finally:
        # The workbench is shared across a CLI invocation's tasks; one
        # spec's execution overrides must not leak into the next.
        bench.execution = saved_execution
        bench.executor = saved_executor


def _run_spec(
    bench: Workbench,
    spec: ExperimentSpec,
    manifest: SweepManifest | None,
) -> FigureData:
    jobs = spec.jobs(bench)
    if spec.figure is not None:
        _verify_figure_jobs(spec, bench)
        _prefetch_checkpointed(bench, jobs, manifest)
        figure = _figure_runner(spec.figure)(bench)
    else:
        _prefetch_checkpointed(bench, jobs, manifest)
        figure = FigureData(
            figure_id=spec.name,
            title=spec.description or f"Custom sweep {spec.name!r}",
            headers=["benchmark", "machine", "policy", "cycles", "cpi", "ipc"],
        )
        failed: list[JobOutcome] = []
        for job in jobs:
            result = bench.result_for(job)
            if result is not None:
                figure.add_row(
                    job.kernel,
                    job.config.name,
                    policy_label(job.policy),
                    result.cycles,
                    result.cpi,
                    result.ipc,
                )
                continue
            outcome = bench.failure_for(job)
            if outcome is None:
                # prefetch settles exactly these jobs, so this cannot
                # happen short of a workbench bug; fail loudly over
                # mislabeling.
                raise RuntimeError(f"prefetched job has no outcome: {job}")
            failed.append(outcome)
            label = outcome.failure.label()
            figure.add_row(
                job.kernel,
                job.config.name,
                policy_label(job.policy),
                label,
                label,
                label,
            )
        annotate_failures(figure, failed)
    if manifest is not None:
        resumed = manifest.resumed & {job_key(job) for job in jobs}
        if resumed:
            figure.notes.append(
                f"resumed: {len(resumed)} of {len(jobs)} job(s) already "
                "completed by an earlier run (results from the run cache)"
            )
    return figure
