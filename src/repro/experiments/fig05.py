"""Figure 5: critical-path breakdown under focused steering and scheduling.

For the monolithic and 2-/4-/8-cluster machines, every cycle of runtime is
attributed to one critical-path category; stacks are normalized to the
monolithic machine's CPI, so the total column reproduces Figure 4's bars
while the segments show *where* the extra cycles went (forwarding delay and
contention grow with cluster count).
"""

from __future__ import annotations

from repro.analysis.breakdown import FIGURE5_SEGMENTS, cpi_breakdown
from repro.core.config import monolithic_machine
from repro.experiments.figure import FigureData, annotate_failures
from repro.experiments.harness import Workbench
from repro.specs import ExperimentSpec, MachineSpec, SweepSpec

# Registry name: the key this figure goes by in EXPERIMENTS / PLANS
# and on the CLI.
NAME = "figure5"

__all__ = ["NAME", "plan_figure5", "run_figure5", "spec_figure5"]

CONFIG_LABELS = (1, 2, 4, 8)


def spec_figure5(forwarding_latency: int = 2) -> ExperimentSpec:
    """Figure 5's sweep as a declarative spec."""
    return ExperimentSpec(
        name=NAME,
        figure=NAME,
        description="Critical-path breakdown under focused steering",
        sweeps=(
            SweepSpec(
                machines=tuple(
                    MachineSpec(1)
                    if label == 1
                    else MachineSpec(label, forwarding_latency=forwarding_latency)
                    for label in CONFIG_LABELS
                ),
                policies=("focused",),
            ),
        ),
    )


def plan_figure5(bench: Workbench, forwarding_latency: int = 2):
    """The runs Figure 5 needs, for parallel prefetch."""
    return spec_figure5(forwarding_latency).jobs(bench)


def run_figure5(bench: Workbench, forwarding_latency: int = 2) -> FigureData:
    """Reproduce Figure 5: one row per (benchmark, cluster count)."""
    bench.prefetch(plan_figure5(bench, forwarding_latency))
    figure = FigureData(
        figure_id="Figure 5",
        title="Critical path breakdown, focused steering (normalized CPI)",
        headers=["benchmark", "clusters", *FIGURE5_SEGMENTS, "total"],
        notes=[
            "segments sum to the run's CPI normalized to the monolithic "
            "machine; fwd_delay and contention are the clustering penalties",
            "'commit' cycles are folded into 'execute' as in the paper's "
            "seven-segment stacks",
        ],
    )
    averages = {
        label: [0.0] * (len(FIGURE5_SEGMENTS) + 1) for label in CONFIG_LABELS
    }
    ok_counts = {label: 0 for label in CONFIG_LABELS}
    failed = []
    width = len(FIGURE5_SEGMENTS) + 1
    for spec in bench.benchmarks:
        base_out = bench.outcome(spec, monolithic_machine(), "focused")
        if not base_out.ok:
            # The monolithic run is both the label-1 stack and the
            # normalization base, so the whole benchmark fails.
            failed.append(base_out)
            cell = base_out.failure.label()
            for label in CONFIG_LABELS:
                figure.add_row(spec.name, label, *([cell] * width))
            continue
        base_cpi = base_out.result.cpi
        for label in CONFIG_LABELS:
            config = (
                monolithic_machine()
                if label == 1
                else bench.clustered(label, forwarding_latency)
            )
            out = bench.outcome(spec, config, "focused")
            if not out.ok:
                failed.append(out)
                figure.add_row(
                    spec.name, label, *([out.failure.label()] * width)
                )
                continue
            segments = cpi_breakdown(out.result).normalized(base_cpi)
            values = [segments[name] for name in FIGURE5_SEGMENTS]
            total = sum(values)
            figure.add_row(spec.name, label, *values, total)
            for i, value in enumerate([*values, total]):
                averages[label][i] += value
            ok_counts[label] += 1
    for label in CONFIG_LABELS:
        n = ok_counts[label]
        figure.add_row(
            "AVE",
            label,
            *[v / n if n else float("nan") for v in averages[label]],
        )
    annotate_failures(figure, failed)
    return figure
