"""Sweep manifests: durable per-job outcome records for checkpoint/resume.

A :class:`SweepManifest` is a small JSON file keyed by the sweep's
:func:`~repro.specs.spec_hash` that records, for every job the sweep
enumerates, its last known :class:`~repro.experiments.outcomes.JobOutcome`
(status, failure kind, attempts, elapsed).  The spec runner updates it as
each job settles and saves atomically, so

* an interrupted ``repro --spec`` rerun knows exactly which jobs already
  finished (their results come back from the persistent
  :class:`~repro.experiments.cache.RunCache`; the manifest supplies the
  accounting and the "resumed N of M" status line);
* jobs that *failed* last time are visible -- and re-attempted -- on the
  next run instead of silently vanishing from the table;
* a post-mortem can read what happened per job without replaying logs.

Manifests are advisory: losing one (or the ``--no-resume`` flag) merely
forfeits the accounting -- correctness always rests on the
content-addressed cache and the deterministic executor.  A corrupt
manifest is quarantined to ``*.corrupt`` and treated as absent, mirroring
the run cache's self-healing.
"""

from __future__ import annotations

import json
import os
import pathlib
import threading
import warnings
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.outcomes import JobOutcome

__all__ = ["MANIFEST_SCHEMA", "SweepManifest", "default_manifest_dir"]

MANIFEST_SCHEMA = "repro.sweep_manifest/1"


def default_manifest_dir(cache_root: pathlib.Path) -> pathlib.Path:
    """Where sweep manifests live relative to the run cache."""
    return cache_root / "manifests"


class SweepManifest:
    """Per-job outcome journal for one sweep, keyed by its spec hash."""

    def __init__(self, path: pathlib.Path, spec_hash: str, name: str = ""):
        self.path = pathlib.Path(path)
        self.spec_hash = spec_hash
        self.name = name
        self.entries: dict[str, dict[str, Any]] = {}
        # Jobs recorded "ok" by a *previous* invocation: the resume set.
        self.resumed: frozenset[str] = frozenset()
        self._dirty = False
        # record()/save() may be driven from multiple threads of one
        # process (the job service journals from executor callback
        # threads); the lock makes record-then-save atomic per caller and
        # the thread-tagged temp name below keeps concurrent saves from
        # clobbering each other's temp file mid-rename.
        self._lock = threading.RLock()

    # ------------------------------------------------------------------
    @classmethod
    def open(
        cls, directory: pathlib.Path | str, spec_hash: str, name: str = ""
    ) -> "SweepManifest":
        """Load the manifest for ``spec_hash`` (fresh if absent/corrupt)."""
        directory = pathlib.Path(directory)
        manifest = cls(directory / f"{spec_hash}.json", spec_hash, name)
        manifest._load()
        return manifest

    def _load(self) -> None:
        try:
            data = json.loads(self.path.read_text())
            if data.get("schema") != MANIFEST_SCHEMA:
                raise ValueError(f"unknown manifest schema {data.get('schema')!r}")
            if data.get("spec_hash") != self.spec_hash:
                raise ValueError("manifest spec_hash mismatch")
            entries = data.get("jobs", {})
            if not isinstance(entries, dict):
                raise ValueError("manifest jobs must be an object")
        except FileNotFoundError:
            return
        except (OSError, ValueError, TypeError) as exc:
            quarantine = self.path.with_name(self.path.name + ".corrupt")
            try:
                os.replace(self.path, quarantine)
            except OSError:  # pragma: no cover - raced or unwritable dir
                pass
            warnings.warn(
                f"quarantined corrupt sweep manifest {quarantine} "
                f"({type(exc).__name__}: {exc}); starting the sweep record "
                "afresh (results still resume from the run cache)",
                RuntimeWarning,
                stacklevel=3,
            )
            return
        self.entries = {str(k): dict(v) for k, v in entries.items()}
        self.resumed = frozenset(
            key for key, entry in self.entries.items() if entry.get("status") == "ok"
        )

    # ------------------------------------------------------------------
    def record(self, key: str, outcome: "JobOutcome") -> None:
        """Absorb one settled job outcome (call :meth:`save` to persist)."""
        entry: dict[str, Any] = {
            "status": "ok" if outcome.ok else "failed",
            "kernel": outcome.job.kernel,
            "config": outcome.job.config.name,
            "attempts": outcome.attempts,
            "elapsed": round(outcome.elapsed, 6),
        }
        if outcome.failure is not None:
            entry["failure"] = outcome.failure.to_dict()
        with self._lock:
            self.entries[key] = entry
            self._dirty = True

    def completed(self) -> int:
        return sum(1 for e in self.entries.values() if e.get("status") == "ok")

    def failed(self) -> int:
        return sum(1 for e in self.entries.values() if e.get("status") == "failed")

    def summary(self) -> dict[str, int]:
        return {
            "jobs": len(self.entries),
            "completed": self.completed(),
            "failed": self.failed(),
            "resumed": len(self.resumed),
        }

    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        return {
            "schema": MANIFEST_SCHEMA,
            "spec_hash": self.spec_hash,
            "name": self.name,
            "jobs": self.entries,
        }

    def save(self, force: bool = False) -> None:
        """Atomically persist (tmp + rename); no-op when nothing changed.

        Safe against concurrent savers in the same process (the lock
        serializes them) *and* across processes (the temp name is tagged
        with pid and thread id, so two writers can never truncate each
        other's in-progress file; last rename wins, and every rename
        publishes a complete, parseable document).
        """
        with self._lock:
            if not (self._dirty or force):
                return
            self.path.parent.mkdir(parents=True, exist_ok=True)
            tmp = self.path.with_name(
                self.path.name
                + f".tmp-{os.getpid()}-{threading.get_ident()}"
            )
            try:
                tmp.write_text(json.dumps(self.to_dict(), indent=1, sort_keys=True))
                os.replace(tmp, self.path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except FileNotFoundError:
                    pass
                raise
            self._dirty = False
