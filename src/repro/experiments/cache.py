"""Persistent, content-addressed cache of simulation results.

Every simulation is fully determined by its :class:`~repro.experiments.
parallel.RunJob` -- kernel name, instruction count, workload seed, LoC
predictor mode, machine configuration, policy, ILP collection and the
warm-up flag.  The cache keys on a SHA-256 hash of the canonical JSON of
all of those fields plus :data:`CACHE_SCHEMA_VERSION`, a salt bumped
whenever a code change legitimately alters simulation output (simulator
timing, policy behaviour, trace generation, or the serialization schema).
Stale entries from older salts are simply never looked up again.

Entries are gzipped JSON files (one per run) under ``~/.cache/repro`` by
default, overridable with ``--cache-dir`` / ``REPRO_CACHE_DIR`` /
``XDG_CACHE_HOME``.  The cache is crash-safe and self-healing:

* writes go through a pid-tagged temp file and ``os.replace``, so a
  worker killed mid-store can never leave a truncated entry under a
  real key, and concurrent invocations can share a directory safely;
* a corrupt, truncated or schema-stale entry never propagates an
  exception out of :meth:`RunCache.load` -- it is **quarantined** to a
  ``*.corrupt`` sibling (with a single warning per cache instance), the
  lookup reports a miss, and the fresh recomputation overwrites it.

The cache counts its ``hits`` / ``misses`` / ``stores`` /
``quarantined`` so callers (the CLI prints them) can verify that a
warm-cache invocation re-executed zero simulations and spot cache decay.
"""

from __future__ import annotations

import gzip
import hashlib
import json
import os
import pathlib
import time
import warnings
from typing import TYPE_CHECKING

from repro.core.results import SimulationResult
from repro.core.serialize import config_to_dict, result_from_dict, result_to_dict
from repro.specs.policy import policy_label, resolve_policy

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (harness -> parallel)
    from repro.experiments.parallel import RunJob

# Bump whenever simulation output legitimately changes (timing model,
# policies, trace generation, serialization schema): old entries must not
# satisfy new lookups.
# 2: RunJob grew the ``sim`` field (event vs reference timing loop).
# (RunJob later grew ``metrics``; it enters the key payload only when
# True, so every pre-existing hash -- and entry -- stayed valid and the
# version did not need to move.)
# 3: the ``policy`` key payload changed from a bare preset name to the
#    policy's canonical spec payload (repro.specs) so presets and novel
#    PolicySpec compositions share one hash domain.  Migration: none
#    needed -- v2 entries are simply never looked up again; delete the
#    cache directory to reclaim the space, or re-run to repopulate.
# 4: the batched sweep backend landed and the workbench now promotes
#    eligible jobs to ``sim="batched"``, whose warm-up methodology (one
#    canonical training pass per trace; measured runs use the frozen
#    suite) legitimately shifts warm-run timings by <0.1% vs the event
#    backend's per-entry warm-up.  The ``sim`` field already keys the
#    hash, but the version moves anyway so the *figure-level* outputs
#    (goldens regenerated with this bump) and the cache retire together.
CACHE_SCHEMA_VERSION = 4


def default_cache_dir() -> pathlib.Path:
    """``$REPRO_CACHE_DIR``, else ``$XDG_CACHE_HOME/repro``, else ``~/.cache/repro``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return pathlib.Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = pathlib.Path(xdg) if xdg else pathlib.Path.home() / ".cache"
    return base / "repro"


def job_key(job: RunJob) -> str:
    """Stable content hash of everything that determines a run's output.

    The policy enters the payload as its canonical spec payload
    (:meth:`repro.specs.PolicySpec.canonical_payload`), never as a name:
    a preset name, its expanded :class:`~repro.specs.PolicySpec`, and any
    dict spelling of the same stack all hash to one key.
    """
    payload = {
        "version": CACHE_SCHEMA_VERSION,
        "kernel": job.kernel,
        "instructions": job.instructions,
        "seed": job.seed,
        "loc_mode": job.loc_mode,
        "config": config_to_dict(job.config),
        "policy": resolve_policy(job.policy).canonical_payload(),
        "collect_ilp": job.collect_ilp,
        "warm": job.warm,
        "sim": job.sim,
    }
    if job.metrics:
        # Only when True: a telemetry-off job must hash exactly as it did
        # before the field existed, so old cache entries keep satisfying
        # new lookups.  A metrics run caches separately because its stored
        # artifact carries the telemetry payload.
        payload["metrics"] = True
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class RunCache:
    """On-disk store of :class:`SimulationResult`\\ s, keyed by :func:`job_key`.

    An optional :class:`~repro.telemetry.tracing.Tracer` times every load
    and store as ``cache.load`` / ``cache.store`` spans (loads are tagged
    with whether they hit).
    """

    def __init__(self, root: pathlib.Path | str | None = None, tracer=None):
        self.root = pathlib.Path(root) if root is not None else default_cache_dir()
        self.tracer = tracer
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.quarantined = 0
        self._warned_corrupt = False

    def path_for(self, key: str) -> pathlib.Path:
        """Entry location (two-level fan-out keeps directories small)."""
        return self.root / key[:2] / f"{key}.json.gz"

    # ------------------------------------------------------------------
    def load(self, job: RunJob) -> SimulationResult | None:
        """Return the cached result for ``job``, or None (counting hit/miss)."""
        if self.tracer is None:
            return self._load(job)
        start = time.perf_counter()
        result = self._load(job)
        self.tracer.add(
            "cache.load",
            time.perf_counter() - start,
            kernel=job.kernel,
            hit=result is not None,
        )
        return result

    def _load(self, job: RunJob) -> SimulationResult | None:
        path = self.path_for(job_key(job))
        try:
            with gzip.open(path, "rt", encoding="utf-8") as handle:
                payload = json.load(handle)
            if payload.get("schema_version") != CACHE_SCHEMA_VERSION:
                # Stale schema under a current key should be impossible
                # (the version salts the key) -- treat a mismatch as
                # corruption rather than deserializing on hope.
                raise ValueError(
                    f"schema_version {payload.get('schema_version')!r} != "
                    f"{CACHE_SCHEMA_VERSION}"
                )
            result = result_from_dict(payload["result"])
        except FileNotFoundError:
            self.misses += 1
            return None
        except (OSError, ValueError, KeyError, EOFError, TypeError) as exc:
            # Corrupt, truncated or schema-stale entry: quarantine it so
            # the damage is inspectable, report a miss, and let the fresh
            # recomputation overwrite it.  Never propagate.
            self._quarantine(path, exc)
            self.misses += 1
            return None
        self.hits += 1
        return result

    def _quarantine(self, path: pathlib.Path, exc: BaseException) -> None:
        """Move a bad entry aside (best-effort) and warn once."""
        quarantine_path = path.with_name(path.name + ".corrupt")
        try:
            os.replace(path, quarantine_path)
        except OSError:  # pragma: no cover - raced or unwritable dir
            quarantine_path = path
        self.quarantined += 1
        if not self._warned_corrupt:
            self._warned_corrupt = True
            warnings.warn(
                f"quarantined corrupt cache entry {quarantine_path} "
                f"({type(exc).__name__}: {exc}); it will be recomputed "
                "(further quarantines in this run stay silent; see "
                "RunCache.stats()['quarantined'])",
                RuntimeWarning,
                stacklevel=4,
            )
        if self.tracer is not None:
            self.tracer.event("cache.quarantine", path=str(quarantine_path))

    def store(self, job: RunJob, result: SimulationResult) -> None:
        """Persist ``result`` atomically under ``job``'s key."""
        if self.tracer is not None:
            with self.tracer.span("cache.store", kernel=job.kernel):
                self._store(job, result)
        else:
            self._store(job, result)

    def _store(self, job: RunJob, result: SimulationResult) -> None:
        key = job_key(job)
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "schema_version": CACHE_SCHEMA_VERSION,
            "key": key,
            "job": {
                "kernel": job.kernel,
                "instructions": job.instructions,
                "seed": job.seed,
                "loc_mode": job.loc_mode,
                "policy": policy_label(job.policy),
                "policy_spec": resolve_policy(job.policy).canonical_payload(),
                "collect_ilp": job.collect_ilp,
                "warm": job.warm,
            },
            "result": result_to_dict(result),
        }
        # Pid-tagged sibling + atomic rename: a worker killed mid-write
        # leaves at worst an orphaned ``.tmp-<pid>`` file (cleaned up on
        # the next successful store of the same key by the same pid, and
        # skipped by lookups), never a truncated entry under a real key.
        tmp_name = str(path) + f".tmp-{os.getpid()}"
        try:
            with gzip.open(tmp_name, "wt", encoding="utf-8") as handle:
                json.dump(payload, handle, separators=(",", ":"))
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except FileNotFoundError:
                pass
            raise
        self.stores += 1

    # ------------------------------------------------------------------
    def contains(self, job: RunJob) -> bool:
        """Whether an entry exists on disk (does not count as a hit/miss)."""
        return self.path_for(job_key(job)).exists()

    def stats(self) -> dict[str, int]:
        """Counters snapshot, for CLI reporting and tests."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "quarantined": self.quarantined,
        }
