"""The :class:`Executor` protocol and the local process-pool backend.

Every way the repo runs a sweep -- ``Workbench.prefetch``, ``run_spec``,
the ``repro serve`` scheduler, the CLI -- funnels its pending
:class:`~repro.experiments.parallel.RunJob`\\ s through one seam::

    executor.execute(jobs, tracer=..., policy=..., on_outcome=...,
                     stats=..., should_stop=...) -> list[JobOutcome]

An executor settles every submitted job with exactly one typed
:class:`~repro.experiments.outcomes.JobOutcome` (result *or* failure,
never both), returned in submission order; ``on_outcome`` fires on the
**calling thread** as each job settles, which is what lets the workbench
flush results to the caches and the sweep manifest journal progress
without any locking of their own.  ``should_stop`` is polled at settle
boundaries and raises
:class:`~repro.experiments.outcomes.ExecutionInterrupted`; under
``policy.fail_fast`` the first final failure raises
:class:`~repro.experiments.outcomes.RunFailureError`.

Backends:

* :class:`LocalPoolExecutor` -- this module.  The historical execution
  engine, re-homed from :mod:`repro.experiments.parallel` unchanged:
  per-job futures on a :class:`~concurrent.futures.ProcessPoolExecutor`
  with retries, per-attempt wall-time budgets, pool respawn and serial
  degradation, plus the batched same-trace group fast path
  (:mod:`repro.experiments.batch`) that the workbench's prefetch used to
  drive itself.  Behavior- and bit-identical to the pre-protocol code.
* :class:`~repro.experiments.distributed.DistributedExecutor` -- a
  coordinator sharding jobs to ``repro worker`` processes over sockets
  or a spool directory (:mod:`repro.distwork`).

``make_executor`` is the one registry; spec files select a backend by
name through ``execution.executor`` and the CLI through ``--executor``.
"""

from __future__ import annotations

import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from typing import TYPE_CHECKING, Callable, Protocol, Sequence, runtime_checkable

from repro.experiments.outcomes import (
    ExecutionInterrupted,
    ExecutionPolicy,
    ExecutorUnavailable,
    JobOutcome,
    OutcomeStats,
    RunFailureError,
    classify_failure,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.results import SimulationResult
    from repro.experiments.parallel import RunJob
    from repro.telemetry.tracing import Tracer

__all__ = [
    "BreakerExecutor",
    "CircuitBreaker",
    "EXECUTOR_NAMES",
    "Executor",
    "LocalPoolExecutor",
    "executor_names",
    "make_executor",
]

# The registry of selectable backends.  "distributed" resolves lazily so
# importing the execution layer never drags the coordinator in.
EXECUTOR_NAMES = ("local", "distributed")


def executor_names() -> tuple[str, ...]:
    """The backend names ``make_executor`` / spec validation accept."""
    return EXECUTOR_NAMES


def make_executor(
    name: str,
    *,
    workers: int = 0,
    endpoint: str | None = None,
    batch_groups: bool = True,
) -> "Executor":
    """Build the named executor backend.

    ``workers`` feeds the local pool; ``endpoint`` (``host:port`` or a
    spool directory) is required by -- and only consumed by -- the
    distributed backend.
    """
    if name == "local":
        return LocalPoolExecutor(workers=workers, batch_groups=batch_groups)
    if name == "distributed":
        if not endpoint:
            raise ValueError(
                "the distributed executor needs a workers endpoint "
                "(host:port or a spool directory); pass --workers-endpoint "
                "on the CLI or endpoint= in code"
            )
        from repro.experiments.distributed import DistributedExecutor

        return DistributedExecutor(endpoint)
    raise ValueError(
        f"unknown executor {name!r}; want one of: {', '.join(EXECUTOR_NAMES)}"
    )


@runtime_checkable
class Executor(Protocol):
    """What a sweep execution backend must provide.

    The contract every caller (workbench prefetch, ``run_spec``, the
    service scheduler) relies on:

    * one :class:`JobOutcome` per submitted job, returned in submission
      order;
    * ``on_outcome`` is invoked on the calling thread, once per job, as
      the job settles (in settle order, which need not be submission
      order);
    * ``stats`` is mutated in place (``executed`` / ``retries`` /
      failure counters);
    * ``should_stop`` turning true raises :class:`ExecutionInterrupted`
      at the next settle boundary -- already-delivered outcomes stay
      delivered;
    * ``policy.fail_fast`` raises :class:`RunFailureError` on the first
      final failure.

    ``close()`` releases long-lived resources (sockets, spool state);
    the local backend holds none and treats it as a no-op.
    """

    name: str

    def execute(
        self,
        jobs: "Sequence[RunJob]",
        *,
        tracer: "Tracer | None" = None,
        policy: ExecutionPolicy | None = None,
        on_outcome: "Callable[[JobOutcome], None] | None" = None,
        stats: OutcomeStats | None = None,
        should_stop: "Callable[[], bool] | None" = None,
    ) -> list[JobOutcome]: ...

    def close(self) -> None: ...


class LocalPoolExecutor:
    """Process-pool execution with retries, timeouts and group batching.

    ``workers <= 1`` (or a single job) runs serially in-process; more
    workers fan per-job futures out over a
    :class:`~concurrent.futures.ProcessPoolExecutor` via the resilient
    scheduler (:class:`_PoolScheduler`).  With ``batch_groups`` (the
    workbench's prefetch mode), same-trace ``sim="batched"`` jobs first
    run as shared-precompute groups -- one trace decode, dependence pass
    and canonical predictor warm-up per kernel -- exactly as
    ``Workbench.prefetch`` did before the protocol existed; a group that
    fails for any reason falls back, whole, to the fault-tolerant
    per-job path.  Group execution steps aside under fault injection and
    per-job wall-time budgets, where per-job observability matters.
    """

    name = "local"

    def __init__(self, workers: int = 0, batch_groups: bool = True):
        self.workers = workers
        self.batch_groups = batch_groups

    def close(self) -> None:
        """No long-lived resources: pools live for one execute() call."""

    # ------------------------------------------------------------------
    def execute(
        self,
        jobs: "Sequence[RunJob]",
        *,
        tracer: "Tracer | None" = None,
        policy: ExecutionPolicy | None = None,
        on_outcome: "Callable[[JobOutcome], None] | None" = None,
        stats: OutcomeStats | None = None,
        should_stop: "Callable[[], bool] | None" = None,
    ) -> list[JobOutcome]:
        policy = policy if policy is not None else ExecutionPolicy()
        jobs = list(jobs)
        if not jobs:
            return []
        outcomes: list[JobOutcome | None] = [None] * len(jobs)
        remaining = list(enumerate(jobs))
        if self._grouping_eligible(jobs, policy):
            remaining = self._run_groups(
                remaining, tracer, outcomes, on_outcome, stats, should_stop
            )
        if remaining:
            settled = self._run_per_job(
                [job for _, job in remaining],
                tracer,
                policy,
                on_outcome,
                stats,
                should_stop,
            )
            for (index, _job), outcome in zip(remaining, settled):
                outcomes[index] = outcome
        assert all(outcome is not None for outcome in outcomes)
        return outcomes  # type: ignore[return-value]

    # -- batched same-trace groups --------------------------------------
    def _grouping_eligible(
        self, jobs: "list[RunJob]", policy: ExecutionPolicy
    ) -> bool:
        """Whether the shared-precompute group fast path may run.

        The gates mirror the workbench's historical prefetch: grouping is
        bypassed under fault injection (the chaos harness targets
        individual attempts) and under a per-job wall-time budget (a
        group cannot be recycled mid-flight).  Duplicate jobs also
        bypass it -- group bookkeeping maps settled jobs back to
        submission slots by job identity, which needs the slots to be
        unambiguous (the workbench dedupes before submitting, so its
        calls always group).
        """
        if not self.batch_groups:
            return False
        from repro.experiments.batch import grouping_blocked

        if grouping_blocked() is not None or policy.job_timeout is not None:
            return False
        return len(set(jobs)) == len(jobs)

    def _run_groups(
        self,
        indexed: "list[tuple[int, RunJob]]",
        tracer: "Tracer | None",
        outcomes: "list[JobOutcome | None]",
        on_outcome: "Callable[[JobOutcome], None] | None",
        stats: OutcomeStats | None,
        should_stop: "Callable[[], bool] | None",
    ) -> "list[tuple[int, RunJob]]":
        """Run plan-able groups; return the (index, job) pairs still owed.

        Grouped execution shares one trace decode, dependence precompute
        and canonical predictor warm-up per kernel while each job's
        *result* stays bit-identical to individual execution (the
        canonical warm-up makes grid points independent of grouping).
        Group members that execute count toward ``stats.executed`` just
        like per-job successes, so the executed counter never drifts
        below the workbench's ``simulations_run``.
        """
        from repro.experiments.batch import plan_groups, run_batched_group

        jobs = [job for _, job in indexed]
        index_of = {job: index for index, job in indexed}
        groups, rest = plan_groups(jobs)
        if not groups:
            return indexed
        fallback: "list[RunJob]" = []

        def settle_group(group, results) -> None:
            for job, result in zip(group, results):
                if stats is not None:
                    stats.executed += 1
                outcome = JobOutcome(job=job, result=result, attempts=1)
                outcomes[index_of[job]] = outcome
                if on_outcome is not None:
                    on_outcome(outcome)

        if self.workers > 1 and len(groups) > 1:
            fallback.extend(
                self._run_groups_pooled(groups, settle_group, tracer, should_stop)
            )
        else:
            for group in groups:
                if should_stop is not None and should_stop():
                    raise ExecutionInterrupted(
                        "execution stopped between batched groups"
                    )
                try:
                    if tracer is not None:
                        with tracer.span(
                            "batched-group",
                            kernel=group[0].kernel,
                            jobs=len(group),
                        ):
                            results = run_batched_group(group, tracer=tracer)
                    else:
                        results = run_batched_group(group)
                except Exception:
                    fallback.extend(group)
                else:
                    settle_group(group, results)
        return [(index_of[job], job) for job in rest + fallback]

    def _run_groups_pooled(
        self,
        groups,
        settle_group,
        tracer: "Tracer | None",
        should_stop: "Callable[[], bool] | None",
    ) -> "list[RunJob]":
        """Fan whole groups out over a process pool (one future each).

        Worker tracer spans are not collected here (unlike the per-job
        pool); the parent records one ``batched-group`` span per group.
        Any per-group failure -- including a broken pool -- returns the
        group's jobs for the resilient per-job path to retry.
        ``should_stop`` is polled while awaiting completions, so a
        graceful shutdown can interrupt a multi-group sweep instead of
        waiting for the whole pool to drain; already-settled groups stay
        settled.
        """
        from repro.experiments.batch import group_worker

        failed: "list[RunJob]" = []
        pool = ProcessPoolExecutor(max_workers=min(self.workers, len(groups)))
        try:
            futures = {pool.submit(group_worker, group): group for group in groups}
            outstanding = set(futures)
            poll = 0.25 if should_stop is not None else None
            while outstanding:
                if should_stop is not None and should_stop():
                    raise ExecutionInterrupted(
                        f"execution stopped with {len(outstanding)} "
                        "batched group(s) outstanding"
                    )
                done, outstanding = wait(
                    outstanding, timeout=poll, return_when=FIRST_COMPLETED
                )
                for future in done:
                    group = futures[future]
                    try:
                        if tracer is not None:
                            with tracer.span(
                                "batched-group",
                                kernel=group[0].kernel,
                                jobs=len(group),
                                pooled=True,
                            ):
                                results = future.result()
                        else:
                            results = future.result()
                    except Exception:
                        failed.extend(group)
                    else:
                        settle_group(group, results)
        except BaseException:
            pool.shutdown(wait=False, cancel_futures=True)
            raise
        else:
            pool.shutdown(wait=True)
        return failed

    # -- resilient per-job path -----------------------------------------
    def _run_per_job(
        self,
        jobs: "list[RunJob]",
        tracer: "Tracer | None",
        policy: ExecutionPolicy,
        on_outcome: "Callable[[JobOutcome], None] | None",
        stats: OutcomeStats | None,
        should_stop: "Callable[[], bool] | None",
    ) -> list[JobOutcome]:
        from repro.experiments.parallel import run_job_outcome

        if self.workers <= 1 or len(jobs) <= 1:
            outcomes: list[JobOutcome] = []
            for job in jobs:
                if should_stop is not None and should_stop():
                    raise ExecutionInterrupted(
                        f"execution stopped with {len(jobs) - len(outcomes)} "
                        "job(s) not yet run"
                    )
                outcome = run_job_outcome(
                    job, tracer=tracer, policy=policy, stats=stats
                )
                outcomes.append(outcome)
                if on_outcome is not None:
                    on_outcome(outcome)
                if not outcome.ok and policy.fail_fast:
                    assert outcome.failure is not None
                    raise RunFailureError(job, outcome.failure)
            return outcomes
        scheduler = _PoolScheduler(
            jobs,
            min(self.workers, len(jobs)),
            tracer,
            policy,
            on_outcome,
            stats,
            should_stop=should_stop,
        )
        return scheduler.run()


class CircuitBreaker:
    """Consecutive-failure circuit: ``closed`` -> ``open`` -> ``half_open``.

    The classic degradation state machine, kept deliberately tiny and
    executor-agnostic.  ``record_failure()`` counts *consecutive*
    qualifying failures; reaching ``threshold`` opens the circuit for
    ``cooldown`` seconds, during which :meth:`allow` refuses work.  After
    the cooldown one caller is let through as a half-open probe: its
    success closes the circuit, its failure re-opens it (and restarts
    the cooldown).  ``clock`` is injectable for deterministic tests.
    """

    def __init__(
        self,
        threshold: int = 3,
        cooldown: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        if threshold < 1:
            raise ValueError("threshold must be >= 1")
        if cooldown <= 0:
            raise ValueError("cooldown must be positive")
        self.threshold = threshold
        self.cooldown = cooldown
        self._clock = clock
        self.state = "closed"  # "closed" | "open" | "half_open"
        self.failures = 0  # consecutive
        self.opened_at: float | None = None
        self.opens_total = 0

    def allow(self) -> bool:
        """Whether a call may proceed (transitions open->half_open)."""
        if self.state == "closed":
            return True
        if self.state == "open":
            assert self.opened_at is not None
            if self._clock() - self.opened_at < self.cooldown:
                return False
            self.state = "half_open"
            return True
        # half_open: exactly one probe is in flight; hold everyone else
        # until it reports back.
        return False

    def record_success(self) -> str | None:
        """Note a successful call; returns ``"close"`` on reclosure."""
        reopened = self.state != "closed"
        self.state = "closed"
        self.failures = 0
        self.opened_at = None
        return "close" if reopened else None

    def record_failure(self) -> str | None:
        """Note a qualifying failure; returns ``"open"`` when it trips."""
        if self.state == "half_open":
            # The probe failed: straight back to open, fresh cooldown.
            self.state = "open"
            self.opened_at = self._clock()
            self.opens_total += 1
            return "open"
        self.failures += 1
        if self.state == "closed" and self.failures >= self.threshold:
            self.state = "open"
            self.opened_at = self._clock()
            self.opens_total += 1
            return "open"
        return None

    def retry_after(self) -> float:
        """Seconds until the next half-open probe would be allowed."""
        if self.state != "open" or self.opened_at is None:
            return 0.0
        return max(0.0, self.cooldown - (self._clock() - self.opened_at))

    def snapshot(self) -> dict:
        """State for readiness probes and the stats endpoint."""
        return {
            "state": self.state,
            "failures": self.failures,
            "threshold": self.threshold,
            "cooldown": self.cooldown,
            "opens_total": self.opens_total,
            "retry_after": round(self.retry_after(), 3),
        }


class BreakerExecutor:
    """Circuit-break a fragile backend, falling back or holding.

    Wraps a ``primary`` :class:`Executor` (in practice the distributed
    one -- its coordinator transport and remote workers are the only
    backend with a network failure mode).  Two failure classes feed the
    breaker:

    * **connect failures** -- ``primary.execute()`` raising
      :class:`~repro.experiments.outcomes.ExecutorUnavailable` /
      ``OSError`` / ``ConnectionError`` before settling anything;
    * **lost workers** -- settled outcomes whose final failure is
      ``WorkerLost`` (every lease attempt died), the distributed
      backend's way of saying "workers keep vanishing".

    Each tripping failure counts consecutively; a fully clean
    ``execute()`` resets the count.  While the circuit is open, calls go
    to ``fallback`` when one is configured (the service wires a
    :class:`LocalPoolExecutor`), otherwise they **queue and hold**:
    block -- polling ``should_stop`` so drains still interrupt -- until
    the cooldown elapses and the half-open probe may run.  Transitions
    emit ``service.breaker.open`` / ``half_open`` / ``close`` tracer
    events.

    A connect failure settles no jobs, so falling back re-submits the
    whole batch; ``WorkerLost`` outcomes were already delivered and only
    shape future calls (the resilient retry layers above own per-job
    recovery).
    """

    def __init__(
        self,
        primary: "Executor",
        fallback: "Executor | None" = None,
        breaker: CircuitBreaker | None = None,
        tracer: "Tracer | None" = None,
        hold_poll: float = 0.2,
    ):
        self.primary = primary
        self.fallback = fallback
        self.breaker = breaker if breaker is not None else CircuitBreaker()
        self.tracer = tracer
        self.hold_poll = hold_poll
        self.name = primary.name

    # ------------------------------------------------------------------
    def _transition(self, event: str | None) -> None:
        if event is not None and self.tracer is not None:
            self.tracer.event(f"service.breaker.{event}", backend=self.primary.name)

    def _note_half_open(self) -> None:
        if self.breaker.state == "half_open" and self.tracer is not None:
            self.tracer.event("service.breaker.half_open", backend=self.primary.name)

    def _hold(self, should_stop) -> None:
        """Queue-and-hold: wait out the cooldown (or the caller's stop)."""
        while not self.breaker.allow():
            if should_stop is not None and should_stop():
                raise ExecutionInterrupted(
                    "execution stopped while holding for an open circuit"
                )
            time.sleep(min(self.hold_poll, max(self.breaker.retry_after(), 0.01)))
        self._note_half_open()

    def execute(
        self,
        jobs: "Sequence[RunJob]",
        *,
        tracer: "Tracer | None" = None,
        policy: ExecutionPolicy | None = None,
        on_outcome: "Callable[[JobOutcome], None] | None" = None,
        stats: OutcomeStats | None = None,
        should_stop: "Callable[[], bool] | None" = None,
    ) -> list[JobOutcome]:
        jobs = list(jobs)
        if not jobs:
            return []
        allowed = self.breaker.allow()
        if allowed:
            self._note_half_open()
        else:
            if self.fallback is None:
                self._hold(should_stop)
            else:
                return self.fallback.execute(
                    jobs,
                    tracer=tracer,
                    policy=policy,
                    on_outcome=on_outcome,
                    stats=stats,
                    should_stop=should_stop,
                )
        try:
            outcomes = self.primary.execute(
                jobs,
                tracer=tracer,
                policy=policy,
                on_outcome=on_outcome,
                stats=stats,
                should_stop=should_stop,
            )
        except (ExecutorUnavailable, ConnectionError, OSError) as exc:
            self._transition(self.breaker.record_failure())
            if self.fallback is not None:
                # Nothing settled (connect failures die before publishing),
                # so the whole batch re-submits cleanly.
                return self.fallback.execute(
                    jobs,
                    tracer=tracer,
                    policy=policy,
                    on_outcome=on_outcome,
                    stats=stats,
                    should_stop=should_stop,
                )
            raise ExecutorUnavailable(
                f"{self.primary.name} backend unavailable and no fallback "
                f"configured: {type(exc).__name__}: {exc}"
            ) from exc
        lost = sum(
            1
            for outcome in outcomes
            if outcome.failure is not None
            and outcome.failure.error_type == "WorkerLost"
        )
        if lost:
            self._transition(self.breaker.record_failure())
        else:
            self._transition(self.breaker.record_success())
        return outcomes

    def close(self) -> None:
        self.primary.close()
        if self.fallback is not None:
            self.fallback.close()


class _JobState:
    """Mutable per-job bookkeeping inside the pool scheduler."""

    __slots__ = ("job", "index", "attempts", "eligible_at", "first_start")

    def __init__(self, job: "RunJob", index: int):
        self.job = job
        self.index = index
        self.attempts = 0
        self.eligible_at = 0.0
        self.first_start: float | None = None


class _PoolScheduler:
    """Per-job futures with timeouts, retries and pool recovery.

    The scheduler submits at most ``pool_size`` jobs at a time, so a
    job's wall-time budget starts ticking when it actually starts
    running.  A hung or overdue worker cannot be cancelled politely, so
    a timeout (like a ``BrokenProcessPool``) kills and respawns the
    pool; in-flight jobs that were *not* at fault are re-enqueued with
    no attempt charged.  After ``max_pool_respawns`` consecutive pool
    deaths with zero completed jobs in between, the remaining jobs run
    serially in-process rather than thrashing a dying pool.
    """

    def __init__(
        self,
        jobs: "Sequence[RunJob]",
        pool_size: int,
        tracer: "Tracer | None",
        policy: ExecutionPolicy,
        on_outcome: "Callable[[JobOutcome], None] | None",
        stats: OutcomeStats | None,
        should_stop: "Callable[[], bool] | None" = None,
    ):
        self.jobs = list(jobs)
        self.pool_size = pool_size
        self.tracer = tracer
        self.policy = policy
        self.on_outcome = on_outcome
        self.stats = stats
        self.should_stop = should_stop
        self.outcomes: list[JobOutcome | None] = [None] * len(self.jobs)
        self.pending: deque[_JobState] = deque(
            _JobState(job, i) for i, job in enumerate(self.jobs)
        )
        self.running: dict = {}  # future -> (state, deadline | None)
        self.pool: ProcessPoolExecutor | None = None
        self.respawns_without_progress = 0
        self.completed_since_respawn = 0
        self.degrade_serial = False

    # ------------------------------------------------------------------
    def run(self) -> list[JobOutcome]:
        try:
            while self.pending or self.running:
                self._check_stop()
                if self.degrade_serial and not self.running:
                    self._drain_serial()
                    break
                self._ensure_pool()
                self._submit_eligible()
                self._wait_and_collect()
        except BaseException:
            # KeyboardInterrupt or a fail-fast failure: cancel pending
            # futures and take the children down with the pool so no
            # orphans linger.  Completed results were already delivered
            # through on_outcome.
            self._kill_pool()
            raise
        else:
            if self.pool is not None:
                self.pool.shutdown(wait=True)
                self.pool = None
        assert all(outcome is not None for outcome in self.outcomes)
        return self.outcomes  # type: ignore[return-value]

    def _check_stop(self) -> None:
        if self.should_stop is not None and self.should_stop():
            raise ExecutionInterrupted(
                f"execution stopped with {len(self.pending)} pending and "
                f"{len(self.running)} running job(s)"
            )

    # ------------------------------------------------------------------
    def _ensure_pool(self) -> None:
        if self.pool is None and not self.degrade_serial:
            self.pool = ProcessPoolExecutor(max_workers=self.pool_size)

    def _submit_eligible(self) -> None:
        from repro.experiments.parallel import _pool_attempt

        if self.pool is None:
            return
        now = time.monotonic()
        held: list[_JobState] = []
        try:
            while self.pending and len(self.running) < self.pool_size:
                state = self.pending.popleft()
                if state.eligible_at > now:
                    held.append(state)
                    continue
                state.attempts += 1
                if state.first_start is None:
                    state.first_start = now
                deadline = (
                    now + self.policy.job_timeout
                    if self.policy.job_timeout is not None
                    else None
                )
                payload = (state.job, state.attempts, self.tracer is not None)
                try:
                    future = self.pool.submit(_pool_attempt, payload)
                except BrokenProcessPool:
                    # The job never reached the pool: uncharge and requeue.
                    state.attempts -= 1
                    self.pending.appendleft(state)
                    self._pool_broken()
                    break
                self.running[future] = (state, deadline)
        finally:
            self.pending.extendleft(reversed(held))

    def _wait_and_collect(self) -> None:
        now = time.monotonic()
        waits: list[float] = []
        deadlines = [d for (_, d) in self.running.values() if d is not None]
        if deadlines:
            waits.append(min(deadlines) - now)
        if self.pending and len(self.running) < self.pool_size:
            # Capacity is free but every queued job is in backoff: wake
            # when the earliest becomes eligible.
            waits.append(min(s.eligible_at for s in self.pending) - now)
        timeout = max(0.0, min(waits)) if waits else None
        if not self.running:
            if timeout:
                time.sleep(timeout)
            return
        done, _ = wait(set(self.running), timeout=timeout, return_when=FIRST_COMPLETED)
        # Harvest clean completions before any pool-death sweep: a pool
        # break re-enqueues every job still tracked as in-flight, and a
        # result that already arrived should not be thrown away with them.
        for future in sorted(done, key=lambda f: f.exception() is not None):
            self._collect(future)
        self._check_deadlines()

    # ------------------------------------------------------------------
    def _collect(self, future) -> None:
        from repro.experiments.parallel import _validate_result

        entry = self.running.pop(future, None)
        if entry is None:  # already handled by a pool-death sweep
            return
        state, _deadline = entry
        try:
            result, spans = future.result()
            _validate_result(state.job, result)
        except BrokenProcessPool:
            self.running[future] = entry  # count it among the lost
            self._pool_broken()
            return
        except Exception as exc:
            self._attempt_failed(state, exc)
            return
        if spans and self.tracer is not None:
            self.tracer.merge(spans, worker=True)
        self._success(state, result)

    def _success(self, state: _JobState, result: "SimulationResult") -> None:
        if self.stats is not None:
            self.stats.executed += 1
        self.completed_since_respawn += 1
        self.respawns_without_progress = 0
        self._finish(
            state,
            JobOutcome(
                job=state.job,
                result=result,
                attempts=state.attempts,
                elapsed=self._elapsed(state),
            ),
        )

    def _attempt_failed(self, state: _JobState, exc: BaseException) -> None:
        failure = classify_failure(exc, state.attempts, self._elapsed(state))
        if failure.retryable and state.attempts <= self.policy.max_retries:
            if self.stats is not None:
                self.stats.retries += 1
            if self.tracer is not None:
                self.tracer.event(
                    "job.retry",
                    kernel=state.job.kernel,
                    kind=failure.kind,
                    attempt=state.attempts,
                )
            state.eligible_at = time.monotonic() + self.policy.backoff(state.attempts)
            self.pending.append(state)
            return
        if self.stats is not None:
            self.stats.record_failure(failure)
        self._finish(
            state,
            JobOutcome(
                job=state.job,
                failure=failure,
                attempts=state.attempts,
                elapsed=self._elapsed(state),
            ),
        )

    def _finish(self, state: _JobState, outcome: JobOutcome) -> None:
        self.outcomes[state.index] = outcome
        if self.on_outcome is not None:
            self.on_outcome(outcome)
        if not outcome.ok and self.policy.fail_fast:
            assert outcome.failure is not None
            raise RunFailureError(state.job, outcome.failure)

    def _elapsed(self, state: _JobState) -> float:
        if state.first_start is None:
            return 0.0
        return time.monotonic() - state.first_start

    # ------------------------------------------------------------------
    def _pool_broken(self) -> None:
        """A worker died abruptly: respawn and re-enqueue the lost jobs.

        Which in-flight job killed the worker is unknowable from the
        parent, so every lost job is charged one ``crash`` attempt --
        the retry budget bounds a job that reliably kills its worker
        while letting innocent bystanders re-run.
        """
        lost = [state for (state, _d) in self.running.values()]
        self.running.clear()
        self._kill_pool()
        if self.stats is not None:
            self.stats.pool_respawns += 1
        if self.tracer is not None:
            self.tracer.event("pool.respawn", lost=len(lost))
        if self.completed_since_respawn == 0:
            self.respawns_without_progress += 1
        else:
            self.respawns_without_progress = 0
        self.completed_since_respawn = 0
        if self.respawns_without_progress > self.policy.max_pool_respawns:
            self.degrade_serial = True
            if self.tracer is not None:
                self.tracer.event("pool.degrade-serial")
        for state in lost:
            self._attempt_failed(state, BrokenProcessPool("worker process died"))

    def _check_deadlines(self) -> None:
        if self.policy.job_timeout is None or not self.running:
            return
        now = time.monotonic()
        overdue = [
            (future, state)
            for future, (state, deadline) in self.running.items()
            if deadline is not None and deadline <= now and not future.done()
        ]
        if not overdue:
            return
        # The overdue workers are hung; the only way out is to recycle
        # the pool.  Innocent in-flight jobs are re-enqueued uncharged.
        if self.stats is not None:
            self.stats.timeouts += len(overdue)
        for future, state in overdue:
            del self.running[future]
            self._attempt_failed(
                state,
                TimeoutError(
                    f"job exceeded {self.policy.job_timeout}s wall-time budget"
                ),
            )
        for future, (state, _deadline) in list(self.running.items()):
            state.attempts -= 1  # not this job's fault: uncharge the attempt
            self.pending.append(state)
        self.running.clear()
        self._kill_pool()
        if self.tracer is not None:
            self.tracer.event("pool.recycle", reason="timeout")

    def _kill_pool(self) -> None:
        pool = self.pool
        self.pool = None
        if pool is None:
            return
        # Hung children never drain the call queue, so a polite shutdown
        # would block forever: kill them first (private attr, guarded).
        processes = getattr(pool, "_processes", None)
        if processes:
            for process in list(processes.values()):
                try:
                    process.kill()
                except Exception:  # pragma: no cover - already-dead race
                    pass
        pool.shutdown(wait=False, cancel_futures=True)

    # ------------------------------------------------------------------
    def _drain_serial(self) -> None:
        """Degraded mode: finish the remaining jobs in-process."""
        from repro.experiments.parallel import run_job_outcome

        while self.pending:
            self._check_stop()
            state = self.pending.popleft()
            outcome = run_job_outcome(
                state.job,
                tracer=self.tracer,
                policy=self.policy,
                stats=self.stats,
                start_attempt=state.attempts,
            )
            self._finish(state, outcome)
