"""Shared experiment harness.

A :class:`Workbench` prepares workload traces once (dependences and
mispredictions are configuration-independent), builds the paper's policy
stacks by name, and runs simulations with the paper's predictor-warm-up
methodology: every measured run is preceded by a warm-up run of the same
machine and policy that trains the criticality/LoC predictors online, then
the measurement run continues training from the warm state (Section 2.1
"after warming up the branch predictor and cache"; the criticality predictor
warms the same way).

Policy names (matching Figure 14's bar labels):

* ``dependence`` -- dependence-based steering, oldest-first scheduling
  (no criticality; a pre-Fields baseline).
* ``focused``    -- Fields et al.'s focused steering and scheduling.
* ``l``          -- + LoC-based scheduling (Section 4).
* ``s``          -- + stall-over-steer (Section 5).
* ``p``          -- + proactive load-balancing (Section 6).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.config import MachineConfig, clustered_machine, monolithic_machine
from repro.core.rename import Dependences, extract_dependences
from repro.core.results import SimulationResult
from repro.core.scheduling.policies import (
    CriticalFirstScheduler,
    LocScheduler,
    OldestFirstScheduler,
)
from repro.core.simulator import ClusteredSimulator
from repro.core.steering.dependence import (
    CriticalitySteering,
    CriticalitySteeringConfig,
    DependenceSteering,
)
from repro.criticality.loc import LocPredictor, PredictorSuite
from repro.criticality.trainer import ChunkedCriticalityTrainer
from repro.frontend.branch_predictor import (
    GshareBranchPredictor,
    annotate_mispredictions,
)
from repro.vm.trace import DynamicInstruction
from repro.workloads.common import KernelSpec
from repro.workloads.suite import SUITE

POLICY_NAMES = ("dependence", "focused", "l", "s", "p")

DEFAULT_INSTRUCTIONS = 12_000
# A generous bound: no sane run needs more cycles than ~20 per instruction.
_MAX_CPI_GUARD = 64


@dataclass(frozen=True)
class PreparedWorkload:
    """A trace with its configuration-independent annotations."""

    name: str
    trace: tuple[DynamicInstruction, ...]
    dependences: tuple[Dependences, ...]
    mispredicted: frozenset[int]


def build_policy(name: str):
    """Construct fresh (steering, scheduler, needs_predictors) for ``name``."""
    if name == "dependence":
        return DependenceSteering(), OldestFirstScheduler(), False
    if name == "focused":
        steering = CriticalitySteering(CriticalitySteeringConfig(preference="binary"))
        return steering, CriticalFirstScheduler(), True
    if name == "l":
        steering = CriticalitySteering(CriticalitySteeringConfig(preference="loc"))
        return steering, LocScheduler(), True
    if name == "s":
        steering = CriticalitySteering(
            CriticalitySteeringConfig(preference="loc", stall_over_steer=True)
        )
        return steering, LocScheduler(), True
    if name == "p":
        steering = CriticalitySteering(
            CriticalitySteeringConfig(
                preference="loc", stall_over_steer=True, proactive=True
            )
        )
        return steering, LocScheduler(), True
    raise ValueError(f"unknown policy {name!r}; want one of {POLICY_NAMES}")


class Workbench:
    """Caches prepared workloads and canonical runs for one experiment pass."""

    def __init__(
        self,
        instructions: int = DEFAULT_INSTRUCTIONS,
        seed: int = 0,
        benchmarks: Sequence[KernelSpec] | None = None,
        loc_mode: str = "probabilistic",
    ):
        if instructions <= 0:
            raise ValueError("instructions must be positive")
        self.instructions = instructions
        self.seed = seed
        self.benchmarks = tuple(benchmarks if benchmarks is not None else SUITE)
        self.loc_mode = loc_mode
        self._prepared: dict[str, PreparedWorkload] = {}
        self._run_cache: dict[tuple, SimulationResult] = {}

    # ------------------------------------------------------------------
    def prepare(self, spec: KernelSpec) -> PreparedWorkload:
        """Generate (once) the trace, dependences and mispredictions."""
        cached = self._prepared.get(spec.name)
        if cached is not None:
            return cached
        trace = tuple(spec.generate(self.instructions, seed=self.seed))
        dependences = tuple(extract_dependences(trace))
        mispredicted = frozenset(
            annotate_mispredictions(trace, GshareBranchPredictor())
        )
        prepared = PreparedWorkload(spec.name, trace, dependences, mispredicted)
        self._prepared[spec.name] = prepared
        return prepared

    # ------------------------------------------------------------------
    def run(
        self,
        spec: KernelSpec,
        config: MachineConfig,
        policy: str,
        collect_ilp: bool = False,
        warm: bool = True,
    ) -> SimulationResult:
        """Run ``spec`` on ``config`` under ``policy`` (cached)."""
        # MachineConfig is a frozen dataclass tree, so the full config can
        # key the cache -- two configs differing only in, say, forwarding
        # bandwidth or memory hierarchy must not collide.
        key = (spec.name, config, policy, collect_ilp)
        cached = self._run_cache.get(key)
        if cached is not None:
            return cached
        prepared = self.prepare(spec)
        result = self._run_once(prepared, config, policy, collect_ilp, warm)
        self._run_cache[key] = result
        return result

    def monolithic_baseline(self, spec: KernelSpec, policy: str = "l") -> SimulationResult:
        """The 1x8w run results are normalized against."""
        return self.run(spec, monolithic_machine(), policy)

    def clustered(self, num_clusters: int, forwarding_latency: int = 2) -> MachineConfig:
        """Convenience passthrough."""
        return clustered_machine(num_clusters, forwarding_latency=forwarding_latency)

    # ------------------------------------------------------------------
    def _run_once(
        self,
        prepared: PreparedWorkload,
        config: MachineConfig,
        policy: str,
        collect_ilp: bool,
        warm: bool,
    ) -> SimulationResult:
        max_cycles = _MAX_CPI_GUARD * len(prepared.trace) + 10_000
        steering, scheduler, needs_predictors = build_policy(policy)
        suite = None
        trainer = None
        if needs_predictors:
            suite = PredictorSuite(
                loc_predictor=LocPredictor(mode=self.loc_mode, seed=self.seed)
            )
            trainer = ChunkedCriticalityTrainer(suite)
            if warm:
                warm_sim = ClusteredSimulator(
                    config,
                    steering=steering,
                    scheduler=scheduler,
                    predictors=suite,
                    trainer=trainer,
                    max_cycles=max_cycles,
                )
                warm_sim.run(
                    prepared.trace, prepared.dependences, prepared.mispredicted
                )
                # Fresh policy state for the measured run; predictors stay warm.
                steering, scheduler, __ = build_policy(policy)
        sim = ClusteredSimulator(
            config,
            steering=steering,
            scheduler=scheduler,
            predictors=suite,
            trainer=trainer,
            collect_ilp=collect_ilp,
            max_cycles=max_cycles,
        )
        return sim.run(prepared.trace, prepared.dependences, prepared.mispredicted)
