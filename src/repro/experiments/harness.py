"""Shared experiment harness.

A :class:`Workbench` prepares workload traces once (dependences and
mispredictions are configuration-independent), builds the paper's policy
stacks by name, and runs simulations with the paper's predictor-warm-up
methodology: every measured run is preceded by a warm-up run of the same
machine and policy that trains the criticality/LoC predictors online, then
the measurement run continues training from the warm state (Section 2.1
"after warming up the branch predictor and cache"; the criticality predictor
warms the same way).

Runs are cached at two levels:

* an **in-memory** cache keyed by (kernel, config, policy, collect_ilp,
  warm) for the lifetime of the workbench;
* an optional **persistent** :class:`~repro.experiments.cache.RunCache`
  shared across processes and invocations, keyed by a content hash of the
  full :class:`~repro.experiments.parallel.RunJob`.

Independent runs can be fanned out over worker processes with
:meth:`Workbench.prefetch` (each figure module publishes a ``plan_*``
enumerating the runs it needs); serial and parallel execution produce
bit-identical results because both go through
:func:`repro.experiments.parallel.execute_job`.

Policy names (matching Figure 14's bar labels):

* ``dependence`` -- dependence-based steering, oldest-first scheduling
  (no criticality; a pre-Fields baseline).
* ``focused``    -- Fields et al.'s focused steering and scheduling.
* ``l``          -- + LoC-based scheduling (Section 4).
* ``s``          -- + stall-over-steer (Section 5).
* ``p``          -- + proactive load-balancing (Section 6).
"""

from __future__ import annotations

import warnings
from typing import Iterable, Sequence

from repro.core.config import MachineConfig, clustered_machine, monolithic_machine
from repro.core.results import SimulationResult
from repro.experiments.batch import batchable_config, fast_policy
from repro.experiments.cache import RunCache
from repro.experiments.executor import Executor, executor_names, make_executor
from repro.experiments.outcomes import (
    ExecutionPolicy,
    JobOutcome,
    OutcomeStats,
    RunFailureError,
)
from repro.experiments.parallel import (
    PreparedWorkload,
    RunJob,
    dedupe_jobs,
    default_workers,
    prepare_workload,
    run_job_outcome,
)
from repro.specs.policy import PolicySpec, canonical_policy, policy_names, resolve_policy
from repro.workloads.common import KernelSpec
from repro.workloads.suite import SUITE

__all__ = [
    "DEFAULT_INSTRUCTIONS",
    "POLICY_NAMES",
    "ParallelWorkbench",
    "PreparedWorkload",
    "Workbench",
    "build_policy",
]

# Derived from the preset registry (repro.specs.policy.PRESETS); kept as a
# module constant because it is a long-standing import target.
POLICY_NAMES = policy_names()

DEFAULT_INSTRUCTIONS = 12_000


def build_policy(name: str):
    """Construct fresh (steering, scheduler, needs_predictors) for ``name``.

    .. deprecated::
        The policy stacks are spec presets now; use
        ``repro.specs.resolve_policy(name).build()`` (or better, pass the
        name / a :class:`~repro.specs.PolicySpec` straight to the
        workbench and job layer).  This shim builds the exact same
        objects from the preset table.
    """
    warnings.warn(
        "build_policy() is deprecated; use repro.specs.resolve_policy(name)"
        ".build() or pass the policy name/spec directly",
        DeprecationWarning,
        stacklevel=2,
    )
    return resolve_policy(name).build()


class Workbench:
    """Caches prepared workloads and canonical runs for one experiment pass.

    ``workers`` > 1 lets :meth:`prefetch` fan independent runs out over a
    process pool; ``cache`` adds a persistent on-disk result store shared
    across workbenches and invocations.  ``simulations_run`` counts the
    simulations this workbench actually executed (cache hits excluded),
    which is how the CLI and the tests verify that a warm cache re-executes
    nothing.

    Observability (both opt-in, zero-cost when off): ``metrics=True``
    attaches a :class:`~repro.telemetry.recorder.TelemetryData` payload to
    every result this workbench runs; ``tracer`` collects wall-time spans
    around trace prep, warm-up, measurement and cache traffic.

    Backend selection: ``sim`` picks the timing loop ("event",
    "reference", or "batched"); with the default ``batch="auto"``,
    event-mode jobs whose policy the batched backend supports are
    promoted to ``sim="batched"`` at :meth:`job` construction, and
    :meth:`prefetch` runs same-trace groups of them through one shared
    decode/precompute/warm-up pass (:mod:`repro.experiments.batch`).
    ``batch="off"`` restores the pure per-job event path.

    Execution backend: ``executor`` names the
    :class:`~repro.experiments.executor.Executor` :meth:`prefetch` fans
    pending jobs out through -- ``"local"`` (the in-process pool,
    default) or ``"distributed"`` (shard over ``repro worker`` processes
    at ``workers_endpoint``; see :mod:`repro.distwork`) -- or is a ready
    executor instance.  Call :meth:`close_executors` when done with a
    bench that used the distributed backend.
    """

    def __init__(
        self,
        instructions: int = DEFAULT_INSTRUCTIONS,
        seed: int = 0,
        benchmarks: Sequence[KernelSpec] | None = None,
        loc_mode: str = "probabilistic",
        workers: int = 0,
        cache: RunCache | None = None,
        sim: str = "event",
        batch: str = "auto",
        metrics: bool = False,
        tracer=None,
        execution: ExecutionPolicy | None = None,
        executor: "str | Executor" = "local",
        workers_endpoint: str | None = None,
    ):
        if instructions <= 0:
            raise ValueError("instructions must be positive")
        if sim not in ("event", "reference", "batched"):
            raise ValueError(
                f"unknown simulator {sim!r}; want 'event', 'reference' or 'batched'"
            )
        if batch not in ("auto", "off"):
            raise ValueError(f"unknown batch mode {batch!r}; want 'auto' or 'off'")
        if isinstance(executor, str) and executor not in executor_names():
            raise ValueError(
                f"unknown executor {executor!r}; "
                f"want one of: {', '.join(executor_names())}"
            )
        self.instructions = instructions
        self.seed = seed
        self.benchmarks = tuple(benchmarks if benchmarks is not None else SUITE)
        self.loc_mode = loc_mode
        self.workers = workers
        self.cache = cache
        self.sim = sim
        self.batch = batch
        self.metrics = metrics
        self.tracer = tracer
        self.execution = execution if execution is not None else ExecutionPolicy()
        self.executor = executor
        self.workers_endpoint = workers_endpoint
        self._executor_cache: dict[str, Executor] = {}
        self.exec_stats = OutcomeStats()
        if cache is not None and tracer is not None and cache.tracer is None:
            cache.tracer = tracer
        self.simulations_run = 0
        self._prepared: dict[str, PreparedWorkload] = {}
        self._run_cache: dict[tuple, SimulationResult] = {}
        self._job_for_key: dict[tuple, RunJob] = {}
        self._failures: dict[tuple, JobOutcome] = {}

    # ------------------------------------------------------------------
    def prepare(self, spec: KernelSpec) -> PreparedWorkload:
        """Generate (once) the trace, dependences and mispredictions."""
        cached = self._prepared.get(spec.name)
        if cached is not None:
            return cached
        if self.tracer is not None:
            with self.tracer.span("trace-prep", kernel=spec.name):
                prepared = prepare_workload(spec.name, self.instructions, self.seed)
        else:
            prepared = prepare_workload(spec.name, self.instructions, self.seed)
        self._prepared[spec.name] = prepared
        return prepared

    # ------------------------------------------------------------------
    def job(
        self,
        spec: KernelSpec,
        config: MachineConfig,
        policy: str | PolicySpec,
        collect_ilp: bool = False,
        warm: bool = True,
    ) -> RunJob:
        """The picklable job describing one run of this workbench.

        ``policy`` may be a preset name or any :class:`~repro.specs.
        PolicySpec`; it is canonicalized (a spec that equals a preset
        collapses to the preset's name) so equal stacks produce equal --
        and therefore memory-cache-sharing -- jobs.

        With ``batch="auto"`` (the default), an ``"event"`` job whose
        policy the batched backend supports is promoted to
        ``sim="batched"`` here, at construction -- so a figure's plan,
        its serial :meth:`run` calls and its parallel :meth:`prefetch`
        all agree on one job identity (and one cache key) regardless of
        how the job eventually executes.  ``batch="off"`` (the CLI's
        ``--no-batch``), ``metrics=True`` and unsupported policies keep
        the event path.
        """
        policy = canonical_policy(policy)
        return RunJob(
            kernel=spec.name,
            instructions=self.instructions,
            seed=self.seed,
            loc_mode=self.loc_mode,
            config=config,
            policy=policy,
            collect_ilp=collect_ilp,
            warm=warm,
            sim=self.sim_for(policy, config),
            metrics=self.metrics,
        )

    def sim_for(
        self, policy: str | PolicySpec, config: MachineConfig | None = None
    ) -> str:
        """The backend a job running ``policy`` on this workbench uses.

        This is the single place the ``batch="auto"`` promotion decision
        lives: :meth:`job` and spec-built plans
        (:meth:`repro.specs.ExperimentSpec.jobs`) both route through it,
        so every way of constructing "the same run" lands on one job
        identity -- and therefore one cache key.  Pass a *canonical*
        policy (:func:`repro.specs.canonical_policy`) for best memoization.
        ``config`` keeps machines the batched engine cannot run (clusters
        with a zero-port pool need the dispatch-level capability
        redirect) on the event path.
        """
        if (
            self.sim == "event"
            and self.batch == "auto"
            and not self.metrics
            and fast_policy(policy) is not None
            and (config is None or batchable_config(config))
        ):
            return "batched"
        return self.sim

    @staticmethod
    def _memory_key(job: RunJob) -> RunJob:
        # The full job is the key: RunJob is a frozen dataclass whose
        # fields are exactly the inputs that determine a run's output, so
        # memory-cache identity coincides with the on-disk cache's hash
        # domain.  Keying on a field subset (as this once did, omitting
        # instructions/seed/loc_mode) is a collision bug for any workbench
        # that outlives one configuration -- the job service's long-lived
        # shared bench serves specs with per-spec instruction counts and
        # seeds, and must never satisfy one spec's lookup with another's
        # result.
        return job

    def run(
        self,
        spec: KernelSpec,
        config: MachineConfig,
        policy: str | PolicySpec,
        collect_ilp: bool = False,
        warm: bool = True,
    ) -> SimulationResult:
        """Run ``spec`` on ``config`` under ``policy`` (cached).

        Raises :class:`~repro.experiments.outcomes.RunFailureError` if the
        run fails past the workbench's retry budget (or failed earlier in
        this workbench's lifetime); use :meth:`outcome` to observe
        failures as values instead.
        """
        return self.outcome(spec, config, policy, collect_ilp, warm).unwrap()

    def outcome(
        self,
        spec: KernelSpec,
        config: MachineConfig,
        policy: str | PolicySpec,
        collect_ilp: bool = False,
        warm: bool = True,
    ) -> JobOutcome:
        """Like :meth:`run`, but failures settle as values, not exceptions.

        Cache hits come back as ok outcomes tagged ``source="memory"`` /
        ``"cache"``.  A job that already failed in this workbench's
        lifetime returns its recorded failure without re-running (one bad
        run must not stall a whole figure once per cell); a fresh run goes
        through :func:`~repro.experiments.parallel.run_job_outcome` under
        the workbench's :class:`~repro.experiments.outcomes.
        ExecutionPolicy`, so transient faults retry before the failure is
        accepted.  With ``fail_fast`` the failure raises instead.
        """
        job = self.job(spec, config, policy, collect_ilp, warm)
        key = self._memory_key(job)
        self._job_for_key.setdefault(key, job)
        cached = self._run_cache.get(key)
        if cached is not None:
            return JobOutcome(job=job, result=cached, attempts=0, source="memory")
        failed = self._failures.get(key)
        if failed is not None:
            return failed
        if self.cache is not None:
            loaded = self.cache.load(job)
            if loaded is not None:
                self._run_cache[key] = loaded
                return JobOutcome(job=job, result=loaded, attempts=0, source="cache")
        out = run_job_outcome(
            job,
            self.prepare(spec),
            tracer=self.tracer,
            policy=self.execution,
            stats=self.exec_stats,
        )
        self._settle(out)
        if not out.ok and self.execution.fail_fast:
            raise RunFailureError(job, out.failure)
        return out

    def _settle(self, outcome: JobOutcome) -> None:
        """Absorb one executed outcome into the caches / failure ledger.

        Only outcomes that actually *ran* a simulation count toward
        ``simulations_run`` and get flushed to the persistent cache; the
        distributed executor can settle a job from the shared on-disk
        cache (``source="cache"``) when another worker already stored it,
        and re-storing or re-counting those would lie about work done.
        (The local path settles everything as ``source="run"``, so its
        accounting is unchanged.)
        """
        key = self._memory_key(outcome.job)
        if outcome.ok:
            if outcome.source == "run":
                self.simulations_run += 1
                if self.cache is not None:
                    self.cache.store(outcome.job, outcome.result)
            self._run_cache[key] = outcome.result
            self._failures.pop(key, None)
        else:
            self._failures[key] = outcome

    # ------------------------------------------------------------------
    def prefetch(self, jobs: Iterable[RunJob], on_outcome=None, should_stop=None) -> int:
        """Materialize ``jobs`` into the caches, fanning out over workers.

        Already-cached jobs (memory or disk) are skipped; the rest run on
        a process pool when ``workers`` > 1, serially otherwise.  Returns
        the number of simulations actually executed.  After a prefetch,
        the matching :meth:`run` calls are cache hits, so figure code can
        stay serial while the heavy lifting happens in parallel.

        Each job settles **as it completes**: successes go straight to
        the memory and persistent caches (so a ``KeyboardInterrupt``
        mid-sweep loses nothing already finished), failures land in the
        workbench's failure ledger for :meth:`failure_for` /
        :meth:`failed_outcomes`, and ``on_outcome`` -- when given -- sees
        every settled :class:`~repro.experiments.outcomes.JobOutcome`
        (checkpoint manifests hook in here).  Under ``fail_fast`` the
        first failure raises :class:`~repro.experiments.outcomes.
        RunFailureError` after in-flight work is torn down.

        ``should_stop`` is polled between jobs (and between batched
        groups); when it turns true the prefetch raises
        :class:`~repro.experiments.outcomes.ExecutionInterrupted` --
        already-settled jobs stay cached and journaled.
        """
        pending: list[RunJob] = []
        for job in dedupe_jobs(jobs):
            key = self._memory_key(job)
            self._job_for_key.setdefault(key, job)
            if key in self._run_cache:
                continue
            if self.cache is not None:
                loaded = self.cache.load(job)
                if loaded is not None:
                    self._run_cache[key] = loaded
                    continue
            pending.append(job)
        if not pending:
            return 0
        executed_before = self.simulations_run

        def settle(outcome: JobOutcome) -> None:
            self._settle(outcome)
            if on_outcome is not None:
                on_outcome(outcome)

        self.resolve_executor().execute(
            pending,
            tracer=self.tracer,
            policy=self.execution,
            on_outcome=settle,
            stats=self.exec_stats,
            should_stop=should_stop,
        )
        return self.simulations_run - executed_before

    def resolve_executor(self) -> Executor:
        """The :class:`~repro.experiments.executor.Executor` prefetch uses.

        ``executor`` may be a backend name (``"local"`` /
        ``"distributed"``) or a ready :class:`Executor` instance.  Named
        backends are built through
        :func:`~repro.experiments.executor.make_executor` and cached per
        name, so a distributed executor keeps its coordinator transport
        alive across prefetch calls (a sweep is many prefetches); the
        local backend is stateless, so caching it is merely free.
        """
        if not isinstance(self.executor, str):
            return self.executor
        cached = self._executor_cache.get(self.executor)
        if cached is None:
            cached = make_executor(
                self.executor,
                workers=self.workers,
                endpoint=self.workers_endpoint,
            )
            self._executor_cache[self.executor] = cached
        return cached

    def close_executors(self) -> None:
        """Release executor-held resources (distributed transports)."""
        for executor in self._executor_cache.values():
            executor.close()
        self._executor_cache.clear()

    # ------------------------------------------------------------------
    def result_for(self, job: RunJob) -> SimulationResult | None:
        """The already-materialized result for ``job``, if any (no run)."""
        return self._run_cache.get(self._memory_key(job))

    def failure_for(self, job: RunJob) -> JobOutcome | None:
        """The recorded failed outcome for ``job``, if any (no run)."""
        return self._failures.get(self._memory_key(job))

    def failed_outcomes(self) -> list[JobOutcome]:
        """Every failed outcome this workbench has recorded, in order."""
        return list(self._failures.values())

    def cached_results(self) -> list[tuple[RunJob, SimulationResult]]:
        """Every (job, result) this workbench has materialized, in order.

        The run-report builder walks this to aggregate a whole experiment
        invocation without re-running anything.
        """
        pairs = []
        for key, result in self._run_cache.items():
            job = self._job_for_key.get(key)
            if job is not None:
                pairs.append((job, result))
        return pairs

    # ------------------------------------------------------------------
    def monolithic_baseline(
        self, spec: KernelSpec, policy: str | PolicySpec = "l"
    ) -> SimulationResult:
        """The 1x8w run results are normalized against."""
        return self.run(spec, monolithic_machine(), policy)

    def clustered(self, num_clusters: int, forwarding_latency: int = 2) -> MachineConfig:
        """Convenience passthrough."""
        return clustered_machine(num_clusters, forwarding_latency=forwarding_latency)


class ParallelWorkbench(Workbench):
    """A :class:`Workbench` that defaults to one worker per CPU core."""

    def __init__(self, *args, workers: int | None = None, **kwargs):
        if workers is None:
            workers = default_workers()
        super().__init__(*args, workers=workers, **kwargs)
