"""The distributed :class:`~repro.experiments.executor.Executor` backend.

The coordinator half of :mod:`repro.distwork`, packaged behind the same
protocol every other backend implements: ``execute()`` publishes the
sweep's jobs as leased tasks, then drains settled outcomes on the
calling thread -- so ``on_outcome`` keeps the exact threading contract
the workbench and the sweep manifest journal rely on -- until every job
has settled.  Workers are *external*: start any number of ``repro
worker ENDPOINT`` processes (before or after the sweep starts; they
lease work as they arrive and more can join mid-sweep).

Determinism: jobs are deterministic in their fields and the shared
:class:`~repro.experiments.cache.RunCache` is content-addressed, so the
figure produced through N workers, any join order, stolen leases and
double executions is bit-identical to a serial run.  The executed-*job*
set is exactly the submitted set; which worker ran what is the only
nondeterminism, and it is observable only in ``OutcomeStats`` (a job
another worker already cached settles as ``source="cache"`` and does not
count as executed here).

Stats caveats vs the local pool: ``retries`` is reconstructed as
``attempts - 1`` per settled job (the worker's in-process retry loop is
remote, so per-retry events are not streamed), and ``pool_respawns``
counts nothing -- there is no pool; dead leases surface as ``crash``
retries instead.
"""

from __future__ import annotations

import time
import uuid
from typing import TYPE_CHECKING, Any, Callable, Sequence

from repro.experiments.outcomes import (
    ExecutionInterrupted,
    ExecutionPolicy,
    ExecutorUnavailable,
    JobOutcome,
    OutcomeStats,
    RunFailureError,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.parallel import RunJob
    from repro.telemetry.tracing import Tracer

__all__ = ["DistributedExecutor"]


class DistributedExecutor:
    """Shard jobs over ``repro worker`` processes at ``endpoint``.

    ``endpoint`` selects the transport
    (:func:`repro.distwork.protocol.parse_endpoint`): ``host:port`` binds
    a TCP coordinator there (port 0 for ephemeral -- see
    :attr:`endpoint` after first use), anything else is a shared spool
    directory.  The transport outlives individual ``execute()`` calls --
    a sweep is many prefetches and workers stay connected throughout --
    and is released by :meth:`close`, which also tells idle workers to
    exit.

    ``lease_timeout`` bounds how long a silent worker holds a job before
    it is re-queued for someone else; it must comfortably exceed one
    job's runtime over the heartbeat interval (a third of it), and on the
    spool transport it compares file mtimes across machines, so keep it
    generous there.
    """

    name = "distributed"

    def __init__(
        self,
        endpoint: str,
        *,
        lease_timeout: float = 15.0,
        poll: float = 0.05,
    ):
        if not endpoint:
            raise ValueError("DistributedExecutor needs a workers endpoint")
        self.endpoint = endpoint
        self.lease_timeout = lease_timeout
        self.poll = poll
        self._transport = None
        self._batch = 0
        # Task ids are scoped to this executor instance: a plain batch
        # counter would repeat across runs, and a reused spool directory
        # (or a late message from an earlier coordinator) could then
        # settle a fresh job with a stale payload.
        self._nonce = uuid.uuid4().hex[:8]

    # ------------------------------------------------------------------
    def _ensure_transport(self):
        if self._transport is None:
            from repro.distwork.coordinator import DirCoordinator, TcpCoordinator
            from repro.distwork.protocol import parse_endpoint

            kind, target = parse_endpoint(self.endpoint)
            try:
                if kind == "tcp":
                    host, port = target
                    self._transport = TcpCoordinator(
                        host, port, lease_timeout=self.lease_timeout
                    )
                    host, port = self._transport.address
                    self.endpoint = f"{host}:{port}"
                else:
                    self._transport = DirCoordinator(
                        target, lease_timeout=self.lease_timeout
                    )
            except OSError as exc:
                # The endpoint is unusable (port taken, bad interface,
                # unwritable spool...).  Surface it as a backend-down
                # condition the circuit breaker can count, not a raw
                # socket error.
                raise ExecutorUnavailable(
                    f"cannot open workers endpoint {self.endpoint!r}: "
                    f"{type(exc).__name__}: {exc}"
                ) from exc
        return self._transport

    def execute(
        self,
        jobs: "Sequence[RunJob]",
        *,
        tracer: "Tracer | None" = None,
        policy: ExecutionPolicy | None = None,
        on_outcome: "Callable[[JobOutcome], None] | None" = None,
        stats: OutcomeStats | None = None,
        should_stop: "Callable[[], bool] | None" = None,
    ) -> list[JobOutcome]:
        from repro.distwork.protocol import job_to_dict, policy_to_dict

        policy = policy if policy is not None else ExecutionPolicy()
        jobs = list(jobs)
        if not jobs:
            return []
        transport = self._ensure_transport()
        self._batch += 1
        policy_wire = policy_to_dict(policy)
        index_for: dict[str, int] = {}
        for i, job in enumerate(jobs):
            tid = f"{self._nonce}-b{self._batch:03d}-{i:05d}"
            index_for[tid] = i
            transport.publish(
                {"id": tid, "job": job_to_dict(job), "policy": policy_wire, "attempt": 0}
            )
        if tracer is not None:
            tracer.event(
                "distwork.publish", jobs=len(jobs), endpoint=self.endpoint
            )
        outcomes: list[JobOutcome | None] = [None] * len(jobs)
        unsettled = set(index_for)
        while unsettled:
            if should_stop is not None and should_stop():
                transport.cancel_pending()
                raise ExecutionInterrupted(
                    f"execution stopped with {len(unsettled)} "
                    "distributed job(s) unsettled"
                )
            settled = transport.pump()
            if not settled:
                time.sleep(self.poll)
                continue
            for tid, message in settled:
                index = index_for.get(tid)
                if index is None or outcomes[index] is not None:
                    continue  # a stale id from an interrupted earlier batch
                outcome = self._settle(message, jobs[index], stats)
                outcomes[index] = outcome
                unsettled.discard(tid)
                if on_outcome is not None:
                    on_outcome(outcome)
                if not outcome.ok and policy.fail_fast:
                    transport.cancel_pending()
                    assert outcome.failure is not None
                    raise RunFailureError(outcome.job, outcome.failure)
        assert all(outcome is not None for outcome in outcomes)
        return outcomes  # type: ignore[return-value]

    def _settle(
        self,
        message: dict[str, Any],
        job: "RunJob",
        stats: OutcomeStats | None,
    ) -> JobOutcome:
        from repro.distwork.protocol import ProtocolError, outcome_from_dict
        from repro.experiments.cache import job_key

        wire = outcome_from_dict(message)
        # Identity check before re-anchoring: per-run task ids and the
        # coordinator's spool clearing make a payload/job mismatch
        # structurally impossible, so one here means a stale or damaged
        # message -- refuse loudly rather than settle a job with some
        # other job's result.
        if job_key(wire.job) != job_key(job):
            raise ProtocolError(
                "settled outcome carries a different job than the one "
                f"published for it (kernel {wire.job.kernel!r} vs "
                f"{job.kernel!r}): stale spool entry or damaged payload"
            )
        # Re-anchor on the locally-held job object: it round-trips
        # bit-identically, but the local instance is what the caller's
        # bookkeeping (memory cache keys, manifests) already holds.
        outcome = JobOutcome(
            job=job,
            result=wire.result,
            failure=wire.failure,
            attempts=wire.attempts,
            elapsed=wire.elapsed,
            source=wire.source,
        )
        if stats is not None:
            if outcome.ok:
                if outcome.source != "cache":
                    stats.executed += 1
                stats.retries += max(outcome.attempts - 1, 0)
            else:
                assert outcome.failure is not None
                stats.retries += max(outcome.attempts - 1, 0)
                stats.record_failure(outcome.failure)
        return outcome

    def close(self) -> None:
        """Stop workers at their next poll and release the transport."""
        transport = self._transport
        self._transport = None
        if transport is not None:
            transport.close()
