"""Figure 2: idealized list scheduling.

For each benchmark, list-schedule the monolithic machine's retired trace
onto the 2-, 4- and 8-cluster configurations and report CPI normalized to
the list-scheduled 1x8w configuration.  The paper's finding: all clustered
configurations average under ~2% slower, with bzip2, crafty and vpr the
outliers (convergent dataflow, Section 2.2).
"""

from __future__ import annotations

from repro.core.config import clustered_machine, monolithic_machine
from repro.experiments.figure import FigureData, annotate_failures
from repro.experiments.harness import Workbench
from repro.idealized.list_scheduler import list_schedule
from repro.specs import ExperimentSpec, MachineSpec, SweepSpec

# Registry name: the key this figure goes by in EXPERIMENTS / PLANS
# and on the CLI.
NAME = "figure2"

__all__ = ["NAME", "plan_figure2", "run_figure2", "spec_figure2"]

CLUSTER_COUNTS = (2, 4, 8)


def spec_figure2(forwarding_latency: int = 2) -> ExperimentSpec:
    """Figure 2's simulator runs as a declarative spec.

    Only the monolithic latency-probe runs are simulator jobs; the list
    scheduling itself happens in-process in :func:`run_figure2`.
    """
    return ExperimentSpec(
        name=NAME,
        figure=NAME,
        description="Idealized list scheduling (latency probes)",
        sweeps=(
            SweepSpec(machines=(MachineSpec(1),), policies=("dependence",)),
        ),
    )


def plan_figure2(bench: Workbench, forwarding_latency: int = 2):
    """The simulator runs Figure 2 needs (list scheduling stays in-process)."""
    return spec_figure2(forwarding_latency).jobs(bench)


def run_figure2(bench: Workbench, forwarding_latency: int = 2) -> FigureData:
    """Reproduce Figure 2 rows (one per benchmark, plus the average)."""
    bench.prefetch(plan_figure2(bench, forwarding_latency))
    figure = FigureData(
        figure_id="Figure 2",
        title="Idealized list scheduling (normalized CPI vs 1x8w)",
        headers=["benchmark", "2x4w", "4x2w", "8x1w"],
        notes=[
            "paper: all configurations average < 2% slower than monolithic; "
            "bzip2/crafty/vpr worst (convergent dataflow)",
        ],
    )
    sums = [0.0] * len(CLUSTER_COUNTS)
    ok_count = 0
    failed = []
    for spec in bench.benchmarks:
        out = bench.outcome(spec, monolithic_machine(), "dependence")
        if not out.ok:
            # The latency probe feeds the in-process list scheduler, so
            # its failure fails every cell of this benchmark's row.
            failed.append(out)
            label = out.failure.label()
            figure.add_row(spec.name, *([label] * len(CLUSTER_COUNTS)))
            continue
        prepared = bench.prepare(spec)
        mono = out.result
        latencies = [rec.latency for rec in mono.records]
        base = list_schedule(
            prepared.trace,
            prepared.dependences,
            prepared.mispredicted,
            monolithic_machine(),
            latencies,
        ).cpi
        normalized = []
        for i, count in enumerate(CLUSTER_COUNTS):
            config = clustered_machine(count, forwarding_latency=forwarding_latency)
            result = list_schedule(
                prepared.trace,
                prepared.dependences,
                prepared.mispredicted,
                config,
                latencies,
            )
            value = result.cpi / base
            normalized.append(value)
            sums[i] += value
        figure.add_row(spec.name, *normalized)
        ok_count += 1
    if ok_count:
        figure.add_row("AVE", *[s / ok_count for s in sums])
    annotate_failures(figure, failed)
    return figure
