"""Figure 2: idealized list scheduling.

For each benchmark, list-schedule the monolithic machine's retired trace
onto the 2-, 4- and 8-cluster configurations and report CPI normalized to
the list-scheduled 1x8w configuration.  The paper's finding: all clustered
configurations average under ~2% slower, with bzip2, crafty and vpr the
outliers (convergent dataflow, Section 2.2).
"""

from __future__ import annotations

from repro.core.config import clustered_machine, monolithic_machine
from repro.experiments.figure import FigureData
from repro.experiments.harness import Workbench
from repro.idealized.list_scheduler import list_schedule
from repro.specs import ExperimentSpec, MachineSpec, SweepSpec

# Registry name: the key this figure goes by in EXPERIMENTS / PLANS
# and on the CLI.
NAME = "figure2"

__all__ = ["NAME", "plan_figure2", "run_figure2", "spec_figure2"]

CLUSTER_COUNTS = (2, 4, 8)


def spec_figure2(forwarding_latency: int = 2) -> ExperimentSpec:
    """Figure 2's simulator runs as a declarative spec.

    Only the monolithic latency-probe runs are simulator jobs; the list
    scheduling itself happens in-process in :func:`run_figure2`.
    """
    return ExperimentSpec(
        name=NAME,
        figure=NAME,
        description="Idealized list scheduling (latency probes)",
        sweeps=(
            SweepSpec(machines=(MachineSpec(1),), policies=("dependence",)),
        ),
    )


def plan_figure2(bench: Workbench, forwarding_latency: int = 2):
    """The simulator runs Figure 2 needs (list scheduling stays in-process)."""
    return spec_figure2(forwarding_latency).jobs(bench)


def run_figure2(bench: Workbench, forwarding_latency: int = 2) -> FigureData:
    """Reproduce Figure 2 rows (one per benchmark, plus the average)."""
    bench.prefetch(plan_figure2(bench, forwarding_latency))
    figure = FigureData(
        figure_id="Figure 2",
        title="Idealized list scheduling (normalized CPI vs 1x8w)",
        headers=["benchmark", "2x4w", "4x2w", "8x1w"],
        notes=[
            "paper: all configurations average < 2% slower than monolithic; "
            "bzip2/crafty/vpr worst (convergent dataflow)",
        ],
    )
    sums = [0.0] * len(CLUSTER_COUNTS)
    for spec in bench.benchmarks:
        prepared = bench.prepare(spec)
        mono = bench.run(spec, monolithic_machine(), "dependence")
        latencies = [rec.latency for rec in mono.records]
        base = list_schedule(
            prepared.trace,
            prepared.dependences,
            prepared.mispredicted,
            monolithic_machine(),
            latencies,
        ).cpi
        normalized = []
        for i, count in enumerate(CLUSTER_COUNTS):
            config = clustered_machine(count, forwarding_latency=forwarding_latency)
            result = list_schedule(
                prepared.trace,
                prepared.dependences,
                prepared.mispredicted,
                config,
                latencies,
            )
            value = result.cpi / base
            normalized.append(value)
            sums[i] += value
        figure.add_row(spec.name, *normalized)
    count = len(bench.benchmarks)
    figure.add_row("AVE", *[s / count for s in sums])
    return figure
