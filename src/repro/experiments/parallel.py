"""Parallel experiment execution: picklable run jobs and worker fan-out.

Independent (kernel x machine-config x policy) simulations share nothing,
so they fan out over a :class:`concurrent.futures.ProcessPoolExecutor`.
A job is described by a small picklable :class:`RunJob` -- kernel *name*
rather than spec, so each worker regenerates the trace deterministically
from the seeded interpreter instead of shipping megabytes of trace over
the pipe.

Determinism contract: :func:`execute_job` is the *only* code path that
runs a simulation, for both serial (:meth:`Workbench.run
<repro.experiments.harness.Workbench.run>`) and parallel
(:meth:`Workbench.prefetch <repro.experiments.harness.Workbench.prefetch>`)
execution, and every stochastic component it touches (workload data, LoC
predictor) derives its stream from the job's explicit seed.  Serial and
parallel runs therefore produce bit-identical
:class:`~repro.core.results.SimulationResult`\\ s -- an invariant enforced
by ``tests/test_parallel_workbench.py``.  A *retried* job is equally
bit-identical to a first-try job: the attempt number feeds only the
fault-injection harness, never the simulation.

Fault tolerance (:func:`execute_outcomes`): instead of a bare
``pool.map`` that dies with the first worker, jobs run as individual
futures under an :class:`~repro.experiments.outcomes.ExecutionPolicy` --
per-attempt wall-time budgets (enforced by recycling the pool around a
hung worker), bounded retries with exponential backoff for transient
failure kinds, ``BrokenProcessPool`` recovery (respawn the pool,
re-enqueue only the jobs that were in flight, degrade to in-process
serial execution after repeated no-progress pool deaths) and clean
``KeyboardInterrupt`` shutdown (cancel pending futures, kill the pool's
children, re-raise).  Every job yields a typed
:class:`~repro.experiments.outcomes.JobOutcome` so sweeps keep going
past individual failures.
"""

from __future__ import annotations

import os
import time
import warnings
from contextlib import nullcontext
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterable, Sequence

from repro.core.config import MachineConfig
from repro.core.rename import Dependences, extract_dependences
from repro.core.results import SimulationResult
from repro.core.simulator import ClusteredSimulator
from repro.experiments.outcomes import (
    ExecutionInterrupted,
    ExecutionPolicy,
    GarbageResult,
    JobOutcome,
    OutcomeStats,
    classify_failure,
)
from repro.frontend.branch_predictor import (
    GshareBranchPredictor,
    annotate_mispredictions,
)
from repro.specs.policy import PolicySpec, policy_label, resolve_policy
from repro.vm.trace import DynamicInstruction
from repro.workloads.suite import get_kernel

if TYPE_CHECKING:  # pragma: no cover - avoid an import cycle at runtime
    from repro.telemetry.tracing import Tracer

# A generous bound: no sane run needs more cycles than ~64 per instruction.
_MAX_CPI_GUARD = 64


@dataclass(frozen=True)
class PreparedWorkload:
    """A trace with its configuration-independent annotations."""

    name: str
    trace: tuple[DynamicInstruction, ...]
    dependences: tuple[Dependences, ...]
    mispredicted: frozenset[int]


@dataclass(frozen=True)
class RunJob:
    """Everything needed to reproduce one simulation in any process.

    The fields are exactly the inputs the on-disk cache keys over (plus
    the cache's schema salt): two jobs that compare equal produce
    bit-identical results, and two jobs that differ in any field may not
    share a cache entry.
    """

    kernel: str
    instructions: int
    seed: int
    loc_mode: str
    config: MachineConfig
    # A preset name ("dependence", "focused", "l", "s", "p") or a frozen
    # PolicySpec for any other composition.  Both forms hash into the
    # cache via the policy's canonical spec payload, so the two spellings
    # of a preset share one cache entry.
    policy: "str | PolicySpec"
    collect_ilp: bool = False
    warm: bool = True
    # Which timing loop runs the job: "event" (the optimized simulator),
    # "reference" (the pre-optimization loop kept as a differential
    # oracle) or "batched" (the structure-of-arrays sweep engine, which
    # shares per-trace precompute across a grid and warms predictors with
    # one canonical training pass -- see repro.experiments.batch).
    # "event" and "reference" are bit-identical; "batched" differs only
    # in its warm-up methodology.  All three are distinct code paths, so
    # the cache keys over this field like any other.
    sim: str = "event"
    # Attach a telemetry payload to the result.  Metrics are observational
    # -- a metrics run's timing is bit-identical to a plain run -- but the
    # cached artifact differs (it carries the payload), so the cache keys
    # over this field too (only when True, to keep old hashes valid).
    metrics: bool = False


def default_workers() -> int:
    """Worker count when the caller does not specify one."""
    return os.cpu_count() or 1


def prepare_workload(kernel: str, instructions: int, seed: int) -> PreparedWorkload:
    """Generate the trace, dependences and mispredictions for one kernel.

    Deterministic in (kernel, instructions, seed): the trace comes from
    the seeded interpreter and the misprediction set from a freshly
    constructed gshare predictor.
    """
    spec = get_kernel(kernel)
    trace = tuple(spec.generate(instructions, seed=seed))
    dependences = tuple(extract_dependences(trace))
    mispredicted = frozenset(annotate_mispredictions(trace, GshareBranchPredictor()))
    return PreparedWorkload(spec.name, trace, dependences, mispredicted)


def execute_job(
    job: RunJob,
    prepared: PreparedWorkload | None = None,
    tracer: "Tracer | None" = None,
) -> SimulationResult:
    """Run one simulation, regenerating the trace unless ``prepared`` is given.

    Implements the paper's warm-up methodology: when the policy needs
    criticality predictors and ``job.warm`` is set, a throwaway run first
    trains the predictors online, then the measured run continues from the
    warm state with fresh policy objects.

    With ``job.metrics`` set, a :class:`~repro.telemetry.recorder.Recorder`
    observes the *measured* run (never the warm-up) and its payload lands
    on ``result.telemetry``.  With ``tracer`` given, the prep / warm-up /
    measure stages are timed as spans.
    """
    policy_spec = resolve_policy(job.policy)

    def span(name: str, **meta):
        if tracer is None:
            return nullcontext()
        return tracer.span(
            name, kernel=job.kernel, policy=policy_label(job.policy), **meta
        )

    if job.sim == "event":
        sim_cls = ClusteredSimulator
    elif job.sim == "reference":
        from repro.core.reference import ReferenceSimulator

        sim_cls = ReferenceSimulator
    elif job.sim == "batched":
        # The batched backend has its own warm-up and measurement shape;
        # it handles tracing spans itself and rejects metrics jobs.
        from repro.experiments.batch import execute_batched_job

        if prepared is None:
            with span("trace-prep"):
                prepared = prepare_workload(job.kernel, job.instructions, job.seed)
        return execute_batched_job(job, prepared, tracer=tracer)
    else:
        raise ValueError(
            f"unknown simulator {job.sim!r}; want 'event', 'reference' or 'batched'"
        )
    if prepared is None:
        with span("trace-prep"):
            prepared = prepare_workload(job.kernel, job.instructions, job.seed)
    max_cycles = _MAX_CPI_GUARD * len(prepared.trace) + 10_000
    steering, scheduler, needs_predictors = policy_spec.build()
    suite = None
    trainer = None
    if needs_predictors:
        suite, trainer = policy_spec.build_predictors(job.loc_mode, job.seed)
        if job.warm:
            warm_sim = sim_cls(
                job.config,
                steering=steering,
                scheduler=scheduler,
                predictors=suite,
                trainer=trainer,
                max_cycles=max_cycles,
            )
            with span("warmup"):
                warm_sim.run(
                    prepared.trace, prepared.dependences, prepared.mispredicted
                )
            # Fresh policy state for the measured run; predictors stay warm.
            steering, scheduler, __ = policy_spec.build()
    recorder = None
    sim_kwargs = {}
    if job.metrics:
        from repro.telemetry.recorder import Recorder

        recorder = Recorder()
        recorder.note_policies(steering, scheduler)
        if sim_cls is ClusteredSimulator:
            # The frozen reference loop takes no telemetry hook; its
            # metrics come entirely from the post-run record scan.
            sim_kwargs["telemetry"] = recorder
    sim = sim_cls(
        job.config,
        steering=steering,
        scheduler=scheduler,
        predictors=suite,
        trainer=trainer,
        collect_ilp=job.collect_ilp,
        max_cycles=max_cycles,
        **sim_kwargs,
    )
    with span("measure", sim=job.sim):
        result = sim.run(prepared.trace, prepared.dependences, prepared.mispredicted)
    if recorder is not None:
        result.telemetry = recorder.finalize(result)
    return result


def execute_job_traced(job: RunJob) -> tuple[SimulationResult, list[tuple]]:
    """Pool-worker entry point: run ``job`` and ship the spans home.

    A worker process cannot share the parent's :class:`Tracer`, so it
    times its stages locally and returns the exported span tuples for the
    parent to :meth:`~repro.telemetry.tracing.Tracer.merge`.
    """
    from repro.telemetry.tracing import Tracer

    tracer = Tracer()
    result = execute_job(job, tracer=tracer)
    return result, tracer.export()


# ---------------------------------------------------------------------------
# Fault injection plumbing (zero-cost unless activated)
# ---------------------------------------------------------------------------

# In-process hook installed by repro.testing.chaos.install(); pool workers
# are reached through the REPRO_CHAOS environment variable instead.
_chaos_hook: "Callable[[RunJob, int], str | None] | None" = None


def _chaos_action(job: RunJob, attempt: int) -> str | None:
    hook = _chaos_hook
    if hook is not None:
        return hook(job, attempt)
    if os.environ.get("REPRO_CHAOS"):
        from repro.testing.chaos import env_action

        return env_action(job, attempt)
    return None


def _apply_chaos(job: RunJob, attempt: int) -> bool:
    """Run any scheduled pre-run fault; True means garble the result."""
    action = _chaos_action(job, attempt)
    if action is None:
        return False
    if action == "garbage":
        return True
    from repro.testing import chaos

    config = _chaos_hook if isinstance(_chaos_hook, chaos.ChaosConfig) else None
    chaos.perform(action, config)
    return False


def _validate_result(job: RunJob, result: object) -> SimulationResult:
    """Reject a malformed worker return (``garbage`` failure, retryable)."""
    if not isinstance(result, SimulationResult):
        raise GarbageResult(
            f"worker returned {type(result).__name__} instead of a "
            f"SimulationResult for {job.kernel}"
        )
    if result.cycles <= 0 or result.instructions <= 0:
        raise GarbageResult(
            f"worker returned a malformed result for {job.kernel}: "
            f"cycles={result.cycles}, instructions={result.instructions}"
        )
    return result


def _run_attempt(
    job: RunJob,
    attempt: int,
    prepared: PreparedWorkload | None = None,
    tracer: "Tracer | None" = None,
) -> SimulationResult:
    """One attempt, with chaos applied around the deterministic run."""
    garble = _apply_chaos(job, attempt)
    result = execute_job(job, prepared, tracer=tracer)
    if garble:
        result.cycles = -abs(result.cycles)
    return _validate_result(job, result)


def _pool_attempt(payload: tuple) -> tuple[SimulationResult, list[tuple] | None]:
    """Pool-worker entry: ``(job, attempt, traced)`` -> (result, spans)."""
    job, attempt, traced = payload
    if not traced:
        return _run_attempt(job, attempt), None
    from repro.telemetry.tracing import Tracer

    tracer = Tracer()
    result = _run_attempt(job, attempt, tracer=tracer)
    return result, tracer.export()


# ---------------------------------------------------------------------------
# Resilient execution
# ---------------------------------------------------------------------------


def run_job_outcome(
    job: RunJob,
    prepared: PreparedWorkload | None = None,
    tracer: "Tracer | None" = None,
    policy: ExecutionPolicy | None = None,
    stats: OutcomeStats | None = None,
    start_attempt: int = 0,
    attempt_runner: "Callable[[RunJob, int], SimulationResult] | None" = None,
    should_stop: "Callable[[], bool] | None" = None,
) -> JobOutcome:
    """Run one job in-process with the policy's retry loop.

    Serial in-process execution cannot interrupt a running simulation,
    so ``job_timeout`` is not enforced here by default (the pool path
    recycles workers instead).  A caller that *can* enforce it supplies
    ``attempt_runner``, a ``(job, attempt) -> SimulationResult``
    substitute for the in-process attempt -- the distributed worker uses
    a killable child process when the policy sets a timeout.
    ``should_stop`` is polled before each attempt and raises
    :class:`~repro.experiments.outcomes.ExecutionInterrupted` (an
    ``attempt_runner`` may raise it mid-attempt too; it is never
    classified as a failure).  Everything else -- retry classification,
    backoff, typed outcomes -- behaves exactly as in the pool.
    """
    policy = policy if policy is not None else ExecutionPolicy()
    start = time.monotonic()
    attempt = start_attempt
    while True:
        if should_stop is not None and should_stop():
            raise ExecutionInterrupted(
                f"job abandoned before attempt {attempt + 1}"
            )
        attempt += 1
        try:
            if attempt_runner is not None:
                result = attempt_runner(job, attempt)
            else:
                result = _run_attempt(job, attempt, prepared, tracer)
        except ExecutionInterrupted:
            raise
        except Exception as exc:
            elapsed = time.monotonic() - start
            failure = classify_failure(exc, attempt, elapsed)
            if failure.retryable and attempt <= policy.max_retries:
                if stats is not None:
                    stats.retries += 1
                if tracer is not None:
                    tracer.event(
                        "job.retry",
                        kernel=job.kernel,
                        kind=failure.kind,
                        attempt=attempt,
                    )
                delay = policy.backoff(attempt)
                if delay > 0:
                    time.sleep(delay)
                continue
            if stats is not None:
                stats.record_failure(failure)
            return JobOutcome(
                job=job, failure=failure, attempts=attempt, elapsed=elapsed
            )
        if stats is not None:
            stats.executed += 1
        return JobOutcome(
            job=job,
            result=result,
            attempts=attempt,
            elapsed=time.monotonic() - start,
        )


def execute_outcomes(
    jobs: Sequence[RunJob],
    workers: int,
    tracer: "Tracer | None" = None,
    policy: ExecutionPolicy | None = None,
    on_outcome: "Callable[[JobOutcome], None] | None" = None,
    stats: OutcomeStats | None = None,
    should_stop: "Callable[[], bool] | None" = None,
) -> list[JobOutcome]:
    """Execute ``jobs`` fault-tolerantly; one typed outcome per job, in order.

    The resilient replacement for :func:`execute_jobs`: failures become
    :class:`~repro.experiments.outcomes.JobOutcome`\\ s instead of
    killing the sweep (unless ``policy.fail_fast``, which raises
    :class:`~repro.experiments.outcomes.RunFailureError` on the first
    final failure).  ``on_outcome`` fires as each job settles -- the
    workbench uses it to flush finished results to the persistent cache
    immediately, so an interrupt loses nothing.  On
    ``KeyboardInterrupt`` the pool's children are killed (no orphans)
    and the interrupt re-raised.

    ``should_stop`` is polled between jobs (and between scheduler
    rounds in pool mode); when it turns true the executor raises
    :class:`~repro.experiments.outcomes.ExecutionInterrupted` after
    tearing the pool down -- already-settled outcomes were delivered
    through ``on_outcome`` and are not lost.  The job service's
    graceful shutdown rides on this.

    Successful results are bit-identical to serial, fault-free execution
    regardless of retries, worker count or pool respawns.

    Since the :class:`~repro.experiments.executor.Executor` protocol
    landed this is a thin convenience over
    :class:`~repro.experiments.executor.LocalPoolExecutor` in pure
    per-job mode (no group batching -- this entry point never grouped).
    """
    from repro.experiments.executor import LocalPoolExecutor

    return LocalPoolExecutor(workers=workers, batch_groups=False).execute(
        jobs,
        tracer=tracer,
        policy=policy,
        on_outcome=on_outcome,
        stats=stats,
        should_stop=should_stop,
    )


def execute_jobs(
    jobs: Sequence[RunJob], workers: int, tracer: "Tracer | None" = None
) -> list[SimulationResult]:
    """Execute ``jobs`` and return results in job order (legacy strict form).

    A thin wrapper over :func:`execute_outcomes` with no retries and
    fail-fast semantics: the first failure raises
    :class:`~repro.experiments.outcomes.RunFailureError`.  Kept for
    callers that predate typed outcomes; new code should consume
    outcomes directly.
    """
    policy = ExecutionPolicy(max_retries=0, fail_fast=True)
    outcomes = execute_outcomes(jobs, workers, tracer=tracer, policy=policy)
    return [outcome.unwrap() for outcome in outcomes]


def dedupe_jobs(jobs: Iterable[RunJob]) -> list[RunJob]:
    """Drop duplicate jobs, preserving first-seen order."""
    seen: set[RunJob] = set()
    unique: list[RunJob] = []
    for job in jobs:
        if job not in seen:
            seen.add(job)
            unique.append(job)
    return unique


# The pool scheduler moved to repro.experiments.executor when the
# Executor protocol landed.  Deep reaches into the old internals keep
# working, via a module __getattr__ that warns once per name.
_MOVED = {
    "_JobState": "repro.experiments.executor",
    "_PoolScheduler": "repro.experiments.executor",
}


def __getattr__(name: str):
    module = _MOVED.get(name)
    if module is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    warnings.warn(
        f"{name!r} moved from 'repro.experiments.parallel' to {module!r}; "
        "prefer the Executor protocol (repro.api.LocalPoolExecutor) over "
        "scheduler internals",
        DeprecationWarning,
        stacklevel=2,
    )
    import importlib

    value = getattr(importlib.import_module(module), name)
    globals()[name] = value  # warn once per name, then resolve attribute-fast
    return value
