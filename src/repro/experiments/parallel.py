"""Parallel experiment execution: picklable run jobs and worker fan-out.

Independent (kernel x machine-config x policy) simulations share nothing,
so they fan out over a :class:`concurrent.futures.ProcessPoolExecutor`.
A job is described by a small picklable :class:`RunJob` -- kernel *name*
rather than spec, so each worker regenerates the trace deterministically
from the seeded interpreter instead of shipping megabytes of trace over
the pipe.

Determinism contract: :func:`execute_job` is the *only* code path that
runs a simulation, for both serial (:meth:`Workbench.run
<repro.experiments.harness.Workbench.run>`) and parallel
(:meth:`Workbench.prefetch <repro.experiments.harness.Workbench.prefetch>`)
execution, and every stochastic component it touches (workload data, LoC
predictor) derives its stream from the job's explicit seed.  Serial and
parallel runs therefore produce bit-identical
:class:`~repro.core.results.SimulationResult`\\ s -- an invariant enforced
by ``tests/test_parallel_workbench.py``.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from contextlib import nullcontext
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Sequence

from repro.core.config import MachineConfig
from repro.core.rename import Dependences, extract_dependences
from repro.core.results import SimulationResult
from repro.core.simulator import ClusteredSimulator
from repro.frontend.branch_predictor import (
    GshareBranchPredictor,
    annotate_mispredictions,
)
from repro.specs.policy import PolicySpec, policy_label, resolve_policy
from repro.vm.trace import DynamicInstruction
from repro.workloads.suite import get_kernel

if TYPE_CHECKING:  # pragma: no cover - avoid an import cycle at runtime
    from repro.telemetry.tracing import Tracer

# A generous bound: no sane run needs more cycles than ~64 per instruction.
_MAX_CPI_GUARD = 64


@dataclass(frozen=True)
class PreparedWorkload:
    """A trace with its configuration-independent annotations."""

    name: str
    trace: tuple[DynamicInstruction, ...]
    dependences: tuple[Dependences, ...]
    mispredicted: frozenset[int]


@dataclass(frozen=True)
class RunJob:
    """Everything needed to reproduce one simulation in any process.

    The fields are exactly the inputs the on-disk cache keys over (plus
    the cache's schema salt): two jobs that compare equal produce
    bit-identical results, and two jobs that differ in any field may not
    share a cache entry.
    """

    kernel: str
    instructions: int
    seed: int
    loc_mode: str
    config: MachineConfig
    # A preset name ("dependence", "focused", "l", "s", "p") or a frozen
    # PolicySpec for any other composition.  Both forms hash into the
    # cache via the policy's canonical spec payload, so the two spellings
    # of a preset share one cache entry.
    policy: "str | PolicySpec"
    collect_ilp: bool = False
    warm: bool = True
    # Which timing loop runs the job: "event" (the optimized simulator) or
    # "reference" (the pre-optimization loop kept as a differential oracle).
    # The two are bit-identical, but they are distinct code paths, so the
    # cache keys over this field like any other.
    sim: str = "event"
    # Attach a telemetry payload to the result.  Metrics are observational
    # -- a metrics run's timing is bit-identical to a plain run -- but the
    # cached artifact differs (it carries the payload), so the cache keys
    # over this field too (only when True, to keep old hashes valid).
    metrics: bool = False


def default_workers() -> int:
    """Worker count when the caller does not specify one."""
    return os.cpu_count() or 1


def prepare_workload(kernel: str, instructions: int, seed: int) -> PreparedWorkload:
    """Generate the trace, dependences and mispredictions for one kernel.

    Deterministic in (kernel, instructions, seed): the trace comes from
    the seeded interpreter and the misprediction set from a freshly
    constructed gshare predictor.
    """
    spec = get_kernel(kernel)
    trace = tuple(spec.generate(instructions, seed=seed))
    dependences = tuple(extract_dependences(trace))
    mispredicted = frozenset(annotate_mispredictions(trace, GshareBranchPredictor()))
    return PreparedWorkload(spec.name, trace, dependences, mispredicted)


def execute_job(
    job: RunJob,
    prepared: PreparedWorkload | None = None,
    tracer: "Tracer | None" = None,
) -> SimulationResult:
    """Run one simulation, regenerating the trace unless ``prepared`` is given.

    Implements the paper's warm-up methodology: when the policy needs
    criticality predictors and ``job.warm`` is set, a throwaway run first
    trains the predictors online, then the measured run continues from the
    warm state with fresh policy objects.

    With ``job.metrics`` set, a :class:`~repro.telemetry.recorder.Recorder`
    observes the *measured* run (never the warm-up) and its payload lands
    on ``result.telemetry``.  With ``tracer`` given, the prep / warm-up /
    measure stages are timed as spans.
    """
    policy_spec = resolve_policy(job.policy)

    def span(name: str, **meta):
        if tracer is None:
            return nullcontext()
        return tracer.span(
            name, kernel=job.kernel, policy=policy_label(job.policy), **meta
        )

    if job.sim == "event":
        sim_cls = ClusteredSimulator
    elif job.sim == "reference":
        from repro.core.reference import ReferenceSimulator

        sim_cls = ReferenceSimulator
    else:
        raise ValueError(f"unknown simulator {job.sim!r}; want 'event' or 'reference'")
    if prepared is None:
        with span("trace-prep"):
            prepared = prepare_workload(job.kernel, job.instructions, job.seed)
    max_cycles = _MAX_CPI_GUARD * len(prepared.trace) + 10_000
    steering, scheduler, needs_predictors = policy_spec.build()
    suite = None
    trainer = None
    if needs_predictors:
        suite, trainer = policy_spec.build_predictors(job.loc_mode, job.seed)
        if job.warm:
            warm_sim = sim_cls(
                job.config,
                steering=steering,
                scheduler=scheduler,
                predictors=suite,
                trainer=trainer,
                max_cycles=max_cycles,
            )
            with span("warmup"):
                warm_sim.run(
                    prepared.trace, prepared.dependences, prepared.mispredicted
                )
            # Fresh policy state for the measured run; predictors stay warm.
            steering, scheduler, __ = policy_spec.build()
    recorder = None
    sim_kwargs = {}
    if job.metrics:
        from repro.telemetry.recorder import Recorder

        recorder = Recorder()
        recorder.note_policies(steering, scheduler)
        if sim_cls is ClusteredSimulator:
            # The frozen reference loop takes no telemetry hook; its
            # metrics come entirely from the post-run record scan.
            sim_kwargs["telemetry"] = recorder
    sim = sim_cls(
        job.config,
        steering=steering,
        scheduler=scheduler,
        predictors=suite,
        trainer=trainer,
        collect_ilp=job.collect_ilp,
        max_cycles=max_cycles,
        **sim_kwargs,
    )
    with span("measure", sim=job.sim):
        result = sim.run(prepared.trace, prepared.dependences, prepared.mispredicted)
    if recorder is not None:
        result.telemetry = recorder.finalize(result)
    return result


def execute_job_traced(job: RunJob) -> tuple[SimulationResult, list[tuple]]:
    """Pool-worker entry point: run ``job`` and ship the spans home.

    A worker process cannot share the parent's :class:`Tracer`, so it
    times its stages locally and returns the exported span tuples for the
    parent to :meth:`~repro.telemetry.tracing.Tracer.merge`.
    """
    from repro.telemetry.tracing import Tracer

    tracer = Tracer()
    result = execute_job(job, tracer=tracer)
    return result, tracer.export()


def execute_jobs(
    jobs: Sequence[RunJob], workers: int, tracer: "Tracer | None" = None
) -> list[SimulationResult]:
    """Execute ``jobs`` and return results in job order.

    With ``workers <= 1`` (or a single job) everything runs in-process;
    otherwise jobs fan out over a process pool.  Either way the results
    are bit-identical -- each worker reconstructs its inputs from the
    job's explicit seed.  With ``tracer`` given, per-stage spans from
    every worker are merged into it (tagged ``worker=True``).
    """
    jobs = list(jobs)
    if workers <= 1 or len(jobs) <= 1:
        return [execute_job(job, tracer=tracer) for job in jobs]
    pool_size = min(workers, len(jobs))
    with ProcessPoolExecutor(max_workers=pool_size) as pool:
        if tracer is None:
            return list(pool.map(execute_job, jobs))
        results = []
        for result, spans in pool.map(execute_job_traced, jobs):
            tracer.merge(spans, worker=True)
            results.append(result)
        return results


def dedupe_jobs(jobs: Iterable[RunJob]) -> list[RunJob]:
    """Drop duplicate jobs, preserving first-seen order."""
    seen: set[RunJob] = set()
    unique: list[RunJob] = []
    for job in jobs:
        if job not in seen:
            seen.add(job)
            unique.append(job)
    return unique
