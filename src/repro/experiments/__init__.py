"""Experiment harness: one module per reproduced figure or in-text claim.

Two registries drive the CLI and the stable facade:

* :data:`EXPERIMENTS` -- name -> ``run_*`` function producing a
  :class:`~repro.experiments.figure.FigureData`;
* :data:`PLANS` -- name -> ``plan_*`` function enumerating the
  :class:`~repro.experiments.parallel.RunJob`\\ s the figure needs (what
  ``prefetch`` fans out, and what the ``--metrics`` run report walks).

Deep imports of harness/cache/parallel machinery through this package
(``from repro.experiments import Workbench`` etc.) are **deprecated** in
favour of :mod:`repro.api`; they still work, via a module ``__getattr__``
that warns once per name.  The defining modules
(:mod:`repro.experiments.harness`, :mod:`repro.experiments.cache`,
:mod:`repro.experiments.parallel`, :mod:`repro.experiments.aggregate`)
remain stable, warning-free import targets for internal code.
"""

import warnings

from repro.experiments.fig02 import plan_figure2, run_figure2, spec_figure2
from repro.experiments.fig04 import plan_figure4, run_figure4, spec_figure4
from repro.experiments.fig05 import plan_figure5, run_figure5, spec_figure5
from repro.experiments.fig06 import plan_figure6, run_figure6, spec_figure6
from repro.experiments.fig08 import plan_figure8, run_figure8, spec_figure8
from repro.experiments.fig14 import plan_figure14, run_figure14, spec_figure14
from repro.experiments.fig15 import plan_figure15, run_figure15, spec_figure15
from repro.experiments.figure import FigureData
from repro.experiments.hetero import (
    plan_hetero_sweep,
    run_hetero_sweep,
    spec_hetero_sweep,
)
from repro.experiments.intext import (
    plan_consumer_stats,
    plan_global_values,
    plan_loc_priority_study,
    run_consumer_stats,
    run_global_values,
    run_loc_priority_study,
    spec_consumer_stats,
    spec_global_values,
    spec_loc_priority_study,
)

# Registry used by examples, the CLI and the benchmark harness.
EXPERIMENTS = {
    "figure2": run_figure2,
    "figure4": run_figure4,
    "figure5": run_figure5,
    "figure6": run_figure6,
    "figure8": run_figure8,
    "figure14": run_figure14,
    "figure15": run_figure15,
    "hetero_sweep": run_hetero_sweep,
    "global_values": run_global_values,
    "loc_priority": run_loc_priority_study,
    "consumer_stats": run_consumer_stats,
}

# The declarative form of each experiment: name -> ``spec_*`` builder
# returning the :class:`~repro.specs.ExperimentSpec` whose jobs the
# figure's plan enumerates.  ``repro specs show <name>`` renders these,
# and the checked-in ``specs/*.json`` files serialize them.
SPECS = {
    "figure2": spec_figure2,
    "figure4": spec_figure4,
    "figure5": spec_figure5,
    "figure6": spec_figure6,
    "figure8": spec_figure8,
    "figure14": spec_figure14,
    "figure15": spec_figure15,
    "hetero_sweep": spec_hetero_sweep,
    "global_values": spec_global_values,
    "loc_priority": spec_loc_priority_study,
    "consumer_stats": spec_consumer_stats,
}

# The matching run plans: every entry takes a Workbench and returns the
# RunJobs the experiment will consume (figure2's list scheduling and some
# in-text analyses also do in-process work the plan does not cover).
PLANS = {
    "figure2": plan_figure2,
    "figure4": plan_figure4,
    "figure5": plan_figure5,
    "figure6": plan_figure6,
    "figure8": plan_figure8,
    "figure14": plan_figure14,
    "figure15": plan_figure15,
    "hetero_sweep": plan_hetero_sweep,
    "global_values": plan_global_values,
    "loc_priority": plan_loc_priority_study,
    "consumer_stats": plan_consumer_stats,
}

# Names that used to be re-exported eagerly here and now live behind the
# stable facade.  Maps the public name to its defining module; resolved
# lazily with a DeprecationWarning so old deep imports keep working.
_DEPRECATED = {
    "DEFAULT_INSTRUCTIONS": "repro.experiments.harness",
    "POLICY_NAMES": "repro.experiments.harness",
    "ParallelWorkbench": "repro.experiments.harness",
    "PreparedWorkload": "repro.experiments.parallel",
    "Workbench": "repro.experiments.harness",
    "build_policy": "repro.experiments.harness",
    "RunCache": "repro.experiments.cache",
    "RunJob": "repro.experiments.parallel",
    "default_cache_dir": "repro.experiments.cache",
    "execute_job": "repro.experiments.parallel",
    "execute_jobs": "repro.experiments.parallel",
    "job_key": "repro.experiments.cache",
    "average_figures": "repro.experiments.aggregate",
    "run_seeded": "repro.experiments.aggregate",
}


def __getattr__(name: str):
    module = _DEPRECATED.get(name)
    if module is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    warnings.warn(
        f"importing {name!r} from 'repro.experiments' is deprecated; "
        f"import it from 'repro.api' (stable facade) or {module!r}",
        DeprecationWarning,
        stacklevel=2,
    )
    import importlib

    value = getattr(importlib.import_module(module), name)
    globals()[name] = value  # warn once per name, then resolve attribute-fast
    return value


__all__ = [
    "EXPERIMENTS",
    "FigureData",
    "PLANS",
    "SPECS",
    "plan_consumer_stats",
    "plan_figure14",
    "plan_figure15",
    "plan_figure2",
    "plan_figure4",
    "plan_figure5",
    "plan_figure6",
    "plan_figure8",
    "plan_global_values",
    "plan_hetero_sweep",
    "plan_loc_priority_study",
    "run_consumer_stats",
    "run_figure14",
    "run_figure15",
    "run_figure2",
    "run_figure4",
    "run_figure5",
    "run_figure6",
    "run_figure8",
    "run_global_values",
    "run_hetero_sweep",
    "run_loc_priority_study",
]
