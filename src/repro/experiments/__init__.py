"""Experiment harness: one module per reproduced figure or in-text claim."""

from repro.experiments.aggregate import average_figures, run_seeded
from repro.experiments.cache import RunCache, default_cache_dir, job_key
from repro.experiments.fig02 import run_figure2
from repro.experiments.fig04 import run_figure4
from repro.experiments.fig05 import run_figure5
from repro.experiments.fig06 import run_figure6
from repro.experiments.fig08 import run_figure8
from repro.experiments.fig14 import run_figure14
from repro.experiments.fig15 import run_figure15
from repro.experiments.figure import FigureData
from repro.experiments.harness import (
    DEFAULT_INSTRUCTIONS,
    POLICY_NAMES,
    ParallelWorkbench,
    PreparedWorkload,
    Workbench,
    build_policy,
)
from repro.experiments.parallel import RunJob, execute_job, execute_jobs
from repro.experiments.intext import (
    run_consumer_stats,
    run_global_values,
    run_loc_priority_study,
)

# Registry used by examples and the benchmark harness.
EXPERIMENTS = {
    "figure2": run_figure2,
    "figure4": run_figure4,
    "figure5": run_figure5,
    "figure6": run_figure6,
    "figure8": run_figure8,
    "figure14": run_figure14,
    "figure15": run_figure15,
    "global_values": run_global_values,
    "loc_priority": run_loc_priority_study,
    "consumer_stats": run_consumer_stats,
}

__all__ = [
    "DEFAULT_INSTRUCTIONS",
    "average_figures",
    "run_seeded",
    "EXPERIMENTS",
    "FigureData",
    "POLICY_NAMES",
    "ParallelWorkbench",
    "PreparedWorkload",
    "RunCache",
    "RunJob",
    "Workbench",
    "build_policy",
    "default_cache_dir",
    "execute_job",
    "execute_jobs",
    "job_key",
    "run_consumer_stats",
    "run_figure14",
    "run_figure15",
    "run_figure2",
    "run_figure4",
    "run_figure5",
    "run_figure6",
    "run_figure8",
    "run_global_values",
    "run_loc_priority_study",
]
