"""In-text quantitative claims (Sections 2.1, 4 and 6).

Three experiments the paper reports in prose rather than figures:

* **Section 2.1** -- the proposed policies incur 0.12 / 0.2 / 0.25 global
  values per instruction on the 2-/4-/8-cluster machines, slightly below
  the focused baseline.
* **Section 4** -- replacing the idealized scheduler's exact criticality
  with LoC-only priorities costs little (to ~1.5% / 2.7% loss on 4/8
  clusters), while binary-only priorities cost much more (5% / 9.8%).
* **Section 6** -- ~80% of values have a statically unique most-critical
  consumer; consumer criticality is bimodal; >50% of critical
  multi-consumer values do not have the most critical consumer first.
"""

from __future__ import annotations

from repro.analysis.consumers import consumer_criticality_stats, exact_loc_by_pc
from repro.core.config import monolithic_machine
from repro.criticality.critical_path import critical_flags
from repro.experiments.figure import FigureData, annotate_failures
from repro.experiments.harness import Workbench
from repro.idealized.list_scheduler import list_schedule
from repro.specs import ExperimentSpec, MachineSpec, SweepSpec

CLUSTER_COUNTS = (2, 4, 8)
_BEST_POLICY = {2: "s", 4: "s", 8: "p"}


def spec_global_values(forwarding_latency: int = 2) -> ExperimentSpec:
    """The Section 2.1 sweep as a declarative spec.

    Job order is workload-major like every spec (the pre-spec plan was
    cluster-major); the job *set* is unchanged, so caches stay warm.
    """
    return ExperimentSpec(
        name="global_values",
        figure="global_values",
        description="Global values per instruction, proposed vs focused",
        sweeps=tuple(
            SweepSpec(
                machines=(MachineSpec(count, forwarding_latency=forwarding_latency),),
                policies=(_BEST_POLICY[count], "focused"),
            )
            for count in CLUSTER_COUNTS
        ),
    )


def plan_global_values(bench: Workbench, forwarding_latency: int = 2):
    """The runs the Section 2.1 claim needs, for parallel prefetch."""
    return spec_global_values(forwarding_latency).jobs(bench)


def run_global_values(bench: Workbench, forwarding_latency: int = 2) -> FigureData:
    """Section 2.1: cross-cluster values per instruction, ours vs focused."""
    bench.prefetch(plan_global_values(bench, forwarding_latency))
    figure = FigureData(
        figure_id="Section 2.1",
        title="Global values per instruction (suite average)",
        headers=["clusters", "proposed", "focused_baseline"],
        notes=["paper: 0.12 / 0.2 / 0.25, slightly below the baseline policy"],
    )
    failed = []
    for count in CLUSTER_COUNTS:
        config = bench.clustered(count, forwarding_latency)
        cells = []
        for policy in (_BEST_POLICY[count], "focused"):
            total, n = 0.0, 0
            for s in bench.benchmarks:
                out = bench.outcome(s, config, policy)
                if not out.ok:
                    failed.append(out)
                    continue
                total += out.result.global_values_per_instruction
                n += 1
            cells.append(total / n if n else float("nan"))
        figure.add_row(count, *cells)
    annotate_failures(figure, failed)
    return figure


def spec_loc_priority_study(forwarding_latency: int = 2) -> ExperimentSpec:
    """The Section 4 study's simulator probes as a declarative spec."""
    return ExperimentSpec(
        name="loc_priority",
        figure="loc_priority",
        description="Idealized scheduler priority ablation (latency probes)",
        sweeps=(
            SweepSpec(machines=(MachineSpec(1),), policies=("focused",)),
        ),
    )


def plan_loc_priority_study(bench: Workbench, forwarding_latency: int = 2):
    """The simulator runs the Section 4 study needs (list scheduling is local)."""
    return spec_loc_priority_study(forwarding_latency).jobs(bench)


def run_loc_priority_study(bench: Workbench, forwarding_latency: int = 2) -> FigureData:
    """Section 4: idealized scheduling with exact vs LoC vs binary priority."""
    bench.prefetch(plan_loc_priority_study(bench, forwarding_latency))
    figure = FigureData(
        figure_id="Section 4",
        title="Idealized scheduler priority ablation (avg normalized CPI)",
        headers=["priority", "2x4w", "4x2w", "8x1w"],
        notes=[
            "paper: LoC-only shifts losses to ~0.5/1.5/2.7%; binary-only "
            "to 1.5/5/9.8%",
        ],
    )
    sums = {mode: [0.0] * len(CLUSTER_COUNTS) for mode in ("oracle", "loc", "binary")}
    ok_count = 0
    failed = []
    for spec in bench.benchmarks:
        out = bench.outcome(spec, monolithic_machine(), "focused")
        if not out.ok:
            # The probe feeds every list-scheduled variant for this
            # benchmark; drop it from the suite averages.
            failed.append(out)
            continue
        prepared = bench.prepare(spec)
        mono = out.result
        latencies = [rec.latency for rec in mono.records]
        flags = critical_flags(mono.records)
        loc_table = exact_loc_by_pc(mono.records, flags)
        binary_table = {pc: value >= 1 / 8 for pc, value in loc_table.items()}
        base = list_schedule(
            prepared.trace,
            prepared.dependences,
            prepared.mispredicted,
            monolithic_machine(),
            latencies,
        ).cpi
        for mode in sums:
            for i, count in enumerate(CLUSTER_COUNTS):
                config = bench.clustered(count, forwarding_latency)
                result = list_schedule(
                    prepared.trace,
                    prepared.dependences,
                    prepared.mispredicted,
                    config,
                    latencies,
                    priority_mode=mode,
                    loc_table=loc_table,
                    binary_table=binary_table,
                )
                sums[mode][i] += result.cpi / base
        ok_count += 1
    for mode in ("oracle", "loc", "binary"):
        figure.add_row(
            mode,
            *[s / ok_count if ok_count else float("nan") for s in sums[mode]],
        )
    annotate_failures(figure, failed)
    return figure


def spec_consumer_stats() -> ExperimentSpec:
    """The Section 6 monolithic probe runs as a declarative spec."""
    return ExperimentSpec(
        name="consumer_stats",
        figure="consumer_stats",
        description="Most-critical-consumer statistics (monolithic probes)",
        sweeps=(
            SweepSpec(machines=(MachineSpec(1),), policies=("focused",)),
        ),
    )


def plan_consumer_stats(bench: Workbench):
    """The runs the Section 6 claim needs, for parallel prefetch."""
    return spec_consumer_stats().jobs(bench)


def run_consumer_stats(bench: Workbench) -> FigureData:
    """Section 6: producer/consumer criticality structure."""
    bench.prefetch(plan_consumer_stats(bench))
    figure = FigureData(
        figure_id="Section 6",
        title="Most-critical-consumer statistics (monolithic runs)",
        headers=[
            "benchmark",
            "statically_unique",
            "bimodal_consumers",
            "most_critical_not_first",
        ],
        notes=[
            "paper: ~80% statically unique; bimodal consumer criticality; "
            ">50% of critical multi-consumer values not first-in-fetch-order",
        ],
    )
    totals = [0.0, 0.0, 0.0]
    ok_count = 0
    failed = []
    for spec in bench.benchmarks:
        out = bench.outcome(spec, monolithic_machine(), "focused")
        if not out.ok:
            failed.append(out)
            figure.add_row(spec.name, *([out.failure.label()] * 3))
            continue
        stats = consumer_criticality_stats(out.result.records)
        values = (
            stats.statically_unique_fraction,
            stats.bimodal_fraction,
            stats.most_critical_not_first_fraction,
        )
        figure.add_row(spec.name, *values)
        for i, value in enumerate(values):
            totals[i] += value
        ok_count += 1
    if ok_count:
        figure.add_row("AVE", *[t / ok_count for t in totals])
    annotate_failures(figure, failed)
    return figure
