"""Figure 14: the proposed policies, stacked.

For each benchmark and each cluster count, four bars (three for the wide
clusters): Fields' focused policy, + LoC scheduling (l), + stall-over-steer
(s), and + proactive load-balancing (p, 8-cluster machine only, as in the
paper -- "our implementation does not benefit the wider clusters").  All
normalized to a monolithic machine using LoC-based scheduling, with the
critical-path forwarding-delay and contention components reported alongside
(Figure 14 overlays them on each bar).

Headline claim: the policies reduce the clustering penalty by 42%, 57% and
66% for the 2-, 4- and 8-cluster machines.
"""

from __future__ import annotations

import math

from repro.analysis.breakdown import cpi_breakdown
from repro.core.config import monolithic_machine
from repro.experiments.figure import FigureData, annotate_failures
from repro.experiments.harness import Workbench
from repro.specs import ExperimentSpec, MachineSpec, SweepSpec

# Registry name: the key this figure goes by in EXPERIMENTS / PLANS
# and on the CLI.
NAME = "figure14"

__all__ = ["NAME", "plan_figure14", "run_figure14", "spec_figure14"]

BARS_BY_CLUSTER = {2: ("focused", "l", "s"), 4: ("focused", "l", "s"), 8: ("focused", "l", "s", "p")}


def spec_figure14(forwarding_latency: int = 2) -> ExperimentSpec:
    """Figure 14's sweep as a declarative spec.

    The checked-in ``specs/figure14.json`` is this spec serialized; a
    test keeps the two in lock-step.
    """
    return ExperimentSpec(
        name=NAME,
        figure=NAME,
        description="Proposed policies, stacked, vs 1x8w with LoC scheduling",
        sweeps=(
            SweepSpec(machines=(MachineSpec(1),), policies=("l",)),
            *(
                SweepSpec(
                    machines=(
                        MachineSpec(count, forwarding_latency=forwarding_latency),
                    ),
                    policies=policies,
                )
                for count, policies in BARS_BY_CLUSTER.items()
            ),
        ),
    )


def plan_figure14(bench: Workbench, forwarding_latency: int = 2):
    """The runs Figure 14 needs, for parallel prefetch."""
    return spec_figure14(forwarding_latency).jobs(bench)


def run_figure14(bench: Workbench, forwarding_latency: int = 2) -> FigureData:
    """Reproduce Figure 14: one row per (benchmark, clusters, policy)."""
    bench.prefetch(plan_figure14(bench, forwarding_latency))
    figure = FigureData(
        figure_id="Figure 14",
        title="Proposed policies (normalized CPI vs 1x8w with LoC scheduling)",
        headers=[
            "benchmark",
            "clusters",
            "policy",
            "norm_cpi",
            "fwd_delay",
            "contention",
        ],
        notes=[
            "paper: penalties reduced 42%/57%/66% for 2/4/8 clusters; "
            "proactive load-balancing applied to the 8-cluster machine only",
        ],
    )
    sums: dict[tuple[int, str], float] = {}
    counts: dict[tuple[int, str], int] = {}
    failed = []
    for spec in bench.benchmarks:
        base_out = bench.outcome(spec, monolithic_machine(), "l")
        if not base_out.ok:
            # Everything is normalized to this run; fail the benchmark's
            # whole row block.
            failed.append(base_out)
            cell = base_out.failure.label()
            for cluster_count, policies in BARS_BY_CLUSTER.items():
                for policy in policies:
                    figure.add_row(
                        spec.name, cluster_count, policy, cell, cell, cell
                    )
            continue
        base_cpi = base_out.result.cpi
        for cluster_count, policies in BARS_BY_CLUSTER.items():
            config = bench.clustered(cluster_count, forwarding_latency)
            for policy in policies:
                out = bench.outcome(spec, config, policy)
                if not out.ok:
                    failed.append(out)
                    cell = out.failure.label()
                    figure.add_row(
                        spec.name, cluster_count, policy, cell, cell, cell
                    )
                    continue
                result = out.result
                segments = cpi_breakdown(result).normalized(base_cpi)
                norm = result.cpi / base_cpi
                figure.add_row(
                    spec.name,
                    cluster_count,
                    policy,
                    norm,
                    segments["fwd_delay"],
                    segments["contention"],
                )
                key = (cluster_count, policy)
                sums[key] = sums.get(key, 0.0) + norm
                counts[key] = counts.get(key, 0) + 1
    for cluster_count, policies in BARS_BY_CLUSTER.items():
        for policy in policies:
            key = (cluster_count, policy)
            n = counts.get(key, 0)
            figure.add_row(
                "AVE",
                cluster_count,
                policy,
                sums.get(key, 0.0) / n if n else float("nan"),
                float("nan"),
                float("nan"),
            )
    _append_penalty_reductions(figure)
    annotate_failures(figure, failed)
    return figure


def _append_penalty_reductions(figure: FigureData) -> None:
    """Summarize the headline 42/57/66% penalty-reduction claim."""
    for cluster_count, policies in BARS_BY_CLUSTER.items():
        ave_rows = [
            row for row in figure.rows if row[0] == "AVE" and row[1] == cluster_count
        ]
        focused = next((r[3] for r in ave_rows if r[2] == "focused"), None)
        best = next((r[3] for r in ave_rows if r[2] == policies[-1]), None)
        if (
            not isinstance(focused, float)
            or not isinstance(best, float)
            or math.isnan(focused)
            or math.isnan(best)
        ):
            # A partial (failure-degraded) table: no average to summarize
            # for this cluster count.
            continue
        focused_penalty = focused - 1.0
        best_penalty = best - 1.0
        if focused_penalty > 0:
            reduction = 100.0 * (focused_penalty - best_penalty) / focused_penalty
            figure.notes.append(
                f"{cluster_count} clusters: penalty {focused_penalty:.3f} -> "
                f"{best_penalty:.3f} ({reduction:.0f}% reduction; paper: "
                f"{ {2: 42, 4: 57, 8: 66}[cluster_count] }%)"
            )
