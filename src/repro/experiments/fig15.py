"""Figure 15: achieved vs available ILP on the 8x1w machine.

Available ILP is the per-cycle count of ready instructions across all
clusters; achieved ILP is the mean number issued on cycles with that
availability, averaged over the whole suite.  The paper's shape: achieved
ILP tracks available ILP at low availability, sags when availability is
near the aggregate width (8) -- every cluster must hold exactly one ready
instruction, the hardest balance to hit -- and recovers toward the width as
availability grows far beyond it.
"""

from __future__ import annotations

from repro.analysis.ilp import merge_profiles
from repro.experiments.figure import FigureData, annotate_failures
from repro.experiments.harness import Workbench
from repro.specs import ExperimentSpec, MachineSpec, SweepSpec

# Registry name: the key this figure goes by in EXPERIMENTS / PLANS
# and on the CLI.
NAME = "figure15"

__all__ = ["NAME", "plan_figure15", "run_figure15", "spec_figure15"]


def spec_figure15(policy: str = "p", forwarding_latency: int = 2) -> ExperimentSpec:
    """Figure 15's ILP-profiled runs as a declarative spec."""
    return ExperimentSpec(
        name=NAME,
        figure=NAME,
        description="Achieved vs available ILP on the 8x1w machine",
        sweeps=(
            SweepSpec(
                machines=(MachineSpec(8, forwarding_latency=forwarding_latency),),
                policies=(policy,),
                collect_ilp=True,
            ),
        ),
    )


def plan_figure15(
    bench: Workbench, policy: str = "p", forwarding_latency: int = 2
):
    """The runs Figure 15 needs, for parallel prefetch."""
    return spec_figure15(policy, forwarding_latency).jobs(bench)


def run_figure15(
    bench: Workbench,
    policy: str = "p",
    max_available: int = 20,
    forwarding_latency: int = 2,
) -> FigureData:
    """Reproduce Figure 15 for the 8x1w machine under ``policy``."""
    bench.prefetch(plan_figure15(bench, policy, forwarding_latency))
    profiles = []
    failed = []
    config = bench.clustered(8, forwarding_latency)
    for spec in bench.benchmarks:
        out = bench.outcome(spec, config, policy, collect_ilp=True)
        if not out.ok:
            # The figure is a suite-wide aggregate, so a failed run drops
            # out of the merge (and is reported in the notes).
            failed.append(out)
            continue
        profiles.append(out.result.ilp_profile)

    figure = FigureData(
        figure_id="Figure 15",
        title=f"Achieved vs available ILP, 8x1w machine (policy {policy})",
        headers=["available_ilp", "achieved_ilp", "cycles"],
        notes=[
            "paper: achieved ILP sags when available ILP is close to the "
            "total issue width (8) and recovers at high availability",
        ],
    )
    if profiles:
        merged = merge_profiles(profiles)
        for available, achieved in merged.series(max_available):
            figure.add_row(available, achieved, merged.cycle_count[available])
    annotate_failures(figure, failed)
    return figure
