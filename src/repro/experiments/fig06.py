"""Figure 6: where the lost cycles went.

(a) Contention-stall events on the critical path, split by whether the
stalled instruction was predicted critical -- the paper finds up to
two-thirds hit correctly-predicted-critical instructions, so the problem is
prioritizing *among* criticals, not prediction accuracy.

(b) Forwarding-delay events on the critical path, by steering cause -- the
paper finds load-balance steering dominates, except in the
convergent-dataflow benchmarks (bzip2, crafty) where dyadics do.

Event counts are reported per 10k instructions so benchmarks of different
trace lengths are comparable (the paper plots absolute millions over 100M
instructions).
"""

from __future__ import annotations

from repro.analysis.events import classify_lost_cycle_events
from repro.experiments.figure import FigureData, annotate_failures
from repro.experiments.harness import Workbench
from repro.specs import ExperimentSpec, MachineSpec, SweepSpec

# Registry name: the key this figure goes by in EXPERIMENTS / PLANS
# and on the CLI.
NAME = "figure6"

__all__ = ["NAME", "plan_figure6", "run_figure6", "spec_figure6"]

CLUSTER_COUNTS = (2, 4, 8)


def spec_figure6(forwarding_latency: int = 2) -> ExperimentSpec:
    """Figure 6's sweep as a declarative spec."""
    return ExperimentSpec(
        name=NAME,
        figure=NAME,
        description="Critical-path stall events under focused steering",
        sweeps=(
            SweepSpec(
                machines=tuple(
                    MachineSpec(count, forwarding_latency=forwarding_latency)
                    for count in CLUSTER_COUNTS
                ),
                policies=("focused",),
            ),
        ),
    )


def plan_figure6(bench: Workbench, forwarding_latency: int = 2):
    """The runs Figure 6 needs, for parallel prefetch."""
    return spec_figure6(forwarding_latency).jobs(bench)


def run_figure6(bench: Workbench, forwarding_latency: int = 2) -> FigureData:
    """Reproduce Figures 6(a) and 6(b) for the focused policy."""
    bench.prefetch(plan_figure6(bench, forwarding_latency))
    figure = FigureData(
        figure_id="Figure 6",
        title="Critical-path stall events per 10k instructions (focused)",
        headers=[
            "benchmark",
            "clusters",
            "contention:critical",
            "contention:other",
            "fwd:load_bal",
            "fwd:dyadic",
            "fwd:other",
        ],
        notes=[
            "paper 6(a): contention events predominantly hit "
            "predicted-critical instructions",
            "paper 6(b): load-balance steering dominates forwarding delay; "
            "dyadics dominate only in bzip2/crafty",
        ],
    )
    totals = {c: [0.0] * 5 for c in CLUSTER_COUNTS}
    ok_counts = {c: 0 for c in CLUSTER_COUNTS}
    failed = []
    for spec in bench.benchmarks:
        for count in CLUSTER_COUNTS:
            out = bench.outcome(
                spec, bench.clustered(count, forwarding_latency), "focused"
            )
            if not out.ok:
                failed.append(out)
                figure.add_row(spec.name, count, *([out.failure.label()] * 5))
                continue
            result = out.result
            contention, forwarding = classify_lost_cycle_events(result.records)
            scale = 10_000 / len(result.records)
            values = [
                contention.predicted_critical * scale,
                contention.other * scale,
                forwarding.load_balance * scale,
                forwarding.dyadic * scale,
                forwarding.other * scale,
            ]
            figure.add_row(spec.name, count, *values)
            for i, value in enumerate(values):
                totals[count][i] += value
            ok_counts[count] += 1
    for count in CLUSTER_COUNTS:
        n = ok_counts[count]
        figure.add_row(
            "AVE", count, *[v / n if n else float("nan") for v in totals[count]]
        )
    annotate_failures(figure, failed)
    return figure
