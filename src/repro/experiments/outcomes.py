"""Typed per-job execution outcomes for fault-tolerant sweeps.

A sweep that loses 131 finished simulations to one worker crash -- or
silently averages a non-converged run into a figure -- corrupts the
reproduction.  This module gives the execution layer a vocabulary for
*partial* success: every job the resilient executor touches produces a
:class:`JobOutcome`, which either carries the bit-identical
:class:`~repro.core.results.SimulationResult` or a typed
:class:`RunFailure` describing what went wrong (error class, attempts,
elapsed wall time, traceback digest).  Figure renderers turn failures
into explicit ``FAILED``/``TIMEOUT`` cells instead of dying, and the
sweep manifest serializes outcomes for checkpoint/resume.

Failure kinds (:class:`RunFailure.kind`):

* ``crash``    -- the worker process died (``BrokenProcessPool``); retried.
* ``timeout``  -- the job exceeded the configured wall-time budget; retried.
* ``garbage``  -- the worker returned a malformed result; retried.
* ``injected`` -- a chaos-harness fault (:mod:`repro.testing.chaos`); retried.
* ``diverged`` -- the simulation exhausted its cycle guard
  (:class:`~repro.core.simulator.SimulationDiverged`); **not** retried,
  the simulator is deterministic and would diverge again.
* ``error``    -- any other in-process exception; **not** retried for the
  same reason.

Retry behaviour, timeouts and the fail-fast switch live in
:class:`ExecutionPolicy`, threaded from the CLI / spec files / Workbench
down to :func:`repro.experiments.parallel.execute_outcomes`.
"""

from __future__ import annotations

import hashlib
import traceback
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.results import SimulationResult
    from repro.experiments.parallel import RunJob

__all__ = [
    "ExecutionInterrupted",
    "ExecutionPolicy",
    "ExecutorUnavailable",
    "GarbageResult",
    "JobOutcome",
    "OutcomeStats",
    "RETRYABLE_KINDS",
    "RunFailure",
    "RunFailureError",
    "classify_failure",
    "traceback_digest",
]

# Kinds the executor retries: transient by construction (a killed worker,
# a hang, an injected fault, a garbled return).  Deterministic in-process
# exceptions ("error", "diverged") are final on the first attempt -- the
# simulator would do the same thing again.
RETRYABLE_KINDS = frozenset({"crash", "timeout", "garbage", "injected"})


@dataclass(frozen=True)
class ExecutionPolicy:
    """How hard the executor tries before declaring a job failed.

    ``max_retries`` bounds *re*-attempts: a job runs at most
    ``max_retries + 1`` times.  ``job_timeout`` is wall-clock seconds per
    attempt, enforced in pool mode by recycling the worker pool (a hung
    worker cannot be cancelled politely); serial in-process execution
    cannot interrupt a running simulation, so timeouts are only checked
    between attempts there.  ``backoff_base * backoff_factor**(attempt-1)``
    seconds separate retries (0 disables waiting -- the default keeps
    sweeps fast; raise it when retrying flaky shared infrastructure).
    After ``max_pool_respawns`` consecutive pool deaths with zero
    completed jobs in between, the executor degrades to in-process serial
    execution rather than thrashing.
    """

    max_retries: int = 2
    job_timeout: float | None = None
    fail_fast: bool = False
    backoff_base: float = 0.0
    backoff_factor: float = 2.0
    max_pool_respawns: int = 3

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.job_timeout is not None and self.job_timeout <= 0:
            raise ValueError("job_timeout must be positive (or None)")
        if self.backoff_base < 0:
            raise ValueError("backoff_base must be >= 0")
        if self.max_pool_respawns < 0:
            raise ValueError("max_pool_respawns must be >= 0")

    def backoff(self, attempt: int) -> float:
        """Seconds to wait before re-running after failed attempt ``attempt``."""
        if self.backoff_base <= 0:
            return 0.0
        return self.backoff_base * self.backoff_factor ** max(attempt - 1, 0)


def traceback_digest(exc: BaseException) -> str:
    """A short stable digest of an exception's traceback.

    Frame filenames/lines only (no memory addresses, no locals), so two
    workers failing the same way produce the same digest and a report
    reader can group failures without shipping whole tracebacks around.
    """
    frames = traceback.extract_tb(exc.__traceback__)
    text = "\n".join(f"{f.filename}:{f.lineno}:{f.name}" for f in frames)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:16]


@dataclass(frozen=True)
class RunFailure:
    """Why one job ultimately failed (after all retries)."""

    kind: str
    error_type: str
    message: str
    attempts: int
    elapsed: float
    traceback_digest: str = ""

    @property
    def retryable(self) -> bool:
        return self.kind in RETRYABLE_KINDS

    def label(self) -> str:
        """The table cell a figure renders for this failure."""
        return "TIMEOUT" if self.kind == "timeout" else f"FAILED({self.kind})"

    # -- serialization (manifest / run report) --------------------------
    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "error_type": self.error_type,
            "message": self.message,
            "attempts": self.attempts,
            "elapsed": round(self.elapsed, 6),
            "traceback_digest": self.traceback_digest,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "RunFailure":
        return cls(
            kind=str(data.get("kind", "error")),
            error_type=str(data.get("error_type", "")),
            message=str(data.get("message", "")),
            attempts=int(data.get("attempts", 1)),
            elapsed=float(data.get("elapsed", 0.0)),
            traceback_digest=str(data.get("traceback_digest", "")),
        )


class ExecutionInterrupted(RuntimeError):
    """Execution was stopped cooperatively at a settle boundary.

    Raised by :func:`repro.experiments.parallel.execute_outcomes` when
    its ``should_stop`` callback turns true (the job service uses this
    for graceful shutdown).  Jobs that already settled were delivered
    through ``on_outcome`` and stay cached; the interrupt only forfeits
    work not yet started.
    """


class ExecutorUnavailable(RuntimeError):
    """An execution backend cannot take work right now.

    Raised by :class:`~repro.experiments.distributed.DistributedExecutor`
    when its transport cannot be opened (the endpoint is unusable) and by
    :class:`~repro.experiments.executor.BreakerExecutor` when its circuit
    is open and no fallback is configured.  Distinct from a per-job
    :class:`RunFailure`: no job was attempted -- the whole backend is
    down, and the caller should shed, fall back, or retry later.
    """


class GarbageResult(RuntimeError):
    """A worker returned something that is not a sane SimulationResult.

    Raised by the executor's post-run validator (and provoked on demand
    by the chaos harness's ``garbage`` mode).  Retryable: a garbled
    return is transport/worker damage, not simulator determinism.
    """


class RunFailureError(RuntimeError, ValueError):
    """Raised by fail-fast execution paths; wraps the typed failure.

    Also subclasses ``ValueError`` (the :class:`~repro.specs.SpecError`
    precedent): before typed outcomes, a bad configuration escaped
    ``Workbench.run`` as the underlying ``ValueError``, and legacy
    callers catching that must keep working.
    """

    def __init__(self, job: "RunJob", failure: RunFailure):
        super().__init__(
            f"job {job.kernel}/{job.config.name} failed "
            f"({failure.kind}: {failure.error_type}: {failure.message}; "
            f"{failure.attempts} attempt{'s' if failure.attempts != 1 else ''})"
        )
        self.job = job
        self.failure = failure


@dataclass(frozen=True)
class JobOutcome:
    """One job's final fate: a result, or a typed failure -- never both.

    ``source`` records where a successful result came from (``run``,
    ``cache``, ``memory``); ``attempts``/``elapsed`` cover the executed
    attempts (0 / 0.0 for pure cache hits).
    """

    job: "RunJob"
    result: "SimulationResult | None" = None
    failure: RunFailure | None = None
    attempts: int = 1
    elapsed: float = 0.0
    source: str = "run"

    def __post_init__(self) -> None:
        if (self.result is None) == (self.failure is None):
            raise ValueError("JobOutcome needs exactly one of result/failure")

    @property
    def ok(self) -> bool:
        return self.failure is None

    def unwrap(self) -> "SimulationResult":
        """The result, or the typed :class:`RunFailureError`."""
        if self.result is None:
            assert self.failure is not None
            raise RunFailureError(self.job, self.failure)
        return self.result


def classify_failure(
    exc: BaseException, attempts: int, elapsed: float
) -> RunFailure:
    """Map an exception from one attempt onto a typed :class:`RunFailure`."""
    from concurrent.futures.process import BrokenProcessPool

    from repro.core.simulator import SimulationDiverged

    kind = "error"
    if isinstance(exc, SimulationDiverged):
        kind = "diverged"
    elif isinstance(exc, BrokenProcessPool):
        kind = "crash"
    elif isinstance(exc, TimeoutError):
        kind = "timeout"
    elif isinstance(exc, GarbageResult):
        kind = "garbage"
    elif type(exc).__name__ == "ChaosError":
        # repro.testing.chaos.ChaosError, matched by name to keep the
        # chaos harness import-free from the hot execution path.
        kind = "injected"
    return RunFailure(
        kind=kind,
        error_type=type(exc).__name__,
        message=str(exc)[:500],
        attempts=attempts,
        elapsed=elapsed,
        traceback_digest=traceback_digest(exc),
    )


@dataclass
class OutcomeStats:
    """Aggregate counters the executor/harness expose to reports."""

    executed: int = 0
    failed: int = 0
    retries: int = 0
    pool_respawns: int = 0
    timeouts: int = 0
    by_kind: dict[str, int] = field(default_factory=dict)

    def record_failure(self, failure: RunFailure) -> None:
        self.failed += 1
        self.by_kind[failure.kind] = self.by_kind.get(failure.kind, 0) + 1

    def to_dict(self) -> dict[str, Any]:
        return {
            "executed": self.executed,
            "failed": self.failed,
            "retries": self.retries,
            "pool_respawns": self.pool_respawns,
            "timeouts": self.timeouts,
            "by_kind": dict(self.by_kind),
        }
