"""Common result container for reproduced tables and figures."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.util.tables import format_table


@dataclass
class FigureData:
    """One reproduced figure/table: labelled rows plus provenance notes."""

    figure_id: str
    title: str
    headers: Sequence[str]
    rows: list[Sequence[object]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, *cells: object) -> None:
        """Append one row."""
        if len(cells) != len(self.headers):
            raise ValueError(
                f"{self.figure_id}: row has {len(cells)} cells, "
                f"want {len(self.headers)}"
            )
        self.rows.append(cells)

    def column(self, header: str) -> list[object]:
        """All values of one column."""
        index = list(self.headers).index(header)
        return [row[index] for row in self.rows]

    def row_for(self, label: object) -> Sequence[object]:
        """The first row whose first cell equals ``label``."""
        for row in self.rows:
            if row[0] == label:
                return row
        raise KeyError(f"{self.figure_id}: no row labelled {label!r}")

    def to_dict(self) -> dict:
        """JSON-serializable form (machine-readable experiment output)."""
        return {
            "figure_id": self.figure_id,
            "title": self.title,
            "headers": list(self.headers),
            "rows": [list(row) for row in self.rows],
            "notes": list(self.notes),
        }

    def __str__(self) -> str:
        header = f"== {self.figure_id}: {self.title} =="
        body = format_table(self.headers, self.rows)
        notes = "\n".join(f"note: {note}" for note in self.notes)
        return "\n".join(part for part in (header, body, notes) if part)


def annotate_failures(figure: FigureData, outcomes: Sequence[object]) -> None:
    """Append one provenance note per failed run (no-op when all settled ok).

    ``outcomes`` is any iterable of :class:`~repro.experiments.outcomes.
    JobOutcome`; only failed ones (``.failure`` set) produce notes.  Kept
    here so every figure module annotates partial tables identically.
    """
    failed = [o for o in outcomes if getattr(o, "failure", None) is not None]
    if not failed:
        return
    from repro.specs.policy import policy_label

    figure.notes.append(
        f"{len(failed)} run(s) failed after retries; affected cells show "
        "FAILED/TIMEOUT and aggregates cover completed runs only"
    )
    for out in failed:
        job, failure = out.job, out.failure
        figure.notes.append(
            f"{failure.label()}: {job.kernel}/{job.config.name}/"
            f"{policy_label(job.policy)} -- {failure.error_type}: "
            f"{failure.message} (kind={failure.kind}, attempts={out.attempts})"
        )
