"""Command-line experiment runner.

Regenerate any reproduced figure from a shell::

    python -m repro.experiments figure4
    python -m repro.experiments figure14 --instructions 20000 --out results/
    python -m repro.experiments all --benchmarks vpr gzip
    python -m repro.experiments all --seeds 3 --workers 8

Experiment names are the keys of :data:`repro.experiments.EXPERIMENTS`.

Simulations fan out over ``--workers`` processes and persist in an
on-disk result cache (``~/.cache/repro`` by default; override with
``--cache-dir`` or ``REPRO_CACHE_DIR``, disable with ``--no-cache``).
Parallel and cached runs are bit-identical to serial uncached ones; a
repeat invocation with a warm cache re-executes zero simulations, which
the per-experiment ``cache hits=... simulated=...`` line makes visible.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

from repro.experiments import EXPERIMENTS
from repro.experiments.aggregate import run_seeded
from repro.experiments.cache import RunCache, default_cache_dir
from repro.experiments.harness import DEFAULT_INSTRUCTIONS, Workbench
from repro.workloads.suite import get_kernel, suite_names


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's figures and in-text claims.",
    )
    parser.add_argument(
        "experiments",
        nargs="+",
        metavar="EXPERIMENT",
        help=f"one or more of: {', '.join(EXPERIMENTS)}, or 'all'",
    )
    parser.add_argument(
        "--instructions",
        type=int,
        default=DEFAULT_INSTRUCTIONS,
        help="dynamic instructions per benchmark kernel "
        f"(default {DEFAULT_INSTRUCTIONS})",
    )
    parser.add_argument(
        "--benchmarks",
        nargs="+",
        metavar="KERNEL",
        help=f"restrict the suite (default: all 12); from: {', '.join(suite_names())}",
    )
    parser.add_argument("--seed", type=int, default=0, help="workload data seed")
    parser.add_argument(
        "--seeds",
        type=int,
        default=1,
        help="average over this many seeds (the paper averages 3 samples)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=0,
        help="fan independent simulations out over this many worker "
        "processes (default 0 = serial; results are bit-identical)",
    )
    parser.add_argument(
        "--cache-dir",
        type=pathlib.Path,
        default=None,
        help="persistent result-cache directory "
        f"(default {default_cache_dir()})",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the persistent result cache",
    )
    parser.add_argument(
        "--reference-sim",
        action="store_true",
        help="run every simulation on the pre-optimization reference loop "
        "(repro.core.reference) instead of the event-driven simulator; "
        "results are bit-identical, only slower -- an escape hatch for "
        "cross-checking the optimized hot path",
    )
    parser.add_argument(
        "--out",
        type=pathlib.Path,
        help="also write each figure's table to this directory",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="with --out, also write machine-readable <figure>.json files",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    names = list(EXPERIMENTS) if "all" in args.experiments else args.experiments
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {unknown}; known: {list(EXPERIMENTS)}",
              file=sys.stderr)
        return 2

    benchmarks = None
    if args.benchmarks:
        benchmarks = [get_kernel(name) for name in args.benchmarks]
    cache = None if args.no_cache else RunCache(args.cache_dir)
    bench = Workbench(
        instructions=args.instructions,
        seed=args.seed,
        benchmarks=benchmarks,
        workers=args.workers,
        cache=cache,
        sim="reference" if args.reference_sim else "event",
    )
    if args.out:
        args.out.mkdir(parents=True, exist_ok=True)

    for name in names:
        start = time.time()
        hits_before = cache.hits if cache else 0
        stores_before = cache.stores if cache else 0
        simulated_before = bench.simulations_run
        if args.seeds > 1:
            figure = run_seeded(
                EXPERIMENTS[name],
                seeds=range(args.seed, args.seed + args.seeds),
                instructions=args.instructions,
                benchmarks=benchmarks,
                workers=args.workers,
                cache=cache,
            )
            # The per-seed workbenches are internal to run_seeded; with a
            # cache every executed simulation is stored exactly once.
            simulated = (cache.stores - stores_before) if cache else -1
        else:
            figure = EXPERIMENTS[name](bench)
            simulated = bench.simulations_run - simulated_before
        elapsed = time.time() - start
        status = f"[{name}: {elapsed:.1f}s"
        if cache is not None:
            status += f"; cache hits={cache.hits - hits_before}"
        if simulated >= 0:
            status += f"; simulated={simulated}"
        status += "]"
        print(f"\n{figure}\n{status}")
        if args.out:
            slug = figure.figure_id.lower().replace(" ", "").replace(".", "")
            (args.out / f"{slug}.txt").write_text(str(figure) + "\n")
            if args.json:
                (args.out / f"{slug}.json").write_text(
                    json.dumps(figure.to_dict(), indent=2) + "\n"
                )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
