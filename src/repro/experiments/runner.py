"""Command-line experiment runner.

Regenerate any reproduced figure from a shell::

    python -m repro.experiments figure4
    python -m repro.experiments figure14 --instructions 20000 --out results/
    python -m repro.experiments all --benchmarks vpr gzip
    python -m repro.experiments all --seeds 3 --workers 8
    python -m repro.experiments --list-figures
    python -m repro.experiments --spec specs/custom_sweep.json

Experiment names are the keys of :data:`repro.experiments.EXPERIMENTS`;
``--spec`` runs any :class:`~repro.specs.ExperimentSpec` JSON file
through the same machinery (the ``repro`` console command adds
``repro specs list|show|validate`` for working with spec files).

Simulations fan out over ``--workers`` processes and persist in an
on-disk result cache (``~/.cache/repro`` by default; override with
``--cache-dir`` or ``REPRO_CACHE_DIR``, disable with ``--no-cache``).
Parallel and cached runs are bit-identical to serial uncached ones; a
repeat invocation with a warm cache re-executes zero simulations, which
the per-experiment ``cache hits=... simulated=...`` line makes visible.

Observability flags (:mod:`repro.telemetry`):

* ``--metrics`` attaches per-run telemetry and writes a validated JSON
  run report (``<figure>_report.json``) next to the figure outputs;
* ``--trace-out FILE`` writes the span trace (wall time per stage) as
  JSON;
* ``--profile`` prints the span summary table after the run.

Output modes: ``--json`` alone streams each figure as a JSON document on
stdout (status lines move to stderr); with ``--out`` it keeps the
human-readable stdout and additionally writes ``<figure>.json`` files.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

from repro.experiments import EXPERIMENTS, PLANS
from repro.experiments.aggregate import run_seeded
from repro.experiments.cache import RunCache, default_cache_dir
from repro.experiments.executor import executor_names
from repro.experiments.harness import DEFAULT_INSTRUCTIONS, Workbench
from repro.experiments.manifest import SweepManifest, default_manifest_dir
from repro.experiments.outcomes import ExecutionPolicy, RunFailureError
from repro.experiments.sweep import run_spec
from repro.specs import ExperimentSpec, SpecError, load_spec, spec_hash
from repro.workloads.suite import get_kernel, suite_names


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's figures and in-text claims.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        metavar="EXPERIMENT",
        help=f"one or more of: {', '.join(EXPERIMENTS)}, or 'all'",
    )
    parser.add_argument(
        "--list-figures",
        action="store_true",
        help="print the known experiment names and exit",
    )
    parser.add_argument(
        "--spec",
        action="append",
        type=pathlib.Path,
        default=[],
        metavar="FILE",
        dest="specs",
        help="run an ExperimentSpec JSON file (repeatable; see the specs/ "
        "directory for examples and 'repro specs' for tooling)",
    )
    parser.add_argument(
        "--instructions",
        type=int,
        default=DEFAULT_INSTRUCTIONS,
        help="dynamic instructions per benchmark kernel "
        f"(default {DEFAULT_INSTRUCTIONS})",
    )
    parser.add_argument(
        "--benchmarks",
        nargs="+",
        metavar="KERNEL",
        help=f"restrict the suite (default: all 12); from: {', '.join(suite_names())}",
    )
    parser.add_argument("--seed", type=int, default=0, help="workload data seed")
    parser.add_argument(
        "--seeds",
        type=int,
        default=1,
        help="average over this many seeds (the paper averages 3 samples)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=0,
        help="fan independent simulations out over this many worker "
        "processes (default 0 = serial; results are bit-identical)",
    )
    parser.add_argument(
        "--executor",
        choices=executor_names(),
        default="local",
        help="execution backend: 'local' runs jobs on this machine's "
        "process pool; 'distributed' shards them over external "
        "'repro worker' processes at --workers-endpoint (default local)",
    )
    parser.add_argument(
        "--workers-endpoint",
        default=None,
        metavar="ENDPOINT",
        help="where distributed workers rendezvous: host:port (binds a "
        "coordinator socket there) or a shared spool directory; required "
        "with --executor distributed",
    )
    parser.add_argument(
        "--cache-dir",
        type=pathlib.Path,
        default=None,
        help="persistent result-cache directory "
        f"(default {default_cache_dir()})",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the persistent result cache",
    )
    parser.add_argument(
        "--max-retries",
        type=int,
        default=2,
        metavar="N",
        help="re-run a job up to N times after a transient failure "
        "(worker crash, timeout, injected fault; default 2). Retried "
        "runs are bit-identical to first-try runs.",
    )
    parser.add_argument(
        "--job-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="kill and retry any single simulation running longer than "
        "this (default: no limit; needs --workers > 1 -- an in-process "
        "run cannot be interrupted safely)",
    )
    parser.add_argument(
        "--fail-fast",
        action="store_true",
        help="abort on the first job that fails past its retry budget "
        "instead of rendering FAILED/TIMEOUT cells in a partial table",
    )
    parser.add_argument(
        "--no-resume",
        action="store_true",
        help="do not read or write per-spec sweep manifests (an "
        "interrupted --spec sweep then loses the 'resumed N' accounting; "
        "finished results still come back from the run cache)",
    )
    parser.add_argument(
        "--reference-sim",
        action="store_true",
        help="run every simulation on the pre-optimization reference loop "
        "(repro.core.reference) instead of the event-driven simulator; "
        "results are bit-identical, only slower -- an escape hatch for "
        "cross-checking the optimized hot path",
    )
    parser.add_argument(
        "--no-batch",
        action="store_true",
        help="disable the batched sweep backend: run every simulation "
        "through the per-job event path instead of sharing one trace "
        "decode + predictor-training pass per kernel (the batched "
        "backend is the default for supported policy stacks)",
    )
    parser.add_argument(
        "--metrics",
        action="store_true",
        help="collect per-run pipeline telemetry and write a validated "
        "JSON run report per experiment (<figure>_report.json under "
        "--out, default results/)",
    )
    parser.add_argument(
        "--trace-out",
        type=pathlib.Path,
        metavar="FILE",
        help="write the wall-time span trace (trace prep, warm-up, "
        "measurement, cache traffic) as JSON to FILE",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="print the span summary table after the run",
    )
    parser.add_argument(
        "--out",
        type=pathlib.Path,
        help="also write each figure's table to this directory",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="machine-readable output: with --out, also write "
        "<figure>.json files; without --out, print each figure as a "
        "JSON document on stdout (status lines go to stderr)",
    )
    return parser


def _report_runs(bench: Workbench, name: str, spec: ExperimentSpec | None = None):
    """The (job, result) pairs experiment ``name`` consumed, in plan order."""
    if spec is not None:
        jobs = spec.jobs(bench)
    else:
        plan = PLANS.get(name)
        if plan is None:
            return bench.cached_results()
        jobs = plan(bench)
    pairs = []
    for job in jobs:
        result = bench.result_for(job)
        if result is not None:
            pairs.append((job, result))
    return pairs


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_figures:
        for name in EXPERIMENTS:
            print(name)
        return 0
    if not args.experiments and not args.specs:
        print("no experiments given (try --list-figures, 'all' or --spec FILE)",
              file=sys.stderr)
        return 2
    names = list(EXPERIMENTS) if "all" in args.experiments else args.experiments
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {unknown}; known: {list(EXPERIMENTS)}",
              file=sys.stderr)
        return 2
    # (label, runner, spec) triples: named experiments then spec files.
    tasks: list[tuple[str, object, ExperimentSpec | None]] = [
        (name, EXPERIMENTS[name], None) for name in names
    ]
    for path in args.specs:
        try:
            spec = load_spec(path)
        except SpecError as exc:
            print(f"bad spec: {exc}", file=sys.stderr)
            return 2
        tasks.append((spec.name, None, spec))

    # JSON-stream mode: one combined {name: figure} object on stdout at
    # the end, everything else on stderr as it happens.
    json_stream = args.json and not args.out
    status_stream = sys.stderr if json_stream else sys.stdout
    streamed: dict[str, object] = {}

    tracer = None
    if args.metrics or args.trace_out or args.profile:
        from repro.telemetry import Tracer

        tracer = Tracer()
    benchmarks = None
    if args.benchmarks:
        benchmarks = [get_kernel(name) for name in args.benchmarks]
    try:
        execution = ExecutionPolicy(
            max_retries=args.max_retries,
            job_timeout=args.job_timeout,
            fail_fast=args.fail_fast,
        )
    except ValueError as exc:
        print(f"bad execution policy: {exc}", file=sys.stderr)
        return 2
    if args.executor == "distributed" and not args.workers_endpoint:
        print(
            "--executor distributed needs --workers-endpoint "
            "(host:port or a shared spool directory)",
            file=sys.stderr,
        )
        return 2
    cache = None if args.no_cache else RunCache(args.cache_dir, tracer=tracer)
    batch_mode = "off" if args.no_batch else "auto"
    bench = Workbench(
        instructions=args.instructions,
        seed=args.seed,
        benchmarks=benchmarks,
        workers=args.workers,
        cache=cache,
        sim="reference" if args.reference_sim else "event",
        batch=batch_mode,
        metrics=args.metrics,
        tracer=tracer,
        execution=execution,
        executor=args.executor,
        workers_endpoint=args.workers_endpoint,
    )
    if args.out:
        args.out.mkdir(parents=True, exist_ok=True)
    report_dir = args.out if args.out else pathlib.Path("results")

    try:
        return _run_tasks(
            args, tasks, bench, cache, tracer, benchmarks, execution,
            batch_mode, json_stream, status_stream, streamed, report_dir,
        )
    finally:
        # Stops distributed workers cleanly; a no-op for the local pool.
        bench.close_executors()


def _run_tasks(
    args,
    tasks,
    bench,
    cache,
    tracer,
    benchmarks,
    execution,
    batch_mode,
    json_stream,
    status_stream,
    streamed,
    report_dir,
) -> int:
    for name, experiment, spec in tasks:
        start = time.time()
        hits_before = cache.hits if cache else 0
        stores_before = cache.stores if cache else 0
        quarantined_before = cache.quarantined if cache else 0
        simulated_before = bench.simulations_run
        failed_before = len(bench.failed_outcomes())
        if spec is not None:
            manifest = None
            if cache is not None and not args.no_resume:
                manifest = SweepManifest.open(
                    default_manifest_dir(cache.root), spec_hash(spec), spec.name
                )
            def experiment(b, _spec=spec, _m=manifest):
                return run_spec(b, _spec, manifest=_m)
        if args.seeds > 1:
            figure = run_seeded(
                experiment,
                seeds=range(args.seed, args.seed + args.seeds),
                instructions=args.instructions,
                benchmarks=benchmarks,
                workers=args.workers,
                cache=cache,
                batch=batch_mode,
                execution=execution,
            )
            # The per-seed workbenches are internal to run_seeded; with a
            # cache every executed simulation is stored exactly once.
            simulated = (cache.stores - stores_before) if cache else -1
        else:
            try:
                figure = experiment(bench)
            except SpecError as exc:
                print(f"bad spec: {exc}", file=sys.stderr)
                return 2
            except RunFailureError as exc:
                print(f"fail-fast: {exc}", file=sys.stderr)
                return 1
            except KeyboardInterrupt:
                # Settled results were flushed to the persistent cache (and
                # the sweep manifest) as they completed; nothing is lost.
                print(
                    "\ninterrupted -- completed results are persisted; "
                    "re-run the same command to resume",
                    file=sys.stderr,
                )
                return 130
            simulated = bench.simulations_run - simulated_before
        elapsed = time.time() - start
        failed = len(bench.failed_outcomes()) - failed_before
        status = f"[{name}: {elapsed:.1f}s"
        if cache is not None:
            status += f"; cache hits={cache.hits - hits_before}"
        if simulated >= 0:
            status += f"; simulated={simulated}"
        if failed > 0:
            status += f"; failed={failed}"
        if cache is not None and cache.quarantined > quarantined_before:
            status += f"; quarantined={cache.quarantined - quarantined_before}"
        status += "]"
        if json_stream:
            streamed[name] = figure.to_dict()
            print(status, file=status_stream)
        else:
            print(f"\n{figure}\n{status}")
        if args.out:
            slug = figure.figure_id.lower().replace(" ", "").replace(".", "")
            (args.out / f"{slug}.txt").write_text(str(figure) + "\n")
            if args.json:
                (args.out / f"{slug}.json").write_text(
                    json.dumps(figure.to_dict(), indent=2) + "\n"
                )
        if args.metrics:
            from repro.telemetry import RunReport

            if args.seeds > 1:
                print(
                    f"[{name}: run report skipped -- --metrics reports "
                    "cover single-seed invocations]",
                    file=status_stream,
                )
            else:
                from repro.specs import policy_label

                failure_rows = [
                    {
                        "kernel": o.job.kernel,
                        "config": o.job.config.name,
                        "policy": policy_label(o.job.policy),
                        **o.failure.to_dict(),
                    }
                    for o in bench.failed_outcomes()
                ]
                report = RunReport.from_runs(
                    name,
                    _report_runs(bench, name, spec),
                    failures=failure_rows,
                    workbench={
                        "instructions": bench.instructions,
                        "seed": bench.seed,
                        "loc_mode": bench.loc_mode,
                        "workers": bench.workers,
                        "sim": bench.sim,
                        "benchmarks": [spec.name for spec in bench.benchmarks],
                    },
                    figure=figure.to_dict(),
                    tracer=tracer,
                    cache_stats=cache.stats() if cache else None,
                    elapsed_seconds=elapsed,
                )
                report_dir.mkdir(parents=True, exist_ok=True)
                report_path = report_dir / f"{name}_report.json"
                report_path.write_text(report.to_json())
                print(report.render(), file=status_stream)
                print(f"[run report: {report_path}]", file=status_stream)
    if args.trace_out and tracer is not None:
        args.trace_out.parent.mkdir(parents=True, exist_ok=True)
        args.trace_out.write_text(json.dumps(tracer.to_dict(), indent=2) + "\n")
        print(f"[trace: {args.trace_out}]", file=status_stream)
    if args.profile and tracer is not None:
        print(tracer.format_summary(), file=status_stream)
    if json_stream:
        print(json.dumps(streamed, indent=2))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
