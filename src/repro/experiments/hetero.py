"""Heterogeneous-cluster sweep: asymmetric machines x policy stacks.

The paper studies N *equal* clusters; this sweep asks how its steering
policies fare when the clusters are not equal.  Three asymmetric
8-wide machines:

* ``4w+2w+2w`` -- one fat cluster with a big window next to two thin
  ones (:func:`~repro.core.config.fat_thin_machine`);
* FP-less thin clusters -- only the fat cluster can execute FP ops, so
  steering mistakes cost a dispatch-level capability redirect
  (:func:`~repro.core.config.fp_less_thin_machine`);
* slow divider -- uniform geometry, but the last cluster executes
  ``INT_MUL`` at double latency
  (:func:`~repro.core.config.slow_divider_machine`).

Each machine runs the paper's five policy stacks plus ``affinity``
(:class:`~repro.core.steering.affinity.AffinitySteering`), which is the
only policy that *sees* the asymmetry.  Everything is normalized to the
monolithic 1x8w machine with LoC scheduling, Figure 14's baseline, so
the heterogeneous penalties read on the same scale as the paper's
uniform ones.

The workload subset keeps kernels that actually exercise the asymmetric
resources: ``eon`` carries the suite's FP traffic, ``gap``/``vortex``/
``twolf`` carry integer multiplies, and ``gcc``/``mcf`` are pure-integer
controls where the FP-less and slow-divider machines should behave like
their uniform counterparts.
"""

from __future__ import annotations

from repro.analysis.breakdown import cpi_breakdown
from repro.core.config import (
    MachineConfig,
    fat_thin_machine,
    fp_less_thin_machine,
    monolithic_machine,
    slow_divider_machine,
)
from repro.experiments.figure import FigureData, annotate_failures
from repro.experiments.harness import Workbench
from repro.specs import ExperimentSpec, MachineSpec, SweepSpec

# Registry name: the key this sweep goes by in EXPERIMENTS / PLANS
# and on the CLI.
NAME = "hetero_sweep"

__all__ = ["NAME", "plan_hetero_sweep", "run_hetero_sweep", "spec_hetero_sweep"]

# The five paper stacks, then the heterogeneity-aware one.
POLICIES = ("dependence", "focused", "l", "s", "p", "affinity")

# Kernels chosen for FP / INT_MUL coverage (see module docstring).
WORKLOADS = ("gcc", "mcf", "eon", "gap", "vortex", "twolf")


def hetero_machines() -> tuple[tuple[str, MachineConfig], ...]:
    """The three asymmetric machines this sweep studies, in table order.

    Labels disambiguate machines that share a width signature: the
    FP-less machine is also ``4w+2w+2w``, differing only in port mix.
    """
    return (
        ("4w+2w+2w", fat_thin_machine()),
        ("4w+2w+2w-nofp", fp_less_thin_machine()),
        ("4w+4w-slowmul", slow_divider_machine()),
    )


def spec_hetero_sweep() -> ExperimentSpec:
    """The heterogeneous sweep as a declarative spec.

    The checked-in ``specs/hetero_sweep.json`` is this spec serialized; a
    test keeps the two in lock-step.
    """
    return ExperimentSpec(
        name=NAME,
        figure=NAME,
        description=(
            "Paper policy stacks plus affinity steering on asymmetric "
            "machines, vs 1x8w with LoC scheduling"
        ),
        workloads=WORKLOADS,
        sweeps=(
            SweepSpec(machines=(MachineSpec(1),), policies=("l",)),
            SweepSpec(
                machines=tuple(
                    MachineSpec.from_config(config)
                    for _, config in hetero_machines()
                ),
                policies=POLICIES,
            ),
        ),
    )


def plan_hetero_sweep(bench: Workbench):
    """The runs the heterogeneous sweep needs, for parallel prefetch."""
    return spec_hetero_sweep().jobs(bench)


def run_hetero_sweep(bench: Workbench) -> FigureData:
    """One row per (benchmark, machine, policy), Figure 14-style."""
    bench.prefetch(plan_hetero_sweep(bench))
    machines = hetero_machines()
    figure = FigureData(
        figure_id="Hetero sweep",
        title=(
            "Heterogeneous clusters (normalized CPI vs 1x8w with LoC "
            "scheduling)"
        ),
        headers=[
            "benchmark",
            "machine",
            "policy",
            "norm_cpi",
            "fwd_delay",
            "contention",
        ],
        notes=[
            "machines: fat+thin (4w+2w+2w), FP-less thin clusters, "
            "slow-divider last cluster; affinity is the only "
            "capability/latency-aware policy",
        ],
    )
    sums: dict[tuple[str, str], float] = {}
    counts: dict[tuple[str, str], int] = {}
    failed = []
    kernels = [spec for spec in bench.benchmarks if spec.name in WORKLOADS]
    for spec in kernels:
        base_out = bench.outcome(spec, monolithic_machine(), "l")
        if not base_out.ok:
            failed.append(base_out)
            cell = base_out.failure.label()
            for label, _ in machines:
                for policy in POLICIES:
                    figure.add_row(spec.name, label, policy, cell, cell, cell)
            continue
        base_cpi = base_out.result.cpi
        for label, config in machines:
            for policy in POLICIES:
                out = bench.outcome(spec, config, policy)
                if not out.ok:
                    failed.append(out)
                    cell = out.failure.label()
                    figure.add_row(spec.name, label, policy, cell, cell, cell)
                    continue
                result = out.result
                segments = cpi_breakdown(result).normalized(base_cpi)
                norm = result.cpi / base_cpi
                figure.add_row(
                    spec.name,
                    label,
                    policy,
                    norm,
                    segments["fwd_delay"],
                    segments["contention"],
                )
                key = (label, policy)
                sums[key] = sums.get(key, 0.0) + norm
                counts[key] = counts.get(key, 0) + 1
    for label, _ in machines:
        for policy in POLICIES:
            key = (label, policy)
            n = counts.get(key, 0)
            figure.add_row(
                "AVE",
                label,
                policy,
                sums.get(key, 0.0) / n if n else float("nan"),
                float("nan"),
                float("nan"),
            )
    _append_affinity_gains(figure, machines)
    annotate_failures(figure, failed)
    return figure


def _append_affinity_gains(
    figure: FigureData, machines: tuple[tuple[str, MachineConfig], ...]
) -> None:
    """Note affinity's average gain over the best unaware stack."""
    for label, _ in machines:
        ave = {
            row[2]: row[3]
            for row in figure.rows
            if row[0] == "AVE" and row[1] == label and isinstance(row[3], float)
        }
        affinity = ave.get("affinity")
        unaware = [v for k, v in ave.items() if k != "affinity" and v == v]
        if affinity is None or affinity != affinity or not unaware:
            continue
        best = min(unaware)
        figure.notes.append(
            f"{label}: affinity {affinity:.3f} vs best unaware "
            f"{best:.3f} ({'-' if affinity <= best else '+'}"
            f"{abs(affinity - best):.3f})"
        )
