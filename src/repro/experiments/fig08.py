"""Figure 8: the distribution of likelihood-of-criticality values.

The exact per-PC LoC (fraction of dynamic instances on the critical path)
is computed on the monolithic machine, and dynamic instructions are
histogrammed into 5%-wide LoC bins.  The paper's distribution has a large
never-critical spike (53% of dynamic instructions at LoC ~0) and a wide
tail; the dashed line at 12.5% marks the granularity of the Fields binary
predictor (1-in-8 critical instances suffice to classify critical).
"""

from __future__ import annotations

from repro.analysis.consumers import exact_loc_by_pc
from repro.core.config import monolithic_machine
from repro.criticality.critical_path import critical_flags
from repro.experiments.figure import FigureData
from repro.experiments.harness import Workbench
from repro.specs import ExperimentSpec, MachineSpec, SweepSpec

# Registry name: the key this figure goes by in EXPERIMENTS / PLANS
# and on the CLI.
NAME = "figure8"

__all__ = ["NAME", "plan_figure8", "run_figure8", "spec_figure8"]

BIN_PERCENT = 5
FIELDS_THRESHOLD_PERCENT = 100 / 8  # 1-in-8 instances => predicted critical


def spec_figure8() -> ExperimentSpec:
    """Figure 8's monolithic probe runs as a declarative spec."""
    return ExperimentSpec(
        name=NAME,
        figure=NAME,
        description="LoC distribution probes on the monolithic machine",
        sweeps=(
            SweepSpec(machines=(MachineSpec(1),), policies=("focused",)),
        ),
    )


def plan_figure8(bench: Workbench):
    """The runs Figure 8 needs, for parallel prefetch."""
    return spec_figure8().jobs(bench)


def run_figure8(bench: Workbench) -> FigureData:
    """Reproduce Figure 8: % of dynamic instructions per 5% LoC bin."""
    bench.prefetch(plan_figure8(bench))
    bins = [0] * (100 // BIN_PERCENT + 1)
    total = 0
    for spec in bench.benchmarks:
        result = bench.run(spec, monolithic_machine(), "focused")
        flags = critical_flags(result.records)
        loc = exact_loc_by_pc(result.records, flags)
        for record in result.records:
            value = loc[record.instr.pc]
            bins[min(len(bins) - 1, int(value * 100) // BIN_PERCENT)] += 1
            total += 1

    figure = FigureData(
        figure_id="Figure 8",
        title="Distribution of LoC values (% of dynamic instructions)",
        headers=["loc_bin", "percent"],
        notes=[
            f"Fields binary predictor classifies critical above "
            f"{FIELDS_THRESHOLD_PERCENT:.1f}% LoC",
            "paper: 53% of dynamic instructions fall in the 0-5% bin; the "
            "rest spread widely",
        ],
    )
    for i, count in enumerate(bins):
        low = i * BIN_PERCENT
        label = f"{low}-{min(100, low + BIN_PERCENT - 1)}%"
        figure.add_row(label, 100.0 * count / total if total else 0.0)
    return figure
