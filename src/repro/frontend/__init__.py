"""Front end: branch prediction and the fetch/dispatch timing model."""

from repro.frontend.branch_predictor import (
    AlwaysTakenPredictor,
    BranchPredictor,
    GshareBranchPredictor,
    OraclePredictor,
    annotate_mispredictions,
)
from repro.frontend.fetch import FrontEndConfig, FrontEndModel

__all__ = [
    "AlwaysTakenPredictor",
    "BranchPredictor",
    "FrontEndConfig",
    "FrontEndModel",
    "GshareBranchPredictor",
    "OraclePredictor",
    "annotate_mispredictions",
]
