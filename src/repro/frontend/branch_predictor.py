"""Branch predictors for the front end.

Table 1 specifies a gshare predictor with 16 bits of global history.  We also
provide always-taken and oracle predictors as test and bounding baselines.
"""

from __future__ import annotations

from dataclasses import dataclass, field


class BranchPredictor:
    """Interface: predict a conditional branch, then train on the outcome."""

    def predict(self, pc: int) -> bool:
        """Return the predicted direction for the branch at ``pc``."""
        raise NotImplementedError

    def update(self, pc: int, taken: bool) -> None:
        """Train on the resolved direction and update global history."""
        raise NotImplementedError


@dataclass
class GshareBranchPredictor(BranchPredictor):
    """Classic gshare: PC xor global-history indexes 2-bit counters."""

    history_bits: int = 16
    _history: int = 0
    _counters: dict[int, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not 1 <= self.history_bits <= 30:
            raise ValueError(f"history_bits out of range: {self.history_bits}")
        self._mask = (1 << self.history_bits) - 1

    def _index(self, pc: int) -> int:
        return (pc ^ self._history) & self._mask

    def predict(self, pc: int) -> bool:
        # 2-bit counters initialized to weakly taken (2); >= 2 predicts taken.
        return self._counters.get(self._index(pc), 2) >= 2

    def update(self, pc: int, taken: bool) -> None:
        index = self._index(pc)
        counter = self._counters.get(index, 2)
        if taken:
            counter = min(3, counter + 1)
        else:
            counter = max(0, counter - 1)
        self._counters[index] = counter
        self._history = ((self._history << 1) | int(taken)) & self._mask


@dataclass
class AlwaysTakenPredictor(BranchPredictor):
    """Static predictor; useful for tests and as a pessimistic bound."""

    def predict(self, pc: int) -> bool:
        return True

    def update(self, pc: int, taken: bool) -> None:
        pass


@dataclass
class OraclePredictor(BranchPredictor):
    """Perfect predictor; bounds the benefit of branch prediction."""

    def predict(self, pc: int) -> bool:  # pragma: no cover - trivial
        raise RuntimeError("oracle predictions are resolved by the caller")

    def update(self, pc: int, taken: bool) -> None:
        pass


def annotate_mispredictions(trace, predictor: BranchPredictor | None = None):
    """Run ``predictor`` over ``trace``; return a set of mispredicted indices.

    Unconditional branches and halts always predict correctly.  A ``None``
    predictor means oracle (empty set).
    """
    if predictor is None or isinstance(predictor, OraclePredictor):
        return set()
    mispredicted = set()
    for instr in trace:
        if not instr.is_conditional_branch:
            continue
        if predictor.predict(instr.pc) != instr.taken:
            mispredicted.add(instr.index)
        predictor.update(instr.pc, instr.taken)
    return mispredicted
