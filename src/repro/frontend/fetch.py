"""Front-end timing model: 8-wide fetch, 13 stages to dispatch (Table 1).

The model is trace-driven: it streams the *correct-path* dynamic trace, but
honours the timing constraints a real front end would impose:

* at most ``width`` instructions enter the fetch buffer per cycle;
* fetch past a mispredicted branch blocks until that branch resolves, and the
  redirected instructions then take ``depth`` cycles to reach dispatch
  (pipeline refill);
* optionally, a taken branch ends the fetch group for that cycle;
* the fetch buffer is finite, so dispatch stalls backpressure fetch.

Wrong-path instructions are not modelled (the machine has perfect memory
disambiguation and we do not model wrong-path cache pollution), matching the
paper's trace-driven simulator.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Sequence

from repro.vm.trace import DynamicInstruction


@dataclass(frozen=True)
class FrontEndConfig:
    """Front-end parameters (defaults are the paper's Table 1)."""

    width: int = 8
    depth_to_dispatch: int = 13
    buffer_size: int = 16
    break_on_taken_branch: bool = True

    def __post_init__(self) -> None:
        if self.width <= 0 or self.depth_to_dispatch < 0 or self.buffer_size <= 0:
            raise ValueError(f"invalid front-end config: {self}")


class FrontEndModel:
    """Streams a dynamic trace under fetch-bandwidth and redirect constraints.

    Protocol (driven by the simulator once per cycle):

    1. ``tick(now)`` -- fetch up to ``width`` instructions into the buffer.
    2. ``peek()`` / ``pop()`` -- the dispatch stage consumes buffered
       instructions in order.
    3. ``resolve_misprediction(index, when)`` -- called when a mispredicted
       branch finishes executing; fetch resumes ``depth_to_dispatch`` cycles
       later.
    """

    def __init__(
        self,
        trace: Sequence[DynamicInstruction],
        mispredicted: frozenset[int] | set[int],
        config: FrontEndConfig | None = None,
    ):
        self._trace = trace
        self._mispredicted = mispredicted
        self.config = config or FrontEndConfig()
        # Hoisted config/trace invariants: tick() runs once per simulated
        # cycle, so it reads these plain attributes rather than chasing the
        # config object every time.
        self._width = self.config.width
        self._buffer_size = self.config.buffer_size
        self._break_taken = self.config.break_on_taken_branch
        self._trace_len = len(trace)
        self._cursor = 0
        self._buffer: deque[DynamicInstruction] = deque()
        # The first instructions reach dispatch after the pipeline fills.
        self._unblock_time = self.config.depth_to_dispatch
        self._blocked_on: int | None = None
        # Provenance for critical-path attribution: the first instruction
        # fetched after a misprediction redirect is gated by that branch.
        self._pending_redirect: int | None = None
        self._redirect_sources: dict[int, int] = {}

    @property
    def exhausted(self) -> bool:
        """True when every trace instruction has been consumed by dispatch."""
        return self._cursor >= len(self._trace) and not self._buffer

    @property
    def blocked_on(self) -> int | None:
        """Index of the mispredicted branch fetch is waiting on, if any."""
        return self._blocked_on

    def tick(self, now: int) -> int:
        """Fetch up to ``width`` instructions this cycle; return the count."""
        if self._blocked_on is not None or now < self._unblock_time:
            return 0
        cursor = self._cursor
        trace_len = self._trace_len
        if cursor >= trace_len:
            return 0
        trace = self._trace
        buffer = self._buffer
        mispredicted = self._mispredicted
        break_taken = self._break_taken
        fetched = 0
        width = self._width
        room = self._buffer_size - len(buffer)
        if room < width:
            width = room
        while fetched < width and cursor < trace_len:
            instr = trace[cursor]
            buffer.append(instr)
            cursor += 1
            fetched += 1
            if self._pending_redirect is not None:
                self._redirect_sources[instr.index] = self._pending_redirect
                self._pending_redirect = None
            if instr.index in mispredicted:
                self._blocked_on = instr.index
                break
            if break_taken and instr.is_branch and instr.taken:
                break
        self._cursor = cursor
        return fetched

    def next_fetch_time(self) -> int | None:
        """Earliest future cycle at which :meth:`tick` could fetch again.

        None when fetch is waiting on an unresolved branch, the trace is
        exhausted, or the buffer is full -- all conditions only dispatch
        or execution progress can clear.  Used by the simulator's
        idle-cycle skipping: when nothing else is in flight, the clock can
        jump straight to this cycle.
        """
        if (
            self._blocked_on is not None
            or self._cursor >= self._trace_len
            or len(self._buffer) >= self._buffer_size
        ):
            return None
        return self._unblock_time

    def peek(self) -> DynamicInstruction | None:
        """Next buffered instruction available for dispatch, or None."""
        return self._buffer[0] if self._buffer else None

    def pop(self) -> DynamicInstruction:
        """Consume the instruction returned by :meth:`peek`."""
        return self._buffer.popleft()

    def resolve_misprediction(self, index: int, when: int) -> None:
        """Resume fetch after the mispredicted branch ``index`` resolves."""
        if self._blocked_on == index:
            self._blocked_on = None
            self._unblock_time = when + self.config.depth_to_dispatch
            self._pending_redirect = index

    def redirect_source(self, index: int) -> int | None:
        """The mispredicted branch gating instruction ``index``, if any."""
        return self._redirect_sources.get(index)
