"""Explicit Fields dependence graph over a simulated run.

Each committed instruction contributes three nodes -- D (dispatch), E
(execute-complete), C (commit) -- and edges for every modelled constraint.
The simulator's recorded event times must satisfy every edge
(``t(dst) >= t(src) + weight``); :func:`validate_timing` checks this, which
is the master invariant test tying the timing model to the critical-path
model.  The graph is also what the slack analysis and the example explorer
walk.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.core.config import MachineConfig
from repro.core.instruction import DispatchReason, InFlight

D, E, C = "D", "E", "C"


@dataclass(frozen=True)
class Edge:
    """One constraint: ``time(dst) >= time(src) + weight``."""

    src_kind: str
    src_index: int
    dst_kind: str
    dst_index: int
    weight: int
    label: str


def node_time(record: InFlight, kind: str) -> int:
    """Recorded wall-clock time of one node."""
    if kind == D:
        return record.dispatch_time
    if kind == E:
        return record.complete_time
    if kind == C:
        return record.commit_time
    raise ValueError(f"unknown node kind {kind!r}")


def iter_edges(
    records: Sequence[InFlight], config: MachineConfig
) -> Iterator[Edge]:
    """Generate every modelled constraint edge for a committed run."""
    fwd = config.forwarding_latency
    rob = config.rob_size
    depth = config.frontend.depth_to_dispatch
    base = records[0].index

    def in_range(index: int) -> bool:
        return 0 <= index - base < len(records)

    for rec in records:
        i = rec.index
        # Intra-instruction: D -> E (window entry + execution), E -> C.
        yield Edge(D, i, E, i, 1 + rec.latency, "execute")
        yield Edge(E, i, C, i, 1, "commit")
        # In-order dispatch and commit.
        if in_range(i - 1):
            yield Edge(D, i - 1, D, i, 0, "inorder_dispatch")
            yield Edge(C, i - 1, C, i, 0, "inorder_commit")
        # ROB pressure.
        if in_range(i - rob):
            yield Edge(C, i - rob, D, i, 0, "rob")
        # Misprediction redirect (recorded provenance).
        if rec.dispatch_reason is DispatchReason.FETCH_REDIRECT and in_range(
            rec.dispatch_pred
        ):
            yield Edge(E, rec.dispatch_pred, D, i, depth, "redirect")
        # Dataflow.
        for dep in rec.deps.all_deps:
            if not in_range(dep):
                continue
            producer = records[dep - base]
            is_mem = rec.deps.mem_dep == dep
            crossed = not is_mem and producer.cluster != rec.cluster
            weight = rec.latency + (fwd if crossed else 0)
            yield Edge(E, dep, E, i, weight, "data")


def validate_timing(
    records: Sequence[InFlight], config: MachineConfig
) -> list[Edge]:
    """Return every edge the recorded times violate (should be empty)."""
    base = records[0].index
    violations = []
    for edge in iter_edges(records, config):
        src = node_time(records[edge.src_index - base], edge.src_kind)
        dst = node_time(records[edge.dst_index - base], edge.dst_kind)
        if dst < src + edge.weight:
            violations.append(edge)
    return violations
