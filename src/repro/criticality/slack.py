"""Global slack analysis (Fields et al., ISCA 2002; discussed in Section 4).

An instruction's global slack is the number of cycles its completion could
be delayed without lengthening the run.  The paper contrasts slack with LoC:
slack is a per-*instance* cycle count with huge variance across instances of
one static instruction (a correctly predicted branch has enormous slack, a
mispredicted one has none), which is why LoC -- a per-static-instruction
frequency -- is the more practical steering metric.

Latest-allowable times are computed by one backward pass over the Fields
edges; all cross-instruction edges point from lower to higher trace indices,
so reverse trace order is a reverse topological order.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.config import MachineConfig
from repro.core.instruction import DispatchReason, InFlight
from repro.core.rename import build_consumer_lists


def compute_global_slack(
    records: Sequence[InFlight], config: MachineConfig
) -> list[int]:
    """Per-instruction global slack of the E (completion) node, in cycles."""
    n = len(records)
    if n == 0:
        return []
    base = records[0].index
    if base != 0:
        raise ValueError("slack analysis expects the full run (base index 0)")
    fwd = config.forwarding_latency
    rob = config.rob_size
    depth = config.frontend.depth_to_dispatch

    consumers = build_consumer_lists([r.deps for r in records])
    # Redirect targets: instruction whose dispatch a mispredicted branch gates.
    redirect_target: dict[int, int] = {}
    for rec in records:
        if (
            rec.dispatch_reason is DispatchReason.FETCH_REDIRECT
            and rec.dispatch_pred is not None
            and 0 <= rec.dispatch_pred - base < n
        ):
            redirect_target[rec.dispatch_pred - base] = rec.index - base

    INF = float("inf")
    latest_d = [INF] * n
    latest_e = [INF] * n
    latest_c = [INF] * n
    latest_c[n - 1] = records[n - 1].commit_time

    for i in range(n - 1, -1, -1):
        rec = records[i]
        # C_i constraints: in-order commit and ROB release.
        bound = latest_c[i]
        if i + 1 < n:
            bound = min(bound, latest_c[i + 1])
        if i + rob < n:
            bound = min(bound, latest_d[i + rob])
        latest_c[i] = bound if bound != INF else rec.commit_time

        # E_i constraints: commit, consumers' execution, redirect release.
        bound = latest_c[i] - 1
        for consumer_offset in consumers[i]:
            consumer = records[consumer_offset]
            is_mem = consumer.deps.mem_dep == rec.index
            crossed = not is_mem and consumer.cluster != rec.cluster
            weight = consumer.latency + (fwd if crossed else 0)
            bound = min(bound, latest_e[consumer_offset] - weight)
        target = redirect_target.get(i)
        if target is not None:
            bound = min(bound, latest_d[target] - depth)
        latest_e[i] = bound

        # D_i constraints: own execution and in-order dispatch.
        bound = latest_e[i] - (1 + rec.latency)
        if i + 1 < n:
            bound = min(bound, latest_d[i + 1])
        latest_d[i] = bound

    return [int(latest_e[i] - records[i].complete_time) for i in range(n)]


def slack_histogram(
    slacks: Sequence[int], bin_width: int = 5, max_bins: int = 20
) -> list[tuple[str, int]]:
    """Bucket slack values for display; the last bin is open-ended."""
    bins = [0] * max_bins
    for slack in slacks:
        bins[min(max_bins - 1, slack // bin_width)] += 1
    labelled = []
    for i, count in enumerate(bins):
        low = i * bin_width
        label = f"{low}-{low + bin_width - 1}"
        if i == max_bins - 1:
            label = f">={low}"
        labelled.append((label, count))
    return labelled
