"""The binary (Fields-style) criticality predictor.

A PC-indexed table of 6-bit saturating counters that increment by 8 when an
instance trains critical and decrement by 1 otherwise; a PC predicts
critical when its counter is at or above 8.  One-in-eight instances being
critical therefore suffices for a critical classification -- the coarseness
the LoC metric (Section 4) is designed to fix.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.util.counters import SaturatingCounter


@dataclass
class BinaryCriticalityPredictor:
    """PC-indexed critical / not-critical classifier."""

    bits: int = 6
    increment: int = 8
    decrement: int = 1
    threshold: int = 8
    _table: dict[int, SaturatingCounter] = field(default_factory=dict)

    def train(self, pc: int, critical: bool) -> None:
        """Update the counter for ``pc`` with one observed instance."""
        counter = self._table.get(pc)
        if counter is None:
            counter = SaturatingCounter(
                bits=self.bits,
                increment=self.increment,
                decrement=self.decrement,
                threshold=self.threshold,
            )
            self._table[pc] = counter
        counter.train(critical)

    def predict(self, pc: int) -> bool:
        """Predicted criticality of the instruction at ``pc``."""
        counter = self._table.get(pc)
        return counter.predict() if counter is not None else False

    def __len__(self) -> int:
        return len(self._table)
