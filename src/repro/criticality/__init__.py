"""Criticality analysis: critical path, slack, predictors, online training."""

from repro.criticality.critical_path import (
    CATEGORIES,
    CriticalPathResult,
    analyze_critical_path,
    critical_flags,
)
from repro.criticality.graph import Edge, iter_edges, node_time, validate_timing
from repro.criticality.loc import LocPredictor, PredictorSuite
from repro.criticality.predictor import BinaryCriticalityPredictor
from repro.criticality.slack import compute_global_slack, slack_histogram
from repro.criticality.token_detector import TokenPassingTrainer
from repro.criticality.trainer import ChunkedCriticalityTrainer, NullTrainer

__all__ = [
    "BinaryCriticalityPredictor",
    "CATEGORIES",
    "ChunkedCriticalityTrainer",
    "CriticalPathResult",
    "Edge",
    "LocPredictor",
    "NullTrainer",
    "PredictorSuite",
    "TokenPassingTrainer",
    "analyze_critical_path",
    "compute_global_slack",
    "critical_flags",
    "iter_edges",
    "node_time",
    "slack_histogram",
    "validate_timing",
]
