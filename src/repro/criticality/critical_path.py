"""Critical-path extraction and lost-cycle attribution (Fields model).

The Fields et al. critical-path model gives every dynamic instruction three
nodes -- dispatch (D), execute-complete (E) and commit (C) -- connected by
the constraints that actually gated them: in-order dispatch, misprediction
redirects, ROB/window pressure, operand dataflow, issue contention and
in-order commit.  The critical path is the chain of last-arriving
constraints that determines total runtime.

Because the simulator records *which* constraint gated every event
(``dispatch_reason``, ``last_arriving_producer``, ``commit_reason``), the
path here is recovered by a deterministic backward walk rather than a
longest-path search, and every cycle of runtime is attributed to exactly one
category.  Section 3 of the paper defines the attribution rules:

* crossing clusters on a critical operand costs the forwarding latency
  (``fwd_delay``);
* critical execute cycles not explained by functional-unit latency,
  forwarding or memory are contention (``contention``);
* dispatch gated by a mispredicted branch is ``br_mispredict``; by ROB or
  scheduling-window pressure, ``window``; by fetch bandwidth, ``fetch``;
* load latency beyond the L1 hit time is ``mem_latency``; the rest of an
  instruction's latency is ``execute``.

The invariant ``sum(breakdown) == total runtime`` is checked by tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.core.instruction import CommitReason, DispatchReason, InFlight

# Categories of Figure 5, plus 'commit' (in-order commit bandwidth), which
# the paper folds into its 'execute' segment.
CATEGORIES = (
    "fwd_delay",
    "contention",
    "execute",
    "window",
    "fetch",
    "mem_latency",
    "br_mispredict",
    "commit",
)


@dataclass
class CriticalPathResult:
    """Output of one backward walk."""

    breakdown: dict[str, int] = field(
        default_factory=lambda: {c: 0 for c in CATEGORIES}
    )
    critical_indices: set[int] = field(default_factory=set)
    total_cycles: int = 0

    @property
    def attributed_cycles(self) -> int:
        """Sum over all categories; equals ``total_cycles`` for a full walk."""
        return sum(self.breakdown.values())

    def merged_for_figure5(self) -> dict[str, int]:
        """The seven displayed categories (commit folded into execute)."""
        merged = dict(self.breakdown)
        merged["execute"] += merged.pop("commit")
        return merged


def analyze_critical_path(
    records: Sequence[InFlight],
    first_index: int | None = None,
) -> CriticalPathResult:
    """Walk the critical path backward from the last committed instruction.

    ``records`` must be a contiguous, committed slice of the trace.  The
    walk stops when it would cross below ``first_index`` (default: the first
    record), which supports chunked analysis for online training.
    """
    if not records:
        raise ValueError("no records to analyze")
    base = records[0].index
    if first_index is None:
        first_index = base
    by_index = records  # indexable by (trace index - base)

    def rec_at(index: int) -> InFlight | None:
        offset = index - base
        if offset < 0 or index < first_index or offset >= len(by_index):
            return None
        return by_index[offset]

    result = CriticalPathResult()
    last = records[-1]
    result.total_cycles = last.commit_time if base == 0 else (
        last.commit_time - records[0].dispatch_time
    )
    breakdown = result.breakdown
    critical = result.critical_indices

    # Walk state: a node kind, the instruction, and the wall-clock time of
    # the constraint chain so far.  'E_issue' enters an E node at its issue
    # point (used when a window slot freed by that issue gated dispatch).
    kind = "C"
    rec: InFlight | None = last
    time = last.commit_time

    while rec is not None:
        # An instruction counts as critical when its dispatch or execution
        # lies on the path; riding the in-order commit chain does not make
        # the instructions it passes critical (Fields et al. train their
        # detector on execution criticality).
        if kind != "C":
            critical.add(rec.index)
        if kind == "C":
            if (
                rec.commit_reason is CommitReason.COMMIT_ORDER
                and rec_at(rec.index - 1) is not None
            ):
                prev = rec_at(rec.index - 1)
                breakdown["commit"] += time - prev.commit_time
                rec, time = prev, prev.commit_time
                continue
            # Committed straight after completion: one commit cycle.
            breakdown["commit"] += time - rec.complete_time
            kind, time = "E", rec.complete_time
        elif kind == "E":
            # Decompose this instruction's own latency.
            breakdown["mem_latency"] += rec.mem_latency_extra
            breakdown["execute"] += rec.latency - rec.mem_latency_extra
            kind, time = "E_issue", rec.issue_time
        elif kind == "E_issue":
            breakdown["contention"] += time - rec.ready_time
            time = rec.ready_time
            producer_idx = rec.last_arriving_producer
            producer = rec_at(producer_idx) if producer_idx is not None else None
            if (
                producer is not None
                and rec.operand_avail == rec.ready_time
                and rec.operand_avail > rec.dispatch_time + 1
            ):
                if rec.critical_operand_forwarded:
                    fwd = rec.operand_avail - producer.complete_time
                    breakdown["fwd_delay"] += fwd
                rec, kind, time = producer, "E", producer.complete_time
            else:
                # Ready as soon as it entered the window: dispatch-bound.
                breakdown["execute"] += time - rec.dispatch_time
                kind, time = "D", rec.dispatch_time
        elif kind == "D":
            reason = rec.dispatch_reason
            pred = rec_at(rec.dispatch_pred) if rec.dispatch_pred is not None else None
            if reason is DispatchReason.START or pred is None:
                breakdown["fetch"] += time - (0 if base == 0 else time)
                break
            if reason is DispatchReason.FETCH_BANDWIDTH:
                breakdown["fetch"] += time - pred.dispatch_time
                rec, kind, time = pred, "D", pred.dispatch_time
            elif reason is DispatchReason.FETCH_REDIRECT:
                breakdown["br_mispredict"] += time - pred.complete_time
                rec, kind, time = pred, "E", pred.complete_time
            elif reason is DispatchReason.ROB_FULL:
                breakdown["window"] += time - pred.commit_time
                rec, kind, time = pred, "C", pred.commit_time
            else:  # CLUSTER_FULL or STEER_STALL: gated by a freeing issue.
                breakdown["window"] += time - pred.issue_time
                rec, kind, time = pred, "E_issue", pred.issue_time
        else:  # pragma: no cover - kinds are closed
            raise AssertionError(f"unknown node kind {kind}")

    return result


def critical_flags(
    records: Sequence[InFlight], chunk_size: int = 2048
) -> list[bool]:
    """Per-instruction criticality over a full run, via chunked walks.

    Mirrors the paper's sampling detector: the committed stream is analyzed
    in consecutive chunks and an instruction is critical when it lies on its
    chunk's critical path.
    """
    flags = [False] * len(records)
    base = records[0].index if records else 0
    for start in range(0, len(records), chunk_size):
        chunk = records[start : start + chunk_size]
        result = analyze_critical_path(chunk)
        for index in result.critical_indices:
            flags[index - base] = True
    return flags
