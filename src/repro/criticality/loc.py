"""The likelihood-of-criticality (LoC) predictor (Sections 4 and 7).

An instruction's LoC is the fraction of its past dynamic instances that were
critical.  Three storage modes are provided, matching the paper's Section 7
discussion:

* ``probabilistic`` -- 16 levels held in 4 bits with probabilistic counter
  updates (Riley & Zilles), the paper's proposed implementation;
* ``stratified`` -- exact counts quantized to 16 levels (the idealized
  version the probabilistic counter approximates);
* ``exact`` -- unlimited-precision frequency (the upper bound).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.util.counters import (
    ExactFrequencyCounter,
    ProbabilisticLevelCounter,
    StratifiedFrequencyCounter,
)
from repro.util.rng import seeded_rng

MODES = ("probabilistic", "stratified", "exact")


@dataclass
class LocPredictor:
    """PC-indexed estimator of the likelihood of criticality."""

    mode: str = "probabilistic"
    levels: int = 16
    seed: int = 0
    _table: dict[int, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.mode not in MODES:
            raise ValueError(f"unknown LoC mode {self.mode!r}; want one of {MODES}")
        if self.levels < 2:
            raise ValueError("need at least 2 LoC levels")

    def _new_counter(self, pc: int):
        if self.mode == "probabilistic":
            return ProbabilisticLevelCounter(
                levels=self.levels, rng=seeded_rng("loc", self.seed, pc)
            )
        if self.mode == "stratified":
            return StratifiedFrequencyCounter(levels=self.levels)
        return ExactFrequencyCounter()

    def train(self, pc: int, critical: bool) -> None:
        """Update the LoC estimate for ``pc`` with one observed instance."""
        counter = self._table.get(pc)
        if counter is None:
            counter = self._new_counter(pc)
            self._table[pc] = counter
        counter.train(critical)

    def value(self, pc: int) -> float:
        """Current LoC estimate in [0, 1]; 0.0 for never-seen PCs."""
        counter = self._table.get(pc)
        return counter.fraction if counter is not None else 0.0

    def known_pcs(self) -> list[int]:
        """PCs with at least one training event."""
        return list(self._table)

    def __len__(self) -> int:
        return len(self._table)


@dataclass
class PredictorSuite:
    """The binary and LoC predictors trained together from one detector.

    This is the object the simulator samples at dispatch
    (:meth:`predict_critical` / :meth:`loc`) and the trainer updates at
    retirement (:meth:`train`).
    """

    binary: "BinaryCriticalityPredictor" = None  # type: ignore[assignment]
    loc_predictor: LocPredictor = field(default_factory=LocPredictor)
    # Per-PC memo of the two dispatch-time queries.  Predictions are pure
    # functions of the per-PC counter state, so each entry stays valid until
    # the next :meth:`train` for that PC invalidates it.  Dispatch samples
    # every instruction but training arrives in retirement chunks, so the
    # memo turns the common re-query of a hot PC into one dict hit.
    _crit_memo: dict[int, bool] = field(default_factory=dict)
    _loc_memo: dict[int, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.binary is None:
            from repro.criticality.predictor import BinaryCriticalityPredictor

            self.binary = BinaryCriticalityPredictor()

    def train(self, pc: int, critical: bool) -> None:
        """Train both predictors with one detected instance."""
        self.binary.train(pc, critical)
        self.loc_predictor.train(pc, critical)
        self._crit_memo.pop(pc, None)
        self._loc_memo.pop(pc, None)

    def predict_critical(self, pc: int) -> bool:
        """Binary criticality prediction for ``pc``."""
        memo = self._crit_memo
        hit = memo.get(pc)
        if hit is None:
            hit = memo[pc] = self.binary.predict(pc)
        return hit

    def loc(self, pc: int) -> float:
        """Likelihood-of-criticality estimate for ``pc``."""
        memo = self._loc_memo
        hit = memo.get(pc)
        if hit is None:
            hit = memo[pc] = self.loc_predictor.value(pc)
        return hit
