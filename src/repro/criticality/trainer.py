"""Online criticality detection: the paper's sampling detector.

Fields et al. build a token-passing critical-path detector into the
pipeline; it samples the retiring stream and classifies sampled instructions
as critical or not, feeding the predictors.  We substitute the exact
analysis the detector approximates: the retiring stream is buffered into
consecutive chunks and each chunk's critical path is extracted with
:func:`repro.criticality.critical_path.analyze_critical_path`; every
instruction in the chunk then trains the predictors with its observed
criticality (DESIGN.md, substitution table).
"""

from __future__ import annotations

from repro.core.instruction import InFlight
from repro.criticality.critical_path import analyze_critical_path
from repro.criticality.loc import PredictorSuite


class ChunkedCriticalityTrainer:
    """Buffers committed instructions; trains predictors per chunk."""

    def __init__(self, suite: PredictorSuite, chunk_size: int = 2048):
        if chunk_size < 2:
            raise ValueError("chunk_size must be at least 2")
        self.suite = suite
        self.chunk_size = chunk_size
        self._buffer: list[InFlight] = []
        self.chunks_processed = 0
        self.instances_trained = 0

    def on_commit(self, record: InFlight) -> None:
        """Observe one retiring instruction (simulator hook)."""
        self._buffer.append(record)
        if len(self._buffer) >= self.chunk_size:
            self._train_chunk()

    def finish(self) -> None:
        """Flush the trailing partial chunk at the end of a run."""
        if len(self._buffer) > 1:
            self._train_chunk()
        self._buffer.clear()

    def _train_chunk(self) -> None:
        chunk = self._buffer
        result = analyze_critical_path(chunk)
        critical = result.critical_indices
        train = self.suite.train
        for record in chunk:
            train(record.instr.pc, record.index in critical)
        self.instances_trained += len(chunk)
        self.chunks_processed += 1
        self._buffer = []


class NullTrainer:
    """A trainer that observes nothing (frozen predictors)."""

    def on_commit(self, record: InFlight) -> None:
        pass

    def finish(self) -> None:
        pass
