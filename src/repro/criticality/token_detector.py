"""Token-passing criticality detector (Fields, Rubin & Bodik, ISCA 2001).

The paper's Section 8 notes that "dynamic profiling of the critical path
requires that a token-passing predictor be built into the pipeline".  This
module implements that hardware mechanism: plant a token at a sampled
instruction's E node, propagate it forward only along *last-arriving*
edges, and declare the origin critical if the token is still alive after a
fixed distance.  A token that dies means some other chain determined the
machine's progress, i.e. the origin had slack.

Our simulator records each event's gating cause, so propagation is exact:
a committing instruction's nodes inherit a token precisely when their
recorded last-arriving predecessor holds it.  Commits happen in program
order and every gating predecessor is older, so one pass over the retiring
stream suffices -- exactly the pipeline-integrated detector the paper
assumes, in contrast to the chunked offline analysis of
:class:`repro.criticality.trainer.ChunkedCriticalityTrainer` (the two are
compared by ``benchmarks/test_ablation_detector.py``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.instruction import CommitReason, DispatchReason, InFlight
from repro.criticality.loc import PredictorSuite

# Node kinds, matching the Fields three-node model.
_D, _E, _C = 0, 1, 2


@dataclass
class _Token:
    origin_index: int
    origin_pc: int
    planted_at: int  # commit sequence number
    holders: set = None  # {(kind, trace index)} currently holding this token
    newest_holder: int = 0


class TokenPassingTrainer:
    """Online criticality detector with the simulator trainer interface.

    Every ``plant_interval`` commits, a token is planted at the committing
    instruction's E node (up to ``num_tokens`` live at once -- Fields'
    detector uses a token array).  Each token propagates along
    last-arriving edges; if any node still holds it ``survival_distance``
    commits later, the origin instruction trains critical, otherwise
    non-critical.
    """

    #: In-order commit bounds co-residence: a node of instruction j can
    #: only gate instructions dispatched while j was still in flight, i.e.
    #: within ROB-size trace indices.
    GATING_RANGE = 256

    def __init__(
        self,
        suite: PredictorSuite,
        plant_interval: int = 32,
        survival_distance: int = 384,
        num_tokens: int = 8,
    ):
        if plant_interval < 1:
            raise ValueError("plant_interval must be positive")
        if num_tokens < 1:
            raise ValueError("need at least one token slot")
        if survival_distance <= self.GATING_RANGE:
            raise ValueError(
                "survival_distance must exceed the gating range "
                f"({self.GATING_RANGE}): a stranded token can only be "
                "detected dead once its newest holder falls out of range"
            )
        self.suite = suite
        self.plant_interval = plant_interval
        self.survival_distance = survival_distance
        self.num_tokens = num_tokens
        self._tokens: list[_Token] = []
        self._commits = 0
        self.tokens_planted = 0
        self.tokens_survived = 0
        self.tokens_resolved = 0

    # ------------------------------------------------------------------
    # Trainer interface
    # ------------------------------------------------------------------
    def on_commit(self, record: InFlight) -> None:
        """Observe one retiring instruction."""
        self._commits += 1
        live = []
        for token in self._tokens:
            self._propagate(token, record)
            if not self._resolve_if_due(token, record.index):
                live.append(token)
        self._tokens = live
        if (
            len(self._tokens) < self.num_tokens
            and self._commits % self.plant_interval == 0
        ):
            self._plant(record)

    def finish(self) -> None:
        """Resolve trailing tokens at the end of a run."""
        for token in self._tokens:
            # Survived to the end of the run if anything still holds it.
            self._train(token, bool(token.holders))
        self._tokens = []

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _plant(self, record: InFlight) -> None:
        # Seed the E node only: survival must mean the origin's *execution*
        # gated later progress.  Seeding C as well would let a dead token
        # ride the in-order commit chain (whose timing the origin did not
        # determine) and regain life through ROB-full gating.
        self._tokens.append(
            _Token(
                origin_index=record.index,
                origin_pc=record.instr.pc,
                planted_at=self._commits,
                holders={(_E, record.index)},
                newest_holder=record.index,
            )
        )
        self.tokens_planted += 1

    def _propagate(self, token: _Token, record: InFlight) -> None:
        """Inherit the token onto this record's nodes where last-arriving
        predecessors hold it."""
        holders = token.holders
        index = record.index
        inherited = False

        # D node: gated by fetch order, a redirect, ROB release or a
        # window-freeing issue -- all recorded with their predecessor.
        pred = record.dispatch_pred
        reason = record.dispatch_reason
        d_holds = False
        if pred is not None:
            if reason is DispatchReason.FETCH_BANDWIDTH:
                d_holds = (_D, pred) in holders
            elif reason is DispatchReason.FETCH_REDIRECT:
                d_holds = (_E, pred) in holders
            elif reason is DispatchReason.ROB_FULL:
                d_holds = (_C, pred) in holders
            else:  # CLUSTER_FULL / STEER_STALL: gated by a freeing issue
                d_holds = (_E, pred) in holders
        if d_holds:
            holders.add((_D, index))
            inherited = True

        # E node: gated by the dispatch (window entry) or the last-arriving
        # operand.
        operand_gated = (
            record.last_arriving_producer is not None
            and record.operand_avail == record.ready_time
            and record.operand_avail > record.dispatch_time + 1
        )
        if operand_gated:
            e_holds = (_E, record.last_arriving_producer) in holders
        else:
            e_holds = d_holds
        if e_holds:
            holders.add((_E, index))
            inherited = True

        # C node: gated by completion or by the previous commit.  C-chain
        # inheritance keeps the token available for ROB-full gating but
        # does not by itself count as survival: riding the in-order commit
        # chain is not execution criticality (same convention as the
        # chunked analysis and Figure 8).
        if record.commit_reason is CommitReason.COMMIT_ORDER:
            c_holds = (_C, index - 1) in holders
        else:
            c_holds = e_holds
        if c_holds:
            holders.add((_C, index))

        if inherited and index > token.newest_holder:
            token.newest_holder = index
        # Hardware keeps a small window of token state; prune nodes too old
        # to gate anything still in flight.
        if len(holders) > 2048:
            cutoff = index - self.GATING_RANGE
            token.holders = {h for h in holders if h[1] >= cutoff}

    def _resolve_if_due(self, token: _Token, current_index: int) -> bool:
        """Resolve the token if its fate is known; True when resolved."""
        age = self._commits - token.planted_at
        # A token whose newest holder has fallen out of gating range is
        # dead; one that kept propagating for the survival distance marks
        # its origin critical.
        dead = current_index - token.newest_holder > self.GATING_RANGE
        if dead or not token.holders:
            self._train(token, False)
            return True
        if age >= self.survival_distance:
            self._train(token, True)
            return True
        return False

    def _train(self, token: _Token, survived: bool) -> None:
        self.suite.train(token.origin_pc, survived)
        self.tokens_resolved += 1
        if survived:
            self.tokens_survived += 1

    @property
    def survival_rate(self) -> float:
        """Fraction of resolved tokens that survived (criticality rate)."""
        if not self.tokens_resolved:
            return 0.0
        return self.tokens_survived / self.tokens_resolved
