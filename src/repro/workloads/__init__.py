"""Synthetic workloads standing in for the SPEC CPU2000 integer suite."""

from repro.workloads.common import DEFAULT_INSTRUCTIONS, KernelSpec, random_cycle
from repro.workloads.suite import BY_NAME, SUITE, get_kernel, suite_names

__all__ = [
    "BY_NAME",
    "DEFAULT_INSTRUCTIONS",
    "KernelSpec",
    "SUITE",
    "get_kernel",
    "random_cycle",
    "suite_names",
]
