"""Language-processing kernels: gcc, parser and perl.

These are the branchy, short-dataflow-chain benchmarks: control decides
performance more than arithmetic does, so their critical paths are
fetch/branch-dominated and their clustering penalties are comparatively
small -- matching the paper's Figure 4, where gcc and parser sit near the
middle of the pack.
"""

from __future__ import annotations

import random

from repro.workloads.common import KernelSpec

_GCC_SOURCE = """
# Switch-dispatch over random operation codes (a 4-way compare ladder).
# Input words at 0..8191; result stores at 16384+.
outer:
    li   r2, 0
    li   r9, 0
inner:
    ld   r4, 0(r2)
    addi r2, r2, 1
    andi r2, r2, 8191
    andi r5, r4, 3
    cmpeqi r6, r5, 0
    bne  r6, case0
    cmpeqi r6, r5, 1
    bne  r6, case1
    cmpeqi r6, r5, 2
    bne  r6, case2
    xor  r7, r7, r4
    br   join
case0:
    addi r7, r7, 3
    br   join
case1:
    sub  r7, r7, r4
    br   join
case2:
    srli r8, r4, 2
    add  r7, r7, r8
    br   join
join:
    st   r7, 16384(r9)
    addi r9, r9, 1
    andi r9, r9, 2047
    bne  r2, inner
    br   outer
"""


def _gcc_setup(rng: random.Random) -> tuple[dict[int, float], dict[int, float]]:
    memory = {i: rng.getrandbits(16) for i in range(8192)}
    return memory, {}


_PARSER_SOURCE = """
# Bracket-matching over a token stream with an explicit stack.
# Tokens at 0..8191 (0 = open, 1 = close, else word); stack at 32768+.
outer:
    li   r2, 0
    li   r3, 32768
inner:
    ld   r4, 0(r2)
    addi r2, r2, 1
    andi r2, r2, 8191
    cmpeqi r5, r4, 0
    bne  r5, open
    cmpeqi r5, r4, 1
    bne  r5, close
    muli r6, r4, 31         # word: accumulate a hash
    add  r7, r7, r6
    br   next
open:
    st   r7, 0(r3)          # push partial hash
    addi r3, r3, 1
    li   r7, 0
    br   next
close:
    subi r3, r3, 1
    ld   r8, 0(r3)          # pop (store-to-load dependence)
    add  r7, r7, r8
    br   next
next:
    bne  r2, inner
    br   outer
"""


def _parser_setup(rng: random.Random) -> tuple[dict[int, float], dict[int, float]]:
    memory: dict[int, float] = {}
    depth = 0
    for i in range(8192):
        roll = rng.random()
        if roll < 0.15 and depth < 900:
            token = 0  # open
            depth += 1
        elif roll < 0.30 and depth > 0:
            token = 1  # close
            depth -= 1
        else:
            token = rng.randrange(2, 512)
        memory[i] = token
    # The stream wraps around; leave whatever imbalance remains -- the
    # stack region is large enough that drift over one trace is harmless.
    return memory, {}


_PERL_SOURCE = """
# Bytecode interpreter: 4 opcodes over 16 virtual registers.
# Opcodes at 0..4095, operands at 8192..12287, vregs at 40960..40975.
outer:
    li   r2, 0
inner:
    ld   r4, 0(r2)          # opcode
    ld   r5, 8192(r2)       # operand
    addi r2, r2, 1
    andi r2, r2, 4095
    cmpeqi r6, r4, 0
    bne  r6, op_mul
    cmpeqi r6, r4, 1
    bne  r6, op_load
    cmpeqi r6, r4, 2
    bne  r6, op_store
    xor  r7, r7, r5         # default: xor accumulator
    br   next
op_mul:
    mul  r7, r7, r10        # hash-mix: serial multiply through the acc
    add  r7, r7, r5
    br   next
op_load:
    andi r8, r5, 15
    ld   r7, 40960(r8)
    br   next
op_store:
    andi r8, r5, 15
    st   r7, 40960(r8)
    br   next
next:
    bne  r2, inner
    br   outer
"""


def _perl_setup(rng: random.Random) -> tuple[dict[int, float], dict[int, float]]:
    memory: dict[int, float] = {}
    for i in range(4096):
        # Opcode mix is skewed (interpreters execute a few hot ops most of
        # the time), so the dispatch ladder is largely predictable and the
        # accumulator's serial multiply chain carries the criticality.
        memory[i] = rng.choices((0, 1, 2, 3), weights=(60, 14, 13, 13))[0]
        memory[8192 + i] = rng.getrandbits(16)
    for v in range(16):
        memory[40960 + v] = rng.getrandbits(16)
    # r10: the hash-mix multiplier.
    return memory, {10: 31}


GCC = KernelSpec(
    name="gcc",
    description="switch dispatch over random operation codes",
    paper_feature="branchy, short dataflow chains; fetch-critical regions",
    source=_GCC_SOURCE,
    setup=_gcc_setup,
)

PARSER = KernelSpec(
    name="parser",
    description="bracket matching with an explicit stack",
    paper_feature="store-to-load dependences and mixed-predictability "
    "branches",
    source=_PARSER_SOURCE,
    setup=_parser_setup,
)

PERL = KernelSpec(
    name="perl",
    description="bytecode interpreter dispatch loop",
    paper_feature="interpreter dispatch mispredictions; benefits from "
    "stall-over-steer (Section 7)",
    source=_PERL_SOURCE,
    setup=_perl_setup,
)
