"""Data-structure and arithmetic kernels: mcf, vortex, gap and eon.

* ``mcf`` is a cache-hostile linked-list walk (network-simplex node
  scanning): serial loads over a footprint far larger than the L1, so the
  critical path is memory latency -- clustering barely matters, as in the
  paper's Figure 4 where mcf shows the smallest penalty.
* ``vortex`` is an object-database field-update loop: high-ILP independent
  iterations dominated by memory ports.
* ``gap`` carries a serial integer-multiply recurrence (big-number
  arithmetic) next to an independent reduction rib -- a clearly-identified
  critical chain, the shape stall-over-steer rewards.
* ``eon`` is the floating-point-leaning kernel (the one SPECint program
  with real FP content), exercising the clusters' FP ports.
"""

from __future__ import annotations

import random

from repro.workloads.common import KernelSpec, random_cycle

_MCF_SOURCE = """
# Linked-list walk over nodes scattered across a ~1MB footprint.
# node+0: next pointer; the cost field lives on a separate cache line
# (node+8) so the pointer load itself always takes the miss -- the walk's
# critical path is memory latency in every configuration.
outer:
    li   r2, 32
inner:
    ld   r4, 8(r2)          # cost (different line from the pointer)
    ld   r2, 0(r2)          # next (serial, cache-missing)
    add  r5, r5, r4
    bne  r2, inner
    br   outer
"""


def _mcf_setup(rng: random.Random) -> tuple[dict[int, float], dict[int, float]]:
    # 8000 nodes, two cache lines each (pointer line + cost line), spread
    # over ~1 MiB -- far beyond the 32 KiB L1, so nearly every hop misses.
    slots = list(range(32, 32 + 16 * 8000, 16))
    memory: dict[int, float] = dict(random_cycle(rng, slots))
    for slot in slots:
        memory[slot + 8] = rng.randrange(100)
    return memory, {}


_VORTEX_SOURCE = """
# Object-database field updates over two independent record streams
# (r2 walks records 0..4095, r3 walks records 4096..8191): high ILP,
# memory-port heavy, fully predictable control.
outer:
    li   r2, 0
    li   r3, 4096
inner:
    ld   r4, 0(r2)
    ld   r5, 1(r2)
    add  r6, r4, r5
    muli r6, r6, 3
    addi r6, r6, 11
    st   r6, 2(r2)
    ld   r14, 0(r3)
    ld   r15, 1(r3)
    add  r16, r14, r15
    muli r16, r16, 5
    addi r16, r16, 7
    st   r16, 2(r3)
    xor  r9, r9, r6
    addi r2, r2, 8
    andi r2, r2, 4095
    addi r3, r3, 8
    andi r3, r3, 8191
    ori  r3, r3, 4096
    bne  r2, inner
    br   outer
"""


def _vortex_setup(rng: random.Random) -> tuple[dict[int, float], dict[int, float]]:
    memory = {i: rng.getrandbits(16) for i in range(8192)}
    return memory, {}


_GAP_SOURCE = """
# Big-number arithmetic: a serial multiply recurrence (the critical spine)
# beside an independent array reduction (the ribs).
outer:
    li   r2, 0
    li   r4, 12345
inner:
    mul  r4, r4, r10        # 7-cycle serial recurrence
    addi r4, r4, 40643
    ld   r6, 0(r2)          # independent reduction rib
    add  r7, r7, r6
    addi r2, r2, 1
    andi r2, r2, 8191
    srli r8, r4, 13
    andi r8, r8, 7
    bne  r8, skip           # depends on the spine; taken 7/8
    addi r9, r9, 1
    st   r9, 16384(r2)
skip:
    bne  r2, inner
    br   outer
"""


def _gap_setup(rng: random.Random) -> tuple[dict[int, float], dict[int, float]]:
    memory = {i: rng.getrandbits(16) for i in range(8192)}
    # r10 holds the LCG-style multiplier for the recurrence.
    return memory, {10: 1664525}


_EON_SOURCE = """
# Ray-shading arithmetic: FP multiply/add chains over two input arrays.
# FP inputs at 0..4095 and 4096..8191; results stored at 8192+.
outer:
    li   r2, 0
inner:
    fld  f1, 0(r2)
    fld  f2, 4096(r2)
    fmul f3, f1, f0         # f0: attenuation constant
    fadd f4, f3, f2
    fmul f5, f4, f4
    fadd f6, f6, f5         # serial 4-cycle accumulation spine
    fst  f5, 8192(r2)
    cvtfi r4, f5
    andi r5, r4, 15
    cmpeqi r6, r5, 3
    bne  r6, rare           # ~1/16 taken, data-dependent
back:
    addi r2, r2, 1
    andi r2, r2, 4095
    bne  r2, inner
    br   outer
rare:
    addi r7, r7, 1
    br   back
"""


def _eon_setup(rng: random.Random) -> tuple[dict[int, float], dict[int, float]]:
    memory: dict[int, float] = {}
    for i in range(4096):
        memory[i] = rng.uniform(0.5, 2.0)
        memory[4096 + i] = rng.uniform(0.0, 1.0)
    # f0 (register id 32) holds the attenuation constant.
    return memory, {32: 0.875}


MCF = KernelSpec(
    name="mcf",
    description="cache-hostile linked-list walk",
    paper_feature="memory-latency-bound critical path; minimal clustering "
    "sensitivity",
    source=_MCF_SOURCE,
    setup=_mcf_setup,
)

VORTEX = KernelSpec(
    name="vortex",
    description="object-database field updates",
    paper_feature="high-ILP independent work; load balance matters more "
    "than locality",
    source=_VORTEX_SOURCE,
    setup=_vortex_setup,
)

GAP = KernelSpec(
    name="gap",
    description="serial multiply recurrence beside a reduction",
    paper_feature="clearly identifiable execute-critical chain "
    "(stall-over-steer shows large gains, Section 7)",
    source=_GAP_SOURCE,
    setup=_gap_setup,
)

EON = KernelSpec(
    name="eon",
    description="floating-point shading arithmetic",
    paper_feature="floating-point port pressure on narrow clusters",
    source=_EON_SOURCE,
    setup=_eon_setup,
)
