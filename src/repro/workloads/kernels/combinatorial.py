"""Combinatorial-search kernels: crafty, twolf and vpr.

* ``vpr`` reproduces the paper's Figure 7 (the ``get_heap_head()`` loop): a
  pointer-chase spine through a heap with ribs that terminate in stores and
  a hard-to-predict branch.  The rib head and the spine step consume the
  same source register, which is exactly the contention pathology LoC
  scheduling fixes (Section 4).
* ``twolf`` is a placement cost loop with a dataflow hammock: one value
  feeds two short consumer chains that reconverge at a dyadic consumer.
* ``crafty`` is a bitboard evaluation: wide logical dataflow with a
  dependent table lookup and convergent dyadics.
"""

from __future__ import annotations

import random

from repro.workloads.common import KernelSpec, random_cycle

_VPR_SOURCE = """
# Heap walk: chain links in words 0..4095 (cycle), element data at 8192+i,
# rib stores to 16384+ and 24576+.
# r2: heap cursor (the spine), r6: store cursor.
outer:
    li   r2, 1
    li   r6, 0
inner:
    ld   r4, 8192(r2)       # rib head 'a': consumes r2
    ld   r2, 0(r2)          # spine 'b': consumes r2 (loop-carried)
    cmplti r5, r4, 200      # data-dependent: ~20% taken
    bne  r5, skip
    muli r7, r4, 3          # rib body
    addi r7, r7, 7
    st   r7, 16384(r6)
skip:
    add  r8, r8, r4
    st   r8, 24576(r6)
    addi r6, r6, 1
    andi r6, r6, 4095
    bne  r2, inner
    br   outer
"""


def _vpr_setup(rng: random.Random) -> tuple[dict[int, float], dict[int, float]]:
    memory: dict[int, float] = dict(random_cycle(rng, list(range(1, 4096))))
    for i in range(4096):
        memory[8192 + i] = rng.randrange(1000)
    return memory, {}


_TWOLF_SOURCE = """
# Placement cost: |a - b| hammock plus a multiply rib.
# Cell data at 0..8191 and 8192..16383; cost stores at 16384+.
outer:
    li   r2, 0
    li   r10, 0
inner:
    ld   r4, 0(r2)
    ld   r5, 8192(r2)
    sub  r6, r4, r5         # hammock producer
    cmplti r7, r6, 0
    bne  r7, neg            # ~35% taken, data-dependent
    add  r8, r8, r6         # then-chain
    br   join
neg:
    sub  r8, r8, r6         # else-chain
    br   join
join:
    muli r9, r6, 13         # reconvergent consumer
    st   r9, 16384(r10)
    addi r10, r10, 1
    andi r10, r10, 4095
    addi r2, r2, 1
    andi r2, r2, 8191
    bne  r2, inner
    br   outer
"""


def _twolf_setup(rng: random.Random) -> tuple[dict[int, float], dict[int, float]]:
    memory: dict[int, float] = {}
    for i in range(8192):
        memory[i] = rng.randrange(1000)
        # Bias so a - b < 0 about 35% of the time.
        memory[8192 + i] = rng.randrange(700)
    return memory, {}


_CRAFTY_SOURCE = """
# Bitboard evaluation: logical ops over two boards, a dependent table
# lookup, and a population-style data-dependent branch.
# Boards at 0..4095 and 4096..8191; lookup table at 8192..12287.
outer:
    li   r2, 0
inner:
    ld   r4, 0(r2)          # board A
    ld   r5, 4096(r2)       # board B
    and  r6, r4, r5
    xor  r7, r4, r5
    srli r8, r6, 7
    xor  r9, r8, r7         # convergent dyadic
    andi r10, r9, 4095
    ld   r11, 8192(r10)     # dependent table lookup
    or   r12, r12, r11
    andi r13, r11, 7
    bne  r13, skip          # taken 7/8: occasional surprise
    addi r14, r14, 1
    st   r14, 12288(r2)
skip:
    addi r2, r2, 1
    andi r2, r2, 4095
    bne  r2, inner
    br   outer
"""


def _crafty_setup(rng: random.Random) -> tuple[dict[int, float], dict[int, float]]:
    memory: dict[int, float] = {}
    for i in range(4096):
        memory[i] = rng.getrandbits(48)
        memory[4096 + i] = rng.getrandbits(48)
        memory[8192 + i] = rng.getrandbits(16)
    return memory, {}


VPR = KernelSpec(
    name="vpr",
    description="heap walk with spine-and-ribs dataflow",
    paper_feature="spine/rib contention between equally-predicted-critical "
    "instructions (Figures 7 and 10)",
    source=_VPR_SOURCE,
    setup=_vpr_setup,
)

TWOLF = KernelSpec(
    name="twolf",
    description="placement cost with an absolute-value hammock",
    paper_feature="dataflow hammocks on the critical path (Section 7)",
    source=_TWOLF_SOURCE,
    setup=_twolf_setup,
)

CRAFTY = KernelSpec(
    name="crafty",
    description="bitboard evaluation with dependent table lookups",
    paper_feature="convergent dyadic dataflow (Section 2.2)",
    source=_CRAFTY_SOURCE,
    setup=_crafty_setup,
)
