"""The twelve SPECint-like workload kernels."""

from repro.workloads.kernels.combinatorial import CRAFTY, TWOLF, VPR
from repro.workloads.kernels.compression import BZIP2, GZIP
from repro.workloads.kernels.data import EON, GAP, MCF, VORTEX
from repro.workloads.kernels.language import GCC, PARSER, PERL

__all__ = [
    "BZIP2",
    "CRAFTY",
    "EON",
    "GAP",
    "GCC",
    "GZIP",
    "MCF",
    "PARSER",
    "PERL",
    "TWOLF",
    "VORTEX",
    "VPR",
]
