"""Compression kernels: bzip2 (convergent dataflow) and gzip (serial chains).

* ``bzip2`` reproduces the paper's Figure 3: two independent load chains
  (comparing two buffers) converge at a dyadic ``xor`` feeding a
  data-dependent branch.  The branch is biased strongly not-taken with
  random surprises, so its mispredicted instances put the convergent slice
  on the critical path.
* ``gzip`` is an LZ hash-chain match loop: a serial pointer-chase spine with
  a byte-compare rib.  ILP is ~1 and fetch runs far ahead of execution --
  the execute-critical shape for which Section 5's stall-over-steer policy
  shows a 20% gain.
"""

from __future__ import annotations

import random

from repro.workloads.common import KernelSpec, random_cycle

_BZIP2_SOURCE = """
# Compare buffers A (words 0..8191) and B (words 8192..16383).
# r2: index into A, r3: index into B, r7: store cursor, r9: match count.
outer:
    li   r2, 0
    li   r3, 8192
inner:
    ld   r4, 0(r2)          # chain 1: A[i]
    ld   r5, 0(r3)          # chain 2: B[i]
    addi r2, r2, 1
    addi r3, r3, 1
    xor  r6, r4, r5         # convergent dyadic (Figure 3 node 7)
    bne  r6, diff           # mostly equal; random surprises mispredict
    addi r9, r9, 1
    cmplti r8, r2, 8192
    bne  r8, inner
    br   outer
diff:
    st   r6, 16384(r7)      # record the difference
    addi r7, r7, 1
    andi r7, r7, 4095
    cmplti r8, r2, 8192
    bne  r8, inner
    br   outer
"""


def _bzip2_setup(rng: random.Random) -> tuple[dict[int, float], dict[int, float]]:
    memory: dict[int, float] = {}
    for i in range(8192):
        value = rng.randrange(1, 1 << 16)
        memory[i] = value
        # ~6% of positions differ, at random, so the compare branch is
        # biased but occasionally surprises the predictor.
        memory[8192 + i] = value ^ 1 if rng.random() < 0.06 else value
    return memory, {}


_GZIP_SOURCE = """
# Hash-chain match search.  chain links live in words 0..16383 (a cycle),
# candidate bytes at 16384+i, target bytes at 40960+k.
# r2: chain position, r7: target byte, r8: target cursor, r9: match count.
outer:
    li   r8, 0
restart:
    ld   r7, 40960(r8)
    li   r2, 7
inner:
    ld   r4, 16384(r2)      # candidate byte at this chain position
    cmpeq r5, r4, r7
    bne  r5, match          # rare: ~1/64 probes
    ld   r2, 0(r2)          # follow the chain: serial 3-cycle spine
    bne  r2, inner
    br   restart
match:
    addi r9, r9, 1
    addi r8, r8, 1
    andi r8, r8, 1023
    br   restart
"""


def _gzip_setup(rng: random.Random) -> tuple[dict[int, float], dict[int, float]]:
    memory: dict[int, float] = dict(
        random_cycle(rng, list(range(1, 16384)))
    )
    for i in range(16384):
        memory[16384 + i] = rng.randrange(64)
    for k in range(1024):
        memory[40960 + k] = rng.randrange(64)
    return memory, {}


BZIP2 = KernelSpec(
    name="bzip2",
    description="buffer comparison with biased inequality branch",
    paper_feature="convergent dataflow into a mispredicted branch (Figure 3)",
    source=_BZIP2_SOURCE,
    setup=_bzip2_setup,
)

GZIP = KernelSpec(
    name="gzip",
    description="LZ hash-chain match search",
    paper_feature="execute-critical serial dependence chain (Section 5)",
    source=_GZIP_SOURCE,
    setup=_gzip_setup,
)
