"""The benchmark suite registry (the paper's 12 SPECint benchmarks)."""

from __future__ import annotations

from repro.workloads.common import KernelSpec
from repro.workloads.kernels import (
    BZIP2,
    CRAFTY,
    EON,
    GAP,
    GCC,
    GZIP,
    MCF,
    PARSER,
    PERL,
    TWOLF,
    VORTEX,
    VPR,
)

# Paper ordering (alphabetical, as in every figure).
SUITE: tuple[KernelSpec, ...] = (
    BZIP2,
    CRAFTY,
    EON,
    GAP,
    GCC,
    GZIP,
    MCF,
    PARSER,
    PERL,
    TWOLF,
    VORTEX,
    VPR,
)

BY_NAME: dict[str, KernelSpec] = {spec.name: spec for spec in SUITE}


def get_kernel(name: str) -> KernelSpec:
    """Look up a kernel by benchmark name."""
    try:
        return BY_NAME[name]
    except KeyError:
        known = ", ".join(sorted(BY_NAME))
        raise KeyError(f"unknown kernel {name!r}; known: {known}") from None


def suite_names() -> list[str]:
    """Benchmark names in figure order."""
    return [spec.name for spec in SUITE]
