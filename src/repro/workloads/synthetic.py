"""Parameterized synthetic workloads: a controlled dial for dataflow shape.

The twelve suite kernels imitate specific benchmarks; this module generates
kernels to order, which is what the paper's Figure 15 analysis really
needs -- code whose *available ILP is known by construction*:

* ``chains`` independent recurrences set the available ILP;
* ``chain_op`` sets their latency (``add`` = 1 cycle, ``mul`` = 7);
* ``loads_per_iteration`` adds memory traffic over a configurable working
  set;
* ``rib_ops`` hang single-use consumers off the chains (slack);
* ``branch_bias`` controls a data-dependent branch (1.0 disables it).

Used by ``benchmarks/test_synthetic_ilp.py`` to sweep available ILP across
the machine width and reproduce Figure 15's sag under controlled
conditions.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.workloads.common import KernelSpec

_MAX_CHAINS = 8  # chain registers r1..r8
_POINTER_REG = "r9"
_CONST_REG = "r10"  # multiplier for mul chains
_RIB_BASE = 11  # rib registers r11..
_DATA_WORDS_BASE = 0
_STORE_BASE = 32768


@dataclass(frozen=True)
class SyntheticConfig:
    """Shape parameters for a generated kernel."""

    chains: int = 4
    chain_op: str = "add"  # 'add' (1 cycle) or 'mul' (7 cycles)
    rib_ops: int = 2
    loads_per_iteration: int = 1
    working_set_words: int = 4096
    branch_bias: float = 1.0  # probability the branch goes the common way
    seed_tag: str = ""

    def __post_init__(self) -> None:
        if not 1 <= self.chains <= _MAX_CHAINS:
            raise ValueError(f"chains must be in 1..{_MAX_CHAINS}")
        if self.chain_op not in ("add", "mul"):
            raise ValueError("chain_op must be 'add' or 'mul'")
        if self.rib_ops < 0 or self.loads_per_iteration < 0:
            raise ValueError("rib_ops and loads_per_iteration must be >= 0")
        if not 0.5 <= self.branch_bias <= 1.0:
            raise ValueError("branch_bias must be in [0.5, 1.0]")
        if self.working_set_words < 16:
            raise ValueError("working set too small")

    @property
    def name(self) -> str:
        parts = [
            f"syn-{self.chains}x{self.chain_op}",
            f"r{self.rib_ops}",
            f"l{self.loads_per_iteration}",
        ]
        if self.branch_bias < 1.0:
            parts.append(f"b{int(self.branch_bias * 100)}")
        if self.seed_tag:
            parts.append(self.seed_tag)
        return "-".join(parts)


def build_synthetic(config: SyntheticConfig) -> KernelSpec:
    """Generate a :class:`KernelSpec` for ``config``."""
    lines = ["outer:", f"    li   {_POINTER_REG}, 0"]
    lines.append("inner:")

    # The recurrences: one op per chain per iteration.
    for chain in range(config.chains):
        reg = f"r{1 + chain}"
        if config.chain_op == "add":
            lines.append(f"    addi {reg}, {reg}, {3 + chain}")
        else:
            lines.append(f"    mul  {reg}, {reg}, {_CONST_REG}")

    # Loads over the working set (pointer-strided, wrap by mask).
    for load in range(config.loads_per_iteration):
        reg = f"r{_RIB_BASE + load}"
        lines.append(f"    ld   {reg}, {load * 8}({_POINTER_REG})")

    # Dead-end rib work consuming chain values.
    for rib in range(config.rib_ops):
        src = f"r{1 + (rib % config.chains)}"
        dst = f"r{_RIB_BASE + config.loads_per_iteration + rib}"
        lines.append(f"    xori {dst}, {src}, {0x55 + rib}")

    # Optional data-dependent branch on the first loaded value.
    if config.branch_bias < 1.0 and config.loads_per_iteration > 0:
        threshold = int(1000 * config.branch_bias)
        lines.extend(
            [
                f"    cmplti r30, r{_RIB_BASE}, {threshold}",
                "    bne  r30, common",
                f"    st   r{_RIB_BASE}, {_STORE_BASE}({_POINTER_REG})",
                "common:",
            ]
        )

    mask = config.working_set_words - 1
    lines.extend(
        [
            f"    addi {_POINTER_REG}, {_POINTER_REG}, 16",
            f"    andi {_POINTER_REG}, {_POINTER_REG}, {mask}",
            f"    bne  {_POINTER_REG}, inner",
            "    br   outer",
        ]
    )
    source = "\n".join(lines)

    words = config.working_set_words

    def setup(rng: random.Random):
        memory = {i: rng.randrange(1000) for i in range(words)}
        regs = {10: 31}  # the mul-chain multiplier
        for chain in range(config.chains):
            regs[1 + chain] = rng.randrange(1, 1 << 20)
        return memory, regs

    return KernelSpec(
        name=config.name,
        description=f"synthetic kernel ({config.chains} {config.chain_op} "
        f"chains, {config.loads_per_iteration} loads/iter)",
        paper_feature="controlled available ILP (Figure 15 methodology)",
        source=source,
        setup=setup,
        memory_words=max(1 << 17, _STORE_BASE + words + 16),
    )


def ilp_sweep_configs(
    chain_counts=(1, 2, 3, 4, 6, 8), chain_op: str = "add"
) -> list[SyntheticConfig]:
    """Configs whose available ILP sweeps across the machine width."""
    return [
        SyntheticConfig(chains=count, chain_op=chain_op, rib_ops=0,
                        loads_per_iteration=0)
        for count in chain_counts
    ]
