"""Workload kernel infrastructure.

The paper evaluates the 12 SPEC CPU2000 integer benchmarks.  Those binaries
and traces are not available, so each benchmark is substituted by a kernel
written in the mini ISA that exhibits the dataflow feature the paper
attributes to it (convergent dataflow in bzip2, spine-and-ribs hammocks in
vpr, pointer chasing in mcf, ...).  Kernels execute real data-dependent
control flow over seeded random data, so branch mispredictions come from the
gshare predictor, not from annotations.

Every kernel is an infinite outer loop; traces are produced by truncating
execution at a requested dynamic instruction count, which samples
steady-state behaviour cleanly.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable

from repro.util.rng import seeded_rng
from repro.vm.assembler import Program, assemble
from repro.vm.interpreter import run
from repro.vm.trace import DynamicInstruction

# (initial memory word -> value, initial register id -> value)
SetupFn = Callable[[random.Random], tuple[dict[int, float], dict[int, float]]]

DEFAULT_INSTRUCTIONS = 24_000
DEFAULT_MEMORY_WORDS = 1 << 17


@dataclass(frozen=True)
class KernelSpec:
    """One synthetic benchmark kernel."""

    name: str
    description: str
    paper_feature: str
    source: str
    setup: SetupFn
    memory_words: int = DEFAULT_MEMORY_WORDS

    def program(self) -> Program:
        """Assemble the kernel."""
        return assemble(self.source)

    def generate(
        self, max_instructions: int = DEFAULT_INSTRUCTIONS, seed: int = 0
    ) -> list[DynamicInstruction]:
        """Execute the kernel and return its dynamic trace."""
        rng = seeded_rng("workload", self.name, seed)
        memory, regs = self.setup(rng)
        return run(
            self.program(),
            max_instructions,
            initial_memory=memory,
            initial_regs=regs,
            memory_words=self.memory_words,
        )


def random_cycle(rng: random.Random, indices: list[int]) -> dict[int, int]:
    """Link ``indices`` into one random cycle: ``mem[i] = next(i)``.

    Used for pointer-chasing kernels (heap chains, hash chains, linked
    lists); a single cycle guarantees the walk never terminates early.
    """
    if len(indices) < 2:
        raise ValueError("need at least two nodes for a cycle")
    order = list(indices)
    rng.shuffle(order)
    links = {}
    for here, there in zip(order, order[1:]):
        links[here] = there
    links[order[-1]] = order[0]
    return links
