"""Hand-built dynamic-trace patterns for unit tests and illustrations.

These construct :class:`DynamicInstruction` lists directly (no VM), giving
tests precise control over dataflow shape: serial chains, independent
parallel chains, the paper's Figure 3 convergent pattern, and Figure 12's
divergent trees.  All patterns are branch-free unless stated, so simulated
timings are easy to reason about in assertions.
"""

from __future__ import annotations

from repro.vm.isa import OpClass
from repro.vm.trace import DynamicInstruction


def _instr(
    index: int,
    pc: int,
    opclass: OpClass = OpClass.INT_ALU,
    dest: int | None = None,
    srcs: tuple[int, ...] = (),
    opcode: str | None = None,
    mem_addr: int | None = None,
) -> DynamicInstruction:
    default_opcode = {
        OpClass.INT_ALU: "add",
        OpClass.INT_MUL: "mul",
        OpClass.FP: "fadd",
        OpClass.LOAD: "ld",
        OpClass.STORE: "st",
        OpClass.BRANCH: "bne",
    }[opclass]
    return DynamicInstruction(
        index=index,
        pc=pc,
        opcode=opcode or default_opcode,
        opclass=opclass,
        dest=dest,
        srcs=srcs,
        is_branch=opclass is OpClass.BRANCH,
        is_conditional_branch=opclass is OpClass.BRANCH,
        taken=False,
        next_pc=pc + 1,
        mem_addr=mem_addr,
    )


def serial_chain(length: int, reg: int = 1) -> list[DynamicInstruction]:
    """``length`` dependent single-cycle adds through one register.

    The Section 5 hypothetical: ILP of 1, no branches -- the program that
    motivates stall-over-steer.
    """
    trace = [_instr(0, 0, dest=reg)]
    for i in range(1, length):
        trace.append(_instr(i, i, dest=reg, srcs=(reg,)))
    return trace


def parallel_chains(
    num_chains: int, length: int, opclass: OpClass = OpClass.INT_ALU
) -> list[DynamicInstruction]:
    """``num_chains`` independent serial chains, interleaved in fetch order.

    Available ILP equals ``num_chains``; ideal for load-balance tests.
    ``opclass`` selects the link operation (INT_MUL makes each chain a
    7-cycle recurrence, useful for forcing port collisions).
    """
    trace = []
    index = 0
    for position in range(length):
        for chain in range(num_chains):
            reg = 1 + chain
            srcs = (reg,) if position > 0 else ()
            trace.append(
                _instr(
                    index,
                    chain * length + position,
                    opclass=opclass,
                    dest=reg,
                    srcs=srcs,
                )
            )
            index += 1
    return trace


def convergent_pairs(pairs: int) -> list[DynamicInstruction]:
    """Repeated Figure 3 pattern: two independent chains meet at a dyadic op.

    Each group is: two producers (fresh values), one consumer of both.
    """
    trace = []
    index = 0
    for __ in range(pairs):
        trace.append(_instr(index, 0, dest=1))
        trace.append(_instr(index + 1, 1, dest=2))
        trace.append(_instr(index + 2, 2, dest=3, srcs=(1, 2), opcode="xor"))
        index += 3
    return trace


def divergent_tree(
    fanout: int, groups: int
) -> list[DynamicInstruction]:
    """Figure 12's shape: one producer feeding ``fanout`` independent
    consumers, where the *last* consumer is the next producer (the
    loop-carried recurrence whose most critical consumer is fetched last).
    """
    trace = []
    index = 0
    trace.append(_instr(index, 0, dest=1))
    index += 1
    for __ in range(groups):
        for k in range(fanout - 1):
            trace.append(_instr(index, 1 + k, dest=10 + k, srcs=(1,)))
            index += 1
        # The recurrence: consumes and destructively updates register 1.
        trace.append(_instr(index, fanout, dest=1, srcs=(1,)))
        index += 1
    return trace


def mixed_criticality(
    groups: int, filler_per_group: int = 6
) -> list[DynamicInstruction]:
    """One long serial chain (zero slack) interleaved with dead-end filler.

    Each group is one multiply chain link (7-cycle latency, so the chain is
    firmly execute-critical) plus ``filler_per_group`` independent
    instructions whose results are never consumed -- maximal slack.  Used
    to test that criticality detectors separate the two populations.
    """
    trace = []
    index = 0
    for __ in range(groups):
        srcs = (1,) if index > 0 else ()
        trace.append(
            _instr(index, 0, opclass=OpClass.INT_MUL, dest=1, srcs=srcs)
        )  # chain link
        index += 1
        for k in range(filler_per_group):
            trace.append(_instr(index, 1 + k, dest=10 + k))  # dead end
            index += 1
    return trace


def load_chain(length: int, stride_bytes: int = 4096) -> list[DynamicInstruction]:
    """Serial dependent loads with a large stride (cache-hostile)."""
    trace = [_instr(0, 0, opclass=OpClass.LOAD, dest=1, mem_addr=0)]
    for i in range(1, length):
        trace.append(
            _instr(
                i,
                i,
                opclass=OpClass.LOAD,
                dest=1,
                srcs=(1,),
                mem_addr=i * stride_bytes,
            )
        )
    return trace
