"""Coordinator side of distributed sweeps: lease ledger and transports.

The :class:`TaskBoard` is the authoritative ledger for the TCP transport:
which tasks are pending, which are leased (and how stale the lease's
heartbeat is), which have settled.  Its invariants carry the whole
fault-tolerance story:

* a task is **settled at most once** -- late duplicate results from a
  stolen-then-finished lease are dropped, which is what makes
  at-least-once execution safe;
* a lease that misses its heartbeat deadline (or whose worker
  disconnects) is **released**: the task is charged one ``crash``
  attempt and re-queued for any other worker (work stealing), exactly as
  the local pool charges jobs lost to a ``BrokenProcessPool``;
* a task whose leases keep dying past the policy's retry budget settles
  as a final ``crash`` :class:`~repro.experiments.outcomes.RunFailure`
  instead of looping forever.

Transports serve the ledger to workers:

* :class:`TcpCoordinator` -- a threading TCP server speaking the framed
  JSON protocol (:mod:`repro.distwork.protocol`); worker disconnection
  releases its leases immediately, heartbeats extend them.
* :class:`DirCoordinator` -- no sockets: tasks spool as files on a
  shared directory (``tasks/`` -> atomically renamed to ``active/`` on
  claim -> result in ``results/``), heartbeats are ``mtime`` touches,
  and stale ``active/`` files get moved back to ``tasks/``.  Works over
  NFS between hosts with no ports open.

Both expose the same narrow surface to
:class:`~repro.experiments.distributed.DistributedExecutor`:
``publish`` / ``pump`` / ``cancel_pending`` / ``stop`` / ``close``.
"""

from __future__ import annotations

import json
import os
import pathlib
import queue
import socketserver
import threading
import time
from typing import Any

from repro.distwork.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    recv_frame,
    send_frame,
)
from repro.experiments.outcomes import RunFailure

__all__ = ["DirCoordinator", "TaskBoard", "TcpCoordinator"]


def _lost_lease_outcome(task: dict[str, Any], attempts: int) -> dict[str, Any]:
    """The final failure message for a task whose leases keep dying."""
    failure = RunFailure(
        kind="crash",
        error_type="WorkerLost",
        message=(
            f"worker lease died {attempts} time(s) "
            "(heartbeat expired or worker disconnected)"
        ),
        attempts=attempts,
        elapsed=0.0,
    )
    return {
        "job": task["job"],
        "result": None,
        "failure": failure.to_dict(),
        "attempts": attempts,
        "elapsed": 0.0,
        "source": "run",
    }


def _max_attempts(task: dict[str, Any]) -> int:
    """Total lease attempts before a task fails for good (pool-identical:
    a job runs at most ``max_retries + 1`` times)."""
    return int(task.get("policy", {}).get("max_retries", 2)) + 1


class TaskBoard:
    """Thread-safe pending/leased/settled ledger (TCP transport state).

    Tasks are wire-format dicts (``{"id", "job", "policy", "attempt"}``)
    so the board never needs the simulation layer.  All mutation happens
    under one lock; settled outcomes stream out through ``results`` for
    the executor's drain loop.
    """

    def __init__(self, lease_timeout: float = 15.0):
        self.lease_timeout = lease_timeout
        self.results: "queue.Queue[tuple[str, dict[str, Any]]]" = queue.Queue()
        self.stopping = False
        self._lock = threading.Lock()
        self._tasks: dict[str, dict[str, Any]] = {}
        self._pending: list[str] = []
        self._leases: dict[str, tuple[str, float]] = {}  # id -> (worker, deadline)
        self._attempts: dict[str, int] = {}  # attempts charged by dead leases
        self._settled: set[str] = set()

    def add(self, task: dict[str, Any]) -> None:
        with self._lock:
            tid = task["id"]
            self._tasks[tid] = task
            self._attempts.setdefault(tid, int(task.get("attempt", 0)))
            self._pending.append(tid)

    def claim(self, worker: str) -> dict[str, Any] | None:
        """Lease the oldest pending task to ``worker`` (None when idle)."""
        with self._lock:
            if not self._pending:
                return None
            tid = self._pending.pop(0)
            self._leases[tid] = (worker, time.monotonic() + self.lease_timeout)
            task = dict(self._tasks[tid])
            task["attempt"] = self._attempts[tid]
            return task

    def heartbeat(self, tid: str, worker: str) -> bool:
        """Extend the lease; False when the lease is no longer ours."""
        with self._lock:
            lease = self._leases.get(tid)
            if lease is None or lease[0] != worker:
                return False
            self._leases[tid] = (worker, time.monotonic() + self.lease_timeout)
            return True

    def complete(self, tid: str, outcome: dict[str, Any]) -> bool:
        """Settle ``tid``; False (dropped) when it already settled."""
        with self._lock:
            if tid in self._settled or tid not in self._tasks:
                return False
            self._settled.add(tid)
            self._leases.pop(tid, None)
            if tid in self._pending:  # stolen and re-queued, then finished
                self._pending.remove(tid)
        self.results.put((tid, outcome))
        return True

    def release_worker(self, worker: str) -> None:
        """Re-queue (or fail out) every lease held by a dead worker."""
        with self._lock:
            lost = [tid for tid, (w, _) in self._leases.items() if w == worker]
            for tid in lost:
                self._release_locked(tid)

    def reap_expired(self) -> None:
        """Re-queue (or fail out) every lease past its heartbeat deadline."""
        now = time.monotonic()
        with self._lock:
            lost = [
                tid for tid, (_, deadline) in self._leases.items() if deadline <= now
            ]
            for tid in lost:
                self._release_locked(tid)

    def _release_locked(self, tid: str) -> None:
        del self._leases[tid]
        if tid in self._settled:
            return
        self._attempts[tid] += 1
        attempts = self._attempts[tid]
        if attempts >= _max_attempts(self._tasks[tid]):
            self._settled.add(tid)
            self.results.put((tid, _lost_lease_outcome(self._tasks[tid], attempts)))
        else:
            self._pending.append(tid)

    def cancel_pending(self) -> int:
        """Drop every un-leased task (cooperative interrupt); count dropped."""
        with self._lock:
            dropped = len(self._pending)
            for tid in self._pending:
                self._settled.add(tid)
            self._pending.clear()
            return dropped


class _TcpHandler(socketserver.BaseRequestHandler):
    """One persistent worker connection: request/response frames until EOF."""

    def handle(self) -> None:  # pragma: no cover - exercised via integration
        board: TaskBoard = self.server.board  # type: ignore[attr-defined]
        worker = "?"
        try:
            while True:
                message = recv_frame(self.request)
                if message is None:
                    break
                op = message.get("op")
                worker = str(message.get("worker", worker))
                if op == "hello":
                    send_frame(
                        self.request,
                        {
                            "op": "welcome",
                            "version": PROTOCOL_VERSION,
                            "heartbeat": board.lease_timeout / 3.0,
                        },
                    )
                elif op == "next":
                    if board.stopping:
                        send_frame(self.request, {"op": "stop"})
                    else:
                        task = board.claim(worker)
                        if task is None:
                            send_frame(self.request, {"op": "idle"})
                        else:
                            send_frame(self.request, dict(task, op="task"))
                elif op == "heartbeat":
                    held = board.heartbeat(str(message.get("id")), worker)
                    # "lost" tells a slow-but-alive worker its lease was
                    # stolen or the task settled elsewhere: abandon the
                    # run (the result would be dropped) and lease fresh
                    # work instead.
                    send_frame(self.request, {"op": "ok" if held else "lost"})
                elif op == "done":
                    board.complete(str(message.get("id")), message["outcome"])
                    send_frame(self.request, {"op": "ok"})
                else:
                    raise ProtocolError(f"unknown op {op!r}")
        except (ProtocolError, OSError, KeyError):
            pass  # damaged peer: drop the connection, leases release below
        finally:
            board.release_worker(worker)


class _TcpServer(socketserver.ThreadingTCPServer):
    daemon_threads = True
    allow_reuse_address = True


class TcpCoordinator:
    """Serve a :class:`TaskBoard` to socket workers on ``host:port``.

    ``port`` 0 binds an ephemeral port; read the real one from
    :attr:`address`.  The server threads only touch the board (thread-safe
    by construction); :meth:`pump` runs lease reaping on the caller's
    thread so expiry timing is owned by the executor's drain loop.
    """

    def __init__(self, host: str, port: int, *, lease_timeout: float = 15.0):
        self.board = TaskBoard(lease_timeout=lease_timeout)
        self._server = _TcpServer((host, port), _TcpHandler)
        self._server.board = self.board  # type: ignore[attr-defined]
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            kwargs={"poll_interval": 0.05},
            name="distwork-tcp",
            daemon=True,
        )
        self._thread.start()

    @property
    def address(self) -> tuple[str, int]:
        return self._server.server_address[:2]

    def publish(self, task: dict[str, Any]) -> None:
        self.board.add(task)

    def pump(self) -> list[tuple[str, dict[str, Any]]]:
        """Reap expired leases; drain settled outcomes (non-blocking)."""
        self.board.reap_expired()
        settled: list[tuple[str, dict[str, Any]]] = []
        while True:
            try:
                settled.append(self.board.results.get_nowait())
            except queue.Empty:
                return settled

    def cancel_pending(self) -> int:
        return self.board.cancel_pending()

    def stop(self) -> None:
        """Tell workers (on their next ``next``) that the sweep is over."""
        self.board.stopping = True

    def close(self) -> None:
        self.stop()
        self._server.shutdown()
        self._server.server_close()
        self._thread.join(timeout=5.0)


class DirCoordinator:
    """Spool-directory transport: the filesystem *is* the task board.

    Layout under ``root``::

        tasks/<id>.json    queued task (claim = atomic rename to active/)
        active/<id>.json   leased task; worker heartbeats by touching mtime
        results/<id>.json  settled outcome (written via temp file + rename)
        stop               sentinel; workers exit when it appears

    Construction empties all three directories (and removes the
    sentinel): the spool is transient per-sweep state owned by the
    coordinator, and files left by a previous run must never be adopted
    as this run's tasks or results.

    Lease expiry is wall-clock mtime staleness, so coordinator and worker
    clocks must agree to within the lease timeout -- fine on one host or
    NFS; pick a generous timeout across machines.
    """

    def __init__(self, root: "str | pathlib.Path", *, lease_timeout: float = 30.0):
        self.root = pathlib.Path(root)
        self.lease_timeout = lease_timeout
        self.tasks_dir = self.root / "tasks"
        self.active_dir = self.root / "active"
        self.results_dir = self.root / "results"
        for directory in (self.tasks_dir, self.active_dir, self.results_dir):
            directory.mkdir(parents=True, exist_ok=True)
            # The coordinator owns the spool: leftover tasks, leases and
            # results from a previous sweep would otherwise be adopted as
            # this run's (workers would run stale tasks, and a stale
            # result whose id collides with a fresh task would settle it
            # with the wrong payload), so a new coordinator always starts
            # from an empty spool.
            for leftover in directory.iterdir():
                if not leftover.is_file():
                    continue
                try:
                    leftover.unlink()
                except FileNotFoundError:
                    pass
        # A leftover sentinel from a previous sweep would make fresh
        # workers exit on arrival.
        self._stop_path = self.root / "stop"
        try:
            self._stop_path.unlink()
        except FileNotFoundError:
            pass
        self._settled: set[str] = set()

    def publish(self, task: dict[str, Any]) -> None:
        self._write_json(self.tasks_dir / f"{task['id']}.json", task)

    def pump(self) -> list[tuple[str, dict[str, Any]]]:
        """Collect new results; steal stale leases back onto the queue."""
        settled: list[tuple[str, dict[str, Any]]] = []
        for path in sorted(self.results_dir.glob("*.json")):
            tid = path.stem
            if tid in self._settled:
                continue
            try:
                message = json.loads(path.read_text(encoding="utf-8"))
            except (OSError, json.JSONDecodeError):
                continue  # mid-rename race or damage; retry next pump
            self._settled.add(tid)
            settled.append((tid, message["outcome"]))
            for leftover in (self.tasks_dir / path.name, self.active_dir / path.name):
                try:
                    leftover.unlink()
                except FileNotFoundError:
                    pass
        stale_before = time.time() - self.lease_timeout
        for path in sorted(self.active_dir.glob("*.json")):
            if path.stem in self._settled:
                try:
                    path.unlink()
                except FileNotFoundError:
                    pass
                continue
            try:
                if path.stat().st_mtime > stale_before:
                    continue
                task = json.loads(path.read_text(encoding="utf-8"))
            except (OSError, json.JSONDecodeError):
                continue  # claimed/heartbeat mid-scan; leave it
            task["attempt"] = int(task.get("attempt", 0)) + 1
            attempts = task["attempt"]
            if attempts >= _max_attempts(task):
                self._settled.add(path.stem)
                settled.append((path.stem, _lost_lease_outcome(task, attempts)))
                try:
                    path.unlink()
                except FileNotFoundError:
                    pass
            else:
                # Steal: rewrite the active file with the attempt
                # charged, then rename that one file back onto the
                # queue.  The task lives in exactly one directory at
                # every instant -- publishing to ``tasks/`` first would
                # let a worker claim the re-queued copy (its rename
                # lands on the still-present active path) only to have
                # this sweep's unlink delete the claim.
                self._write_json(path, task)
                try:
                    os.replace(path, self.tasks_dir / path.name)
                except FileNotFoundError:
                    pass  # settled between the rewrite and the re-queue
        return settled

    def cancel_pending(self) -> int:
        dropped = 0
        for path in self.tasks_dir.glob("*.json"):
            try:
                path.unlink()
                dropped += 1
            except FileNotFoundError:
                pass
        return dropped

    def stop(self) -> None:
        self._stop_path.touch()

    def close(self) -> None:
        self.stop()

    def _write_json(self, path: pathlib.Path, payload: dict[str, Any]) -> None:
        tmp = path.with_name(path.name + f".tmp-{os.getpid()}")
        tmp.write_text(
            json.dumps(payload, separators=(",", ":")), encoding="utf-8"
        )
        os.replace(tmp, path)
