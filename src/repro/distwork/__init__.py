"""Distributed sweep execution: coordinator/worker over sockets or a spool dir.

A sweep's :class:`~repro.experiments.parallel.RunJob`\\ s are independent
and deterministic, which makes distribution almost embarrassingly simple
-- the only real problems are *leases* (a worker that dies mid-job must
not strand its job) and *double execution* (work stealing may run a job
twice).  This package solves the first with heartbeat leases and the
second by not caring: jobs are deterministic, results land in the
content-addressed :class:`~repro.experiments.cache.RunCache` via atomic
renames, and the coordinator settles each task exactly once, so
at-least-once execution is observably identical to exactly-once.

Layout:

* :mod:`repro.distwork.protocol` -- the length-prefixed JSON frame
  format, endpoint parsing, and the job / policy / outcome wire codecs.
* :mod:`repro.distwork.coordinator` -- the :class:`TaskBoard` lease
  ledger and the two transports (:class:`TcpCoordinator`,
  :class:`DirCoordinator`) that serve it to workers.
* :mod:`repro.distwork.worker` -- the ``repro worker`` process: lease,
  heartbeat, execute via the existing resilient per-job path, report.

The user-facing entry points are
:class:`repro.experiments.distributed.DistributedExecutor` (coordinator
side, behind the :class:`~repro.experiments.executor.Executor` protocol)
and the ``repro worker ENDPOINT`` CLI (worker side).
"""

from repro.distwork.coordinator import DirCoordinator, TaskBoard, TcpCoordinator
from repro.distwork.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    parse_endpoint,
)
from repro.distwork.worker import run_worker

__all__ = [
    "DirCoordinator",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "TaskBoard",
    "TcpCoordinator",
    "parse_endpoint",
    "run_worker",
]
