"""Wire format for distributed sweep execution (stdlib only).

Frames
------
Both transports move the same JSON messages; the TCP transport frames
them as a 4-byte big-endian unsigned length followed by that many bytes
of UTF-8 JSON (the ``dir`` transport writes one message per spool file
instead, atomically via temp file + rename).  A peer closing its socket
*between* frames is a clean EOF (:func:`recv_frame` returns ``None``);
closing mid-frame is damage and raises :class:`ProtocolError`, as does a
frame longer than :data:`MAX_FRAME` (a corrupted length prefix would
otherwise read as a multi-gigabyte allocation).

Messages (coordinator <-> worker)
---------------------------------
Worker-initiated, one request/response pair per frame exchange::

    {"op": "hello", "worker": id, "version": 1}
        -> {"op": "welcome", "version": 1, "heartbeat": seconds}
    {"op": "next", "worker": id}
        -> {"op": "task", "id": tid, "job": {...}, "policy": {...},
            "attempt": n}                      # lease granted
         | {"op": "idle"}                      # nothing queued right now
         | {"op": "stop"}                      # sweep over; exit
    {"op": "heartbeat", "worker": id, "id": tid}
        -> {"op": "ok"}                        # lease extended
         | {"op": "lost"}                      # lease stolen or task
                                               # settled: abandon the run
    {"op": "done", "worker": id, "id": tid, "outcome": {...}}
        -> {"op": "ok"}

``attempt`` is the number of attempts already charged to the task by
earlier (dead) leases; the worker's in-process retry loop continues
counting from there, so the retry budget and the deterministic
fault-injection schedule both span lease boundaries exactly as they span
pool respawns in the local backend.

Codecs
------
Jobs, execution policies and outcomes cross the wire through the repo's
existing lossless serializers (:mod:`repro.core.serialize`,
:mod:`repro.specs.policy`, :class:`~repro.experiments.outcomes.RunFailure`),
so a round-tripped job hashes to the same
:func:`~repro.experiments.cache.job_key` and a round-tripped result is
bit-identical under :func:`~repro.core.serialize.results_identical`.
"""

from __future__ import annotations

import json
import socket
import struct
from typing import Any

from repro.core.serialize import (
    config_from_dict,
    config_to_dict,
    result_from_dict,
    result_to_dict,
)
from repro.experiments.outcomes import ExecutionPolicy, JobOutcome, RunFailure
from repro.experiments.parallel import RunJob
from repro.specs.policy import PolicySpec, canonical_policy

__all__ = [
    "MAX_FRAME",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "job_from_dict",
    "job_to_dict",
    "outcome_from_dict",
    "outcome_to_dict",
    "parse_endpoint",
    "policy_from_dict",
    "policy_to_dict",
    "recv_frame",
    "send_frame",
]

PROTOCOL_VERSION = 1

_HEADER = struct.Struct(">I")

# A 12k-instruction result is a few MB of JSON; half a GiB of headroom
# distinguishes "big result" from "garbled length prefix".
MAX_FRAME = 1 << 29


class ProtocolError(RuntimeError):
    """The peer sent something the wire format forbids."""


# ---------------------------------------------------------------------------
# Frames
# ---------------------------------------------------------------------------


def send_frame(sock: socket.socket, message: dict[str, Any]) -> None:
    """Send one length-prefixed JSON message."""
    payload = json.dumps(message, separators=(",", ":")).encode("utf-8")
    if len(payload) > MAX_FRAME:
        raise ProtocolError(f"frame of {len(payload)} bytes exceeds MAX_FRAME")
    sock.sendall(_HEADER.pack(len(payload)) + payload)


def recv_frame(sock: socket.socket) -> dict[str, Any] | None:
    """Receive one message; ``None`` on clean EOF at a frame boundary."""
    header = _recv_exact(sock, _HEADER.size, eof_ok=True)
    if header is None:
        return None
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME:
        raise ProtocolError(f"frame of {length} bytes exceeds MAX_FRAME")
    payload = _recv_exact(sock, length, eof_ok=False)
    assert payload is not None
    try:
        message = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"undecodable frame: {exc}") from exc
    if not isinstance(message, dict):
        raise ProtocolError(f"frame must be a JSON object, got {type(message).__name__}")
    return message


def _recv_exact(sock: socket.socket, count: int, eof_ok: bool) -> bytes | None:
    chunks: list[bytes] = []
    remaining = count
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            if eof_ok and remaining == count:
                return None
            raise ProtocolError(
                f"connection closed mid-frame ({count - remaining}/{count} bytes)"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


# ---------------------------------------------------------------------------
# Endpoints
# ---------------------------------------------------------------------------


def parse_endpoint(endpoint: str) -> tuple[str, Any]:
    """``host:port`` -> ``("tcp", (host, port))``; anything else is a spool dir.

    A Windows drive letter never parses as a port, and a bare directory
    name contains no colon, so the two shapes cannot collide in practice;
    ``./host:8080`` forces the directory reading if one ever does.
    """
    if not endpoint:
        raise ValueError("empty workers endpoint")
    host, sep, port = endpoint.rpartition(":")
    if sep and host and "/" not in endpoint and "\\" not in endpoint:
        try:
            return "tcp", (host, int(port))
        except ValueError:
            pass
    return "dir", endpoint


# ---------------------------------------------------------------------------
# Codecs
# ---------------------------------------------------------------------------


def job_to_dict(job: RunJob) -> dict[str, Any]:
    """A :class:`RunJob` as JSON types (policy by name or canonical spec)."""
    policy = canonical_policy(job.policy)
    return {
        "kernel": job.kernel,
        "instructions": job.instructions,
        "seed": job.seed,
        "loc_mode": job.loc_mode,
        "config": config_to_dict(job.config),
        "policy": policy if isinstance(policy, str) else {"spec": policy.to_dict()},
        "collect_ilp": job.collect_ilp,
        "warm": job.warm,
        "sim": job.sim,
        "metrics": job.metrics,
    }


def job_from_dict(data: dict[str, Any]) -> RunJob:
    """Inverse of :func:`job_to_dict`; round-trips the cache key exactly."""
    policy = data["policy"]
    if not isinstance(policy, str):
        policy = PolicySpec.from_dict(policy["spec"])
    return RunJob(
        kernel=data["kernel"],
        instructions=data["instructions"],
        seed=data["seed"],
        loc_mode=data["loc_mode"],
        config=config_from_dict(data["config"]),
        policy=canonical_policy(policy),
        collect_ilp=data["collect_ilp"],
        warm=data["warm"],
        sim=data["sim"],
        metrics=data["metrics"],
    )


def policy_to_dict(policy: ExecutionPolicy) -> dict[str, Any]:
    return {
        "max_retries": policy.max_retries,
        "job_timeout": policy.job_timeout,
        "fail_fast": policy.fail_fast,
        "backoff_base": policy.backoff_base,
        "backoff_factor": policy.backoff_factor,
        "max_pool_respawns": policy.max_pool_respawns,
    }


def policy_from_dict(data: dict[str, Any]) -> ExecutionPolicy:
    return ExecutionPolicy(
        max_retries=int(data.get("max_retries", 2)),
        job_timeout=data.get("job_timeout"),
        fail_fast=bool(data.get("fail_fast", False)),
        backoff_base=float(data.get("backoff_base", 0.0)),
        backoff_factor=float(data.get("backoff_factor", 2.0)),
        max_pool_respawns=int(data.get("max_pool_respawns", 3)),
    )


def outcome_to_dict(outcome: JobOutcome) -> dict[str, Any]:
    """A settled :class:`JobOutcome`, job included, as JSON types."""
    return {
        "job": job_to_dict(outcome.job),
        "result": None if outcome.result is None else result_to_dict(outcome.result),
        "failure": None if outcome.failure is None else outcome.failure.to_dict(),
        "attempts": outcome.attempts,
        "elapsed": outcome.elapsed,
        "source": outcome.source,
    }


def outcome_from_dict(data: dict[str, Any]) -> JobOutcome:
    result = data.get("result")
    failure = data.get("failure")
    return JobOutcome(
        job=job_from_dict(data["job"]),
        result=None if result is None else result_from_dict(result),
        failure=None if failure is None else RunFailure.from_dict(failure),
        attempts=int(data.get("attempts", 1)),
        elapsed=float(data.get("elapsed", 0.0)),
        source=str(data.get("source", "run")),
    )
