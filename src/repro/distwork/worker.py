"""The ``repro worker`` process: lease jobs, run them, report outcomes.

A worker is deliberately thin: all simulation, retry and fault-injection
semantics come from the existing resilient per-job path
(:func:`repro.experiments.parallel.run_job_outcome`), and the shared
content-addressed :class:`~repro.experiments.cache.RunCache` is both its
fast path (another worker may have produced the result already) and its
durable store (results survive the worker; the coordinator's copy of the
outcome is just the notification).

Lease semantics: the coordinator grants one task at a time and expects a
heartbeat at the advertised interval; a worker that dies mid-job simply
stops heartbeating and the task is re-queued for someone else.  The task
message carries ``attempt`` -- attempts charged by earlier dead leases --
and the in-process retry loop continues counting from there, so the
retry budget and the deterministic chaos schedule (``REPRO_CHAOS``
reaches this process through the environment like any pool worker) span
lease boundaries exactly as they span pool respawns locally.

Both transports are symmetrical for the worker:

* **tcp** -- one persistent framed-JSON connection; a background thread
  shares the socket under a lock to heartbeat while the main thread
  simulates.
* **dir** -- claim ``tasks/<id>.json`` by atomic rename into ``active/``,
  heartbeat by touching the claimed file's mtime, report by writing
  ``results/<id>.json``.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import socket
import threading
import time
from typing import Any

from repro.distwork.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    job_from_dict,
    outcome_to_dict,
    parse_endpoint,
    policy_from_dict,
    recv_frame,
    send_frame,
)
from repro.experiments.cache import RunCache
from repro.experiments.outcomes import JobOutcome
from repro.experiments.parallel import run_job_outcome

__all__ = ["execute_leased_job", "main", "run_worker"]


def execute_leased_job(
    task: dict[str, Any], cache: RunCache | None
) -> dict[str, Any]:
    """Run one leased task to a settled outcome message.

    Cache first: a hit (stored by a previous sweep or a sibling worker)
    settles as ``source="cache"`` without simulating.  A fresh run goes
    through the policy's retry loop starting past the attempts already
    charged to dead leases, and its result is stored to the shared cache
    *before* the outcome is reported -- if the report is lost, the work
    is not.
    """
    job = job_from_dict(task["job"])
    policy = policy_from_dict(task.get("policy", {}))
    if cache is not None:
        result = cache.load(job)
        if result is not None:
            outcome = JobOutcome(job=job, result=result, attempts=0, source="cache")
            return outcome_to_dict(outcome)
    outcome = run_job_outcome(
        job, policy=policy, start_attempt=int(task.get("attempt", 0))
    )
    if cache is not None and outcome.ok:
        cache.store(job, outcome.result)
    return outcome_to_dict(outcome)


def run_worker(
    endpoint: str,
    *,
    cache: RunCache | None = None,
    worker_id: str | None = None,
    poll: float = 0.2,
    idle_timeout: float | None = None,
    reconnect_window: float = 10.0,
    stop_event: "threading.Event | None" = None,
) -> int:
    """Serve jobs from ``endpoint`` until stopped; returns jobs executed.

    Exits when the coordinator says stop, when ``idle_timeout`` seconds
    pass with nothing to do, when ``stop_event`` is set (in-process
    embedding, used by tests), or -- tcp only -- when the coordinator
    stays unreachable for ``reconnect_window`` seconds.
    """
    if worker_id is None:
        worker_id = f"{socket.gethostname()}-{os.getpid()}"
    kind, target = parse_endpoint(endpoint)
    if kind == "tcp":
        return _run_tcp_worker(
            target,
            cache=cache,
            worker_id=worker_id,
            poll=poll,
            idle_timeout=idle_timeout,
            reconnect_window=reconnect_window,
            stop_event=stop_event,
        )
    return _run_dir_worker(
        pathlib.Path(target),
        cache=cache,
        worker_id=worker_id,
        poll=poll,
        idle_timeout=idle_timeout,
        stop_event=stop_event,
    )


# ---------------------------------------------------------------------------
# TCP transport
# ---------------------------------------------------------------------------


class _Connection:
    """One framed connection; a lock serializes whole request/response
    exchanges so the heartbeat thread and the main thread can share it."""

    def __init__(self, address: tuple[str, int], worker_id: str):
        self.sock = socket.create_connection(address, timeout=30.0)
        self.lock = threading.Lock()
        self.worker_id = worker_id
        reply = self.exchange({"op": "hello", "version": PROTOCOL_VERSION})
        if reply.get("op") != "welcome":
            raise ProtocolError(f"expected welcome, got {reply.get('op')!r}")
        self.heartbeat_interval = float(reply.get("heartbeat", 5.0))

    def exchange(self, message: dict[str, Any]) -> dict[str, Any]:
        with self.lock:
            send_frame(self.sock, dict(message, worker=self.worker_id))
            reply = recv_frame(self.sock)
        if reply is None:
            raise ProtocolError("coordinator closed the connection")
        return reply

    def close(self) -> None:
        try:
            self.sock.close()
        except OSError:  # pragma: no cover - already torn down
            pass


def _run_tcp_worker(
    address: tuple[str, int],
    *,
    cache: RunCache | None,
    worker_id: str,
    poll: float,
    idle_timeout: float | None,
    reconnect_window: float,
    stop_event: "threading.Event | None",
) -> int:
    executed = 0
    conn: _Connection | None = None
    unreachable_since: float | None = None
    idle_since: float | None = None
    try:
        while True:
            if stop_event is not None and stop_event.is_set():
                return executed
            if conn is None:
                try:
                    conn = _Connection(address, worker_id)
                except (OSError, ProtocolError):
                    now = time.monotonic()
                    if unreachable_since is None:
                        unreachable_since = now
                    if now - unreachable_since >= reconnect_window:
                        return executed
                    time.sleep(min(poll, 0.5))
                    continue
                unreachable_since = None
            try:
                reply = conn.exchange({"op": "next"})
                op = reply.get("op")
                if op == "stop":
                    return executed
                if op == "idle":
                    now = time.monotonic()
                    if idle_since is None:
                        idle_since = now
                    if idle_timeout is not None and now - idle_since >= idle_timeout:
                        return executed
                    time.sleep(poll)
                    continue
                if op != "task":
                    raise ProtocolError(f"expected task/idle/stop, got {op!r}")
                idle_since = None
                outcome = _run_tcp_task(conn, reply, cache)
                conn.exchange(
                    {"op": "done", "id": reply["id"], "outcome": outcome}
                )
                executed += 1
            except (OSError, ProtocolError):
                conn.close()
                conn = None  # reconnect; an in-flight lease will be stolen
    finally:
        if conn is not None:
            conn.close()


def _run_tcp_task(
    conn: _Connection, task: dict[str, Any], cache: RunCache | None
) -> dict[str, Any]:
    """Execute under a background heartbeat on the shared connection."""
    done = threading.Event()

    def beat() -> None:
        while not done.wait(conn.heartbeat_interval):
            try:
                conn.exchange({"op": "heartbeat", "id": task["id"]})
            except (OSError, ProtocolError):
                return  # connection died; the main thread will notice
            except Exception:  # pragma: no cover - never kill the runner
                return

    thread = threading.Thread(target=beat, name="distwork-heartbeat", daemon=True)
    thread.start()
    try:
        return execute_leased_job(task, cache)
    finally:
        done.set()
        thread.join(timeout=5.0)


# ---------------------------------------------------------------------------
# Spool-directory transport
# ---------------------------------------------------------------------------


def _run_dir_worker(
    root: pathlib.Path,
    *,
    cache: RunCache | None,
    worker_id: str,
    poll: float,
    idle_timeout: float | None,
    stop_event: "threading.Event | None",
) -> int:
    tasks_dir = root / "tasks"
    active_dir = root / "active"
    results_dir = root / "results"
    for directory in (tasks_dir, active_dir, results_dir):
        directory.mkdir(parents=True, exist_ok=True)
    executed = 0
    idle_since: float | None = None
    while True:
        if stop_event is not None and stop_event.is_set():
            return executed
        if (root / "stop").exists():
            return executed
        claimed = _claim_dir_task(tasks_dir, active_dir)
        if claimed is None:
            now = time.monotonic()
            if idle_since is None:
                idle_since = now
            if idle_timeout is not None and now - idle_since >= idle_timeout:
                return executed
            time.sleep(poll)
            continue
        idle_since = None
        active_path, task = claimed
        outcome = _run_dir_task(active_path, task, cache)
        result_path = results_dir / active_path.name
        tmp = result_path.with_name(result_path.name + f".tmp-{os.getpid()}")
        tmp.write_text(
            json.dumps({"id": task["id"], "outcome": outcome}, separators=(",", ":")),
            encoding="utf-8",
        )
        os.replace(tmp, result_path)
        try:
            active_path.unlink()
        except FileNotFoundError:  # stolen while we finished; settle wins
            pass
        executed += 1


def _claim_dir_task(
    tasks_dir: pathlib.Path, active_dir: pathlib.Path
) -> tuple[pathlib.Path, dict[str, Any]] | None:
    """Atomically move the oldest queued task into ``active/``.

    ``os.replace`` of one source path succeeds for exactly one claimant;
    the loser's ``FileNotFoundError`` just means someone else got it.
    """
    for path in sorted(tasks_dir.glob("*.json")):
        target = active_dir / path.name
        try:
            os.replace(path, target)
        except FileNotFoundError:
            continue
        try:
            task = json.loads(target.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):  # pragma: no cover - damage
            continue
        return target, task
    return None


def _run_dir_task(
    active_path: pathlib.Path, task: dict[str, Any], cache: RunCache | None
) -> dict[str, Any]:
    """Execute under a background mtime heartbeat on the claimed file."""
    done = threading.Event()

    def beat() -> None:
        while not done.wait(1.0):
            try:
                os.utime(active_path)
            except OSError:
                return  # stolen or settled; the runner finishes regardless

    thread = threading.Thread(target=beat, name="distwork-heartbeat", daemon=True)
    thread.start()
    try:
        return execute_leased_job(task, cache)
    finally:
        done.set()
        thread.join(timeout=5.0)


# ---------------------------------------------------------------------------
# CLI (``repro worker``)
# ---------------------------------------------------------------------------


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro worker",
        description=(
            "Serve simulation jobs leased from a sweep coordinator. "
            "ENDPOINT is host:port (tcp) or a shared spool directory."
        ),
    )
    parser.add_argument("endpoint", help="coordinator host:port or spool directory")
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="shared result cache directory (default: the repo-wide default)",
    )
    parser.add_argument(
        "--no-cache", action="store_true", help="run without the shared result cache"
    )
    parser.add_argument(
        "--id", default=None, help="worker identity (default: hostname-pid)"
    )
    parser.add_argument(
        "--poll",
        type=float,
        default=0.2,
        help="seconds between idle polls (default: 0.2)",
    )
    parser.add_argument(
        "--idle-timeout",
        type=float,
        default=None,
        help="exit after this many idle seconds (default: run until stopped)",
    )
    parser.add_argument(
        "--reconnect-window",
        type=float,
        default=10.0,
        help=(
            "tcp only: exit after the coordinator stays unreachable this "
            "many seconds (default: 10; raise it to start workers before "
            "the sweep)"
        ),
    )
    args = parser.parse_args(argv)
    cache = None if args.no_cache else RunCache(args.cache_dir)
    executed = run_worker(
        args.endpoint,
        cache=cache,
        worker_id=args.id,
        poll=args.poll,
        idle_timeout=args.idle_timeout,
        reconnect_window=args.reconnect_window,
    )
    print(f"worker done: {executed} job(s) executed")
    return 0
