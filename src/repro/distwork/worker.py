"""The ``repro worker`` process: lease jobs, run them, report outcomes.

A worker is deliberately thin: all simulation, retry and fault-injection
semantics come from the existing resilient per-job path
(:func:`repro.experiments.parallel.run_job_outcome`), and the shared
content-addressed :class:`~repro.experiments.cache.RunCache` is both its
fast path (another worker may have produced the result already) and its
durable store (results survive the worker; the coordinator's copy of the
outcome is just the notification).

Lease semantics: the coordinator grants one task at a time and expects a
heartbeat at the advertised interval; a worker that dies mid-job simply
stops heartbeating and the task is re-queued for someone else.  The task
message carries ``attempt`` -- attempts charged by earlier dead leases --
and the in-process retry loop continues counting from there, so the
retry budget and the deterministic chaos schedule (``REPRO_CHAOS``
reaches this process through the environment like any pool worker) span
lease boundaries exactly as they span pool respawns locally.

Two conditions interrupt a leased run the way the local pool would:

* ``policy.job_timeout`` -- when set, each attempt runs in a killable
  one-process child pool (:class:`_TimeoutAttemptRunner`); an attempt
  past its budget has its child killed and is charged a retryable
  ``timeout`` failure, mirroring the pool's recycle-on-hang.  Without
  this the background heartbeat would keep a hung job's lease alive
  forever and stall the whole sweep.
* a **lost lease** -- a heartbeat answered ``lost`` (tcp) or a vanished
  active file (dir) means the task was stolen or settled elsewhere; the
  worker abandons the run (between attempts, or mid-attempt by killing
  the child when a timeout runner is active) and leases fresh work
  instead of finishing a job whose result would be dropped.

Both transports are symmetrical for the worker:

* **tcp** -- one persistent framed-JSON connection; a background thread
  shares the socket under a lock to heartbeat while the main thread
  simulates.
* **dir** -- claim ``tasks/<id>.json`` by atomic rename into ``active/``,
  heartbeat by touching the claimed file's mtime, report by writing
  ``results/<id>.json``.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import socket
import threading
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable

from repro.distwork.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    job_from_dict,
    outcome_to_dict,
    parse_endpoint,
    policy_from_dict,
    recv_frame,
    send_frame,
)
from repro.experiments.cache import RunCache
from repro.experiments.outcomes import ExecutionInterrupted, JobOutcome
from repro.experiments.parallel import run_job_outcome

__all__ = ["execute_leased_job", "main", "run_supervisor", "run_worker"]


class _TimeoutAttemptRunner:
    """Run attempts in a killable child so ``policy.job_timeout`` binds.

    The local pool enforces ``job_timeout`` by recycling hung workers;
    in-process execution cannot interrupt a running simulation, so when
    the policy sets a timeout each attempt runs through a one-process
    pool whose child is killed (and respawned for the next attempt) once
    the deadline passes -- the attempt is then charged a retryable
    ``timeout`` failure exactly like a pool recycle.  Chaos reaches the
    child through ``REPRO_CHAOS`` in the environment the same way it
    reaches local pool workers, so fault schedules replay unchanged.

    ``should_abandon`` (the lease-lost signal) is polled while waiting;
    when it turns true the child is killed and
    :class:`~repro.experiments.outcomes.ExecutionInterrupted` aborts the
    whole task.
    """

    def __init__(
        self,
        timeout: float,
        should_abandon: "Callable[[], bool] | None" = None,
    ):
        self.timeout = timeout
        self.should_abandon = should_abandon
        self._pool: ProcessPoolExecutor | None = None

    def __call__(self, job: Any, attempt: int) -> Any:
        from repro.experiments.parallel import _pool_attempt

        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=1)
        future = self._pool.submit(_pool_attempt, (job, attempt, False))
        deadline = time.monotonic() + self.timeout
        while True:
            if self.should_abandon is not None and self.should_abandon():
                self._kill()
                raise ExecutionInterrupted("lease lost mid-attempt")
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                self._kill()
                raise TimeoutError(
                    f"job exceeded {self.timeout}s wall-time budget"
                )
            try:
                result, _spans = future.result(timeout=min(remaining, 0.25))
            except BrokenProcessPool:
                self._kill()
                raise
            except TimeoutError:
                if future.done():
                    raise  # the attempt itself raised a TimeoutError
                continue  # still waiting: re-check deadline and abandon
            return result

    def _kill(self) -> None:
        """Kill the (possibly hung) child; a polite shutdown would block."""
        pool = self._pool
        self._pool = None
        if pool is None:
            return
        processes = getattr(pool, "_processes", None)
        if processes:
            for process in list(processes.values()):
                try:
                    process.kill()
                except Exception:  # pragma: no cover - already-dead race
                    pass
        pool.shutdown(wait=False, cancel_futures=True)

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


def execute_leased_job(
    task: dict[str, Any],
    cache: RunCache | None,
    *,
    should_abandon: "Callable[[], bool] | None" = None,
) -> dict[str, Any]:
    """Run one leased task to a settled outcome message.

    Cache first: a hit (stored by a previous sweep or a sibling worker)
    settles as ``source="cache"`` without simulating.  A fresh run goes
    through the policy's retry loop starting past the attempts already
    charged to dead leases, and its result is stored to the shared cache
    *before* the outcome is reported -- if the report is lost, the work
    is not.

    When the policy sets ``job_timeout`` every attempt runs in a
    killable child (:class:`_TimeoutAttemptRunner`).  ``should_abandon``
    is polled between attempts -- and during them when the timeout
    runner is active -- and raises
    :class:`~repro.experiments.outcomes.ExecutionInterrupted` so the
    caller can drop a task whose lease was lost and request new work.
    """
    job = job_from_dict(task["job"])
    policy = policy_from_dict(task.get("policy", {}))
    if cache is not None:
        result = cache.load(job)
        if result is not None:
            outcome = JobOutcome(job=job, result=result, attempts=0, source="cache")
            return outcome_to_dict(outcome)
    runner: _TimeoutAttemptRunner | None = None
    if policy.job_timeout is not None:
        runner = _TimeoutAttemptRunner(policy.job_timeout, should_abandon)
    try:
        outcome = run_job_outcome(
            job,
            policy=policy,
            start_attempt=int(task.get("attempt", 0)),
            attempt_runner=runner,
            should_stop=should_abandon,
        )
    finally:
        if runner is not None:
            runner.close()
    if cache is not None and outcome.ok:
        cache.store(job, outcome.result)
    return outcome_to_dict(outcome)


def run_worker(
    endpoint: str,
    *,
    cache: RunCache | None = None,
    worker_id: str | None = None,
    poll: float = 0.2,
    idle_timeout: float | None = None,
    reconnect_window: float = 10.0,
    stop_event: "threading.Event | None" = None,
) -> int:
    """Serve jobs from ``endpoint`` until stopped; returns jobs executed.

    Exits when the coordinator says stop, when ``idle_timeout`` seconds
    pass with nothing to do, when ``stop_event`` is set (in-process
    embedding, used by tests), or -- tcp only -- when the coordinator
    stays unreachable for ``reconnect_window`` seconds.
    """
    if worker_id is None:
        worker_id = f"{socket.gethostname()}-{os.getpid()}"
    kind, target = parse_endpoint(endpoint)
    if kind == "tcp":
        return _run_tcp_worker(
            target,
            cache=cache,
            worker_id=worker_id,
            poll=poll,
            idle_timeout=idle_timeout,
            reconnect_window=reconnect_window,
            stop_event=stop_event,
        )
    return _run_dir_worker(
        pathlib.Path(target),
        cache=cache,
        worker_id=worker_id,
        poll=poll,
        idle_timeout=idle_timeout,
        stop_event=stop_event,
    )


# ---------------------------------------------------------------------------
# TCP transport
# ---------------------------------------------------------------------------


class _Connection:
    """One framed connection; a lock serializes whole request/response
    exchanges so the heartbeat thread and the main thread can share it."""

    def __init__(self, address: tuple[str, int], worker_id: str):
        self.sock = socket.create_connection(address, timeout=30.0)
        self.lock = threading.Lock()
        self.worker_id = worker_id
        reply = self.exchange({"op": "hello", "version": PROTOCOL_VERSION})
        if reply.get("op") != "welcome":
            raise ProtocolError(f"expected welcome, got {reply.get('op')!r}")
        self.heartbeat_interval = float(reply.get("heartbeat", 5.0))

    def exchange(self, message: dict[str, Any]) -> dict[str, Any]:
        with self.lock:
            send_frame(self.sock, dict(message, worker=self.worker_id))
            reply = recv_frame(self.sock)
        if reply is None:
            raise ProtocolError("coordinator closed the connection")
        return reply

    def close(self) -> None:
        try:
            self.sock.close()
        except OSError:  # pragma: no cover - already torn down
            pass


def _run_tcp_worker(
    address: tuple[str, int],
    *,
    cache: RunCache | None,
    worker_id: str,
    poll: float,
    idle_timeout: float | None,
    reconnect_window: float,
    stop_event: "threading.Event | None",
) -> int:
    executed = 0
    conn: _Connection | None = None
    unreachable_since: float | None = None
    idle_since: float | None = None
    try:
        while True:
            if stop_event is not None and stop_event.is_set():
                return executed
            if conn is None:
                try:
                    conn = _Connection(address, worker_id)
                except (OSError, ProtocolError):
                    now = time.monotonic()
                    if unreachable_since is None:
                        unreachable_since = now
                    if now - unreachable_since >= reconnect_window:
                        return executed
                    time.sleep(min(poll, 0.5))
                    continue
                unreachable_since = None
            try:
                reply = conn.exchange({"op": "next"})
                op = reply.get("op")
                if op == "stop":
                    return executed
                if op == "idle":
                    now = time.monotonic()
                    if idle_since is None:
                        idle_since = now
                    if idle_timeout is not None and now - idle_since >= idle_timeout:
                        return executed
                    time.sleep(poll)
                    continue
                if op != "task":
                    raise ProtocolError(f"expected task/idle/stop, got {op!r}")
                idle_since = None
                outcome = _run_tcp_task(conn, reply, cache)
                if outcome is None:
                    continue  # lease lost mid-run; the task settled elsewhere
                conn.exchange(
                    {"op": "done", "id": reply["id"], "outcome": outcome}
                )
                executed += 1
            except (OSError, ProtocolError):
                conn.close()
                conn = None  # reconnect; an in-flight lease will be stolen
    finally:
        if conn is not None:
            conn.close()


def _run_tcp_task(
    conn: _Connection, task: dict[str, Any], cache: RunCache | None
) -> "dict[str, Any] | None":
    """Execute under a background heartbeat on the shared connection.

    Returns ``None`` when a heartbeat came back ``lost`` -- the lease
    was stolen or the task settled elsewhere, so the run was abandoned
    and there is nothing to report.
    """
    done = threading.Event()
    lost = threading.Event()

    def beat() -> None:
        while not done.wait(conn.heartbeat_interval):
            try:
                reply = conn.exchange({"op": "heartbeat", "id": task["id"]})
            except (OSError, ProtocolError):
                return  # connection died; the main thread will notice
            except Exception:  # pragma: no cover - never kill the runner
                return
            if reply.get("op") == "lost":
                lost.set()
                return

    thread = threading.Thread(target=beat, name="distwork-heartbeat", daemon=True)
    thread.start()
    try:
        return execute_leased_job(task, cache, should_abandon=lost.is_set)
    except ExecutionInterrupted:
        return None
    finally:
        done.set()
        thread.join(timeout=5.0)


# ---------------------------------------------------------------------------
# Spool-directory transport
# ---------------------------------------------------------------------------


def _run_dir_worker(
    root: pathlib.Path,
    *,
    cache: RunCache | None,
    worker_id: str,
    poll: float,
    idle_timeout: float | None,
    stop_event: "threading.Event | None",
) -> int:
    tasks_dir = root / "tasks"
    active_dir = root / "active"
    results_dir = root / "results"
    for directory in (tasks_dir, active_dir, results_dir):
        directory.mkdir(parents=True, exist_ok=True)
    executed = 0
    idle_since: float | None = None
    while True:
        if stop_event is not None and stop_event.is_set():
            return executed
        if (root / "stop").exists():
            return executed
        claimed = _claim_dir_task(tasks_dir, active_dir)
        if claimed is None:
            now = time.monotonic()
            if idle_since is None:
                idle_since = now
            if idle_timeout is not None and now - idle_since >= idle_timeout:
                return executed
            time.sleep(poll)
            continue
        idle_since = None
        active_path, task = claimed
        outcome = _run_dir_task(active_path, task, cache)
        if outcome is None:
            continue  # lease lost mid-run; the task settled elsewhere
        result_path = results_dir / active_path.name
        tmp = result_path.with_name(result_path.name + f".tmp-{os.getpid()}")
        tmp.write_text(
            json.dumps({"id": task["id"], "outcome": outcome}, separators=(",", ":")),
            encoding="utf-8",
        )
        os.replace(tmp, result_path)
        try:
            active_path.unlink()
        except FileNotFoundError:  # stolen while we finished; settle wins
            pass
        executed += 1


def _claim_dir_task(
    tasks_dir: pathlib.Path, active_dir: pathlib.Path
) -> tuple[pathlib.Path, dict[str, Any]] | None:
    """Atomically move the oldest queued task into ``active/``.

    ``os.replace`` of one source path succeeds for exactly one claimant;
    the loser's ``FileNotFoundError`` just means someone else got it.
    """
    for path in sorted(tasks_dir.glob("*.json")):
        target = active_dir / path.name
        try:
            os.replace(path, target)
        except FileNotFoundError:
            continue
        try:
            task = json.loads(target.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):  # pragma: no cover - damage
            continue
        return target, task
    return None


def _run_dir_task(
    active_path: pathlib.Path, task: dict[str, Any], cache: RunCache | None
) -> "dict[str, Any] | None":
    """Execute under a background mtime heartbeat on the claimed file.

    Returns ``None`` when the active file vanished -- the lease was
    stolen back onto the queue or the task settled elsewhere, so the
    run was abandoned and there is nothing to report.
    """
    done = threading.Event()
    lost = threading.Event()

    def beat() -> None:
        while not done.wait(1.0):
            try:
                os.utime(active_path)
            except FileNotFoundError:
                lost.set()  # stolen or settled elsewhere; abandon the run
                return
            except OSError:
                return  # transient damage: stop beating, let the lease lapse

    thread = threading.Thread(target=beat, name="distwork-heartbeat", daemon=True)
    thread.start()
    try:
        return execute_leased_job(task, cache, should_abandon=lost.is_set)
    except ExecutionInterrupted:
        return None
    finally:
        done.set()
        thread.join(timeout=5.0)


# ---------------------------------------------------------------------------
# Supervisor (``repro worker --supervise N``)
# ---------------------------------------------------------------------------


def run_supervisor(
    count: int,
    spawn: "Callable[[int], Any]",
    *,
    poll: float = 0.2,
    respawn_delay: float = 0.5,
    max_respawns: "int | None" = None,
    on_spawn: "Callable[[int, Any], None] | None" = None,
) -> int:
    """Keep ``count`` worker slots alive until each finishes cleanly.

    ``spawn(slot)`` starts one worker process (anything with the
    ``Popen`` interface: ``poll``/``terminate``/``kill``/``wait``).  A
    slot whose process exits 0 is *done* -- the coordinator said stop, or
    the idle timeout elapsed -- and is not restarted.  A process that
    dies any other way (crash, OOM-kill, SIGKILL) is respawned after
    ``respawn_delay`` seconds; whatever lease it held is re-queued by the
    coordinator's heartbeat timeout, so the sweep loses no work.

    ``max_respawns`` bounds total restarts (``None`` = unbounded; the
    respawn delay throttles crash loops either way).  Returns the number
    of respawns performed.  On interruption every live child is
    terminated (then killed if it lingers) before the exception
    propagates.
    """
    if count <= 0:
        raise ValueError("supervisor needs at least one worker slot")
    active: dict[int, Any] = {}
    pending: dict[int, float] = {}
    respawns = 0

    def start(slot: int) -> None:
        process = spawn(slot)
        active[slot] = process
        if on_spawn is not None:
            on_spawn(slot, process)

    try:
        for slot in range(count):
            start(slot)
        while active or pending:
            now = time.monotonic()
            for slot, process in list(active.items()):
                code = process.poll()
                if code is None:
                    continue
                del active[slot]
                if code == 0:
                    continue  # clean exit: the slot's work is finished
                if max_respawns is not None and respawns >= max_respawns:
                    continue
                pending[slot] = now + respawn_delay
            for slot, deadline in list(pending.items()):
                if now >= deadline:
                    del pending[slot]
                    # Re-check the cap here: several slots can die in one
                    # sweep of the poll loop and be queued together.
                    if max_respawns is not None and respawns >= max_respawns:
                        continue
                    start(slot)
                    respawns += 1
            if active or pending:
                time.sleep(poll)
        return respawns
    except BaseException:
        for process in active.values():
            try:
                process.terminate()
            except Exception:  # pragma: no cover - already-dead race
                pass
        for process in active.values():
            try:
                process.wait(timeout=5.0)
            except Exception:
                try:
                    process.kill()
                except Exception:  # pragma: no cover - already-dead race
                    pass
        raise


def _spawn_worker_process(argv: list[str]):
    """Start one ``repro worker`` child with this interpreter."""
    import subprocess
    import sys

    return subprocess.Popen([sys.executable, "-m", "repro", "worker", *argv])


def _supervise_main(args: argparse.Namespace) -> int:
    """Run ``--supervise N``: spawn N single-worker children and babysit."""
    base_id = args.id or f"{socket.gethostname()}-{os.getpid()}"
    child_argv = [args.endpoint]
    if args.cache_dir is not None:
        child_argv += ["--cache-dir", args.cache_dir]
    if args.no_cache:
        child_argv += ["--no-cache"]
    child_argv += ["--poll", str(args.poll)]
    if args.idle_timeout is not None:
        child_argv += ["--idle-timeout", str(args.idle_timeout)]
    child_argv += ["--reconnect-window", str(args.reconnect_window)]

    def spawn(slot: int):
        return _spawn_worker_process(child_argv + ["--id", f"{base_id}-w{slot}"])

    def announce(slot: int, process) -> None:
        # One parseable line per (re)spawn; tests and ops tooling use the
        # pid to target individual workers.
        print(f"supervisor: worker {slot} pid {process.pid}", flush=True)

    respawns = run_supervisor(
        args.supervise,
        spawn,
        poll=min(args.poll, 0.5),
        respawn_delay=args.respawn_delay,
        max_respawns=args.max_respawns,
        on_spawn=announce,
    )
    print(f"supervisor done: {args.supervise} worker(s), {respawns} respawn(s)")
    return 0


# ---------------------------------------------------------------------------
# CLI (``repro worker``)
# ---------------------------------------------------------------------------


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro worker",
        description=(
            "Serve simulation jobs leased from a sweep coordinator. "
            "ENDPOINT is host:port (tcp) or a shared spool directory."
        ),
    )
    parser.add_argument("endpoint", help="coordinator host:port or spool directory")
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="shared result cache directory (default: the repo-wide default)",
    )
    parser.add_argument(
        "--no-cache", action="store_true", help="run without the shared result cache"
    )
    parser.add_argument(
        "--id", default=None, help="worker identity (default: hostname-pid)"
    )
    parser.add_argument(
        "--poll",
        type=float,
        default=0.2,
        help="seconds between idle polls (default: 0.2)",
    )
    parser.add_argument(
        "--idle-timeout",
        type=float,
        default=None,
        help="exit after this many idle seconds (default: run until stopped)",
    )
    parser.add_argument(
        "--reconnect-window",
        type=float,
        default=10.0,
        help=(
            "tcp only: exit after the coordinator stays unreachable this "
            "many seconds (default: 10; raise it to start workers before "
            "the sweep)"
        ),
    )
    parser.add_argument(
        "--supervise",
        type=int,
        default=0,
        metavar="N",
        help=(
            "run N worker child processes and respawn any that die "
            "abnormally; a child exiting cleanly (stop/idle) is done "
            "(default: 0 = serve jobs in this process)"
        ),
    )
    parser.add_argument(
        "--respawn-delay",
        type=float,
        default=0.5,
        help="supervisor: seconds to wait before restarting a dead worker",
    )
    parser.add_argument(
        "--max-respawns",
        type=int,
        default=None,
        help="supervisor: stop restarting after this many respawns total",
    )
    args = parser.parse_args(argv)
    if args.supervise:
        return _supervise_main(args)
    cache = None if args.no_cache else RunCache(args.cache_dir)
    executed = run_worker(
        args.endpoint,
        cache=cache,
        worker_id=args.id,
        poll=args.poll,
        idle_timeout=args.idle_timeout,
        reconnect_window=args.reconnect_window,
    )
    print(f"worker done: {executed} job(s) executed")
    return 0
