"""Fault injection for the resilient execution layer.

The chaos harness makes :func:`repro.experiments.parallel.execute_job`
misbehave *on purpose* -- crash the worker process, hang, raise, or
return a garbled result -- on chosen attempts of chosen jobs, and can
corrupt persistent-cache bytes on demand.  The chaos test suite uses it
to prove every recovery path in the executor; it is shipped inside the
package (not ``tests/``) because pool workers must be able to import it.

Two activation routes:

* **monkeypatch / in-process**: :func:`install` a :class:`ChaosConfig`
  (or any ``(job, attempt) -> action`` callable) -- serial execution and
  the current process only;
* **environment**: set ``REPRO_CHAOS`` to the config's JSON (or
  ``@/path/to/config.json``) -- worker processes inherit the variable,
  so faults fire inside the pool.

Fault decisions are **deterministic**: a rate-based fault fires iff
``sha256(seed, job_key, attempt)`` lands under the rate, so the same
schedule replays across processes and invocations, and rate faults fire
on the *first* attempt only -- bounded retries therefore always converge
to the fault-free result (the acceptance property the chaos suite
asserts).  Explicit :class:`FaultRule`\\ s can target any attempt list.

Actions:

* ``crash``   -- SIGKILL the worker (→ ``BrokenProcessPool`` in the
  parent).  In the main process it degrades to raising
  :class:`ChaosError` rather than killing the host.
* ``hang``    -- sleep ``hang_seconds`` before running (trips per-job
  timeouts; without a timeout the run merely slows).
* ``error``   -- raise :class:`ChaosError` (a retryable ``injected``
  failure).
* ``garbage`` -- run normally, then return a corrupted result (negative
  cycle count) that the executor's validator rejects and retries.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import signal
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.parallel import RunJob

__all__ = [
    "ACTIONS",
    "ChaosConfig",
    "ChaosError",
    "FaultRule",
    "GarbageResult",
    "corrupt_cache_entry",
    "corrupt_file",
    "env_action",
    "install",
    "uninstall",
]

ENV_VAR = "REPRO_CHAOS"
ACTIONS = ("crash", "hang", "error", "garbage")


class ChaosError(RuntimeError):
    """An injected in-process fault (classified ``injected``, retryable)."""


# Re-exported for convenience: the validator's rejection of a garbled
# result lives with the other failure types.
from repro.experiments.outcomes import GarbageResult  # noqa: E402


def _hash01(seed: int, key: str, attempt: int) -> float:
    """Deterministic uniform-ish draw in [0, 1) for one (job, attempt)."""
    digest = hashlib.sha256(f"{seed}:{key}:{attempt}".encode()).digest()
    return int.from_bytes(digest[:8], "big") / float(1 << 64)


@dataclass(frozen=True)
class FaultRule:
    """One targeted fault: which jobs, which attempts, what happens.

    ``match`` filters on job fields (``kernel``, ``policy`` -- the
    preset/label string, ``config`` -- the machine name, ``clusters``);
    an empty match hits every job.  ``attempts`` lists the attempt
    numbers (1-based) the fault fires on; ``None`` means every attempt.
    ``rate`` < 1.0 fires the rule on that deterministic fraction of
    matching (job, attempt) pairs.
    """

    mode: str
    match: dict[str, Any] = field(default_factory=dict)
    attempts: tuple[int, ...] | None = None
    rate: float = 1.0

    def __post_init__(self) -> None:
        if self.mode not in ACTIONS:
            raise ValueError(f"unknown chaos mode {self.mode!r}; want one of {ACTIONS}")
        if self.attempts is not None:
            object.__setattr__(self, "attempts", tuple(int(a) for a in self.attempts))
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError("rate must be within [0, 1]")

    def matches(self, job: "RunJob", attempt: int) -> bool:
        if self.attempts is not None and attempt not in self.attempts:
            return False
        if not self.match:
            return True
        from repro.specs.policy import policy_label

        fields = {
            "kernel": job.kernel,
            "policy": policy_label(job.policy),
            "config": job.config.name,
            "clusters": job.config.num_clusters,
        }
        return all(fields.get(key) == value for key, value in self.match.items())

    # -- serialization --------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        data: dict[str, Any] = {"mode": self.mode}
        if self.match:
            data["match"] = dict(self.match)
        if self.attempts is not None:
            data["attempts"] = list(self.attempts)
        if self.rate != 1.0:
            data["rate"] = self.rate
        return data

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "FaultRule":
        attempts = data.get("attempts")
        return cls(
            mode=data["mode"],
            match=dict(data.get("match", {})),
            attempts=None if attempts is None else tuple(attempts),
            rate=float(data.get("rate", 1.0)),
        )


@dataclass(frozen=True)
class ChaosConfig:
    """A complete, serializable fault schedule.

    ``crash_rate`` is the blanket "every worker has a small chance of
    dying" knob (first attempts only, see the module docstring);
    ``rules`` add targeted faults on top.  The first matching rule wins.
    """

    rules: tuple[FaultRule, ...] = ()
    crash_rate: float = 0.0
    seed: int = 0
    hang_seconds: float = 30.0

    def __post_init__(self) -> None:
        object.__setattr__(
            self,
            "rules",
            tuple(
                r if isinstance(r, FaultRule) else FaultRule.from_dict(r)
                for r in self.rules
            ),
        )
        if not 0.0 <= self.crash_rate <= 1.0:
            raise ValueError("crash_rate must be within [0, 1]")

    # ------------------------------------------------------------------
    def action_for(self, job: "RunJob", attempt: int) -> str | None:
        """The fault (if any) to inject for this (job, attempt)."""
        from repro.experiments.cache import job_key

        key = None
        for rule in self.rules:
            if not rule.matches(job, attempt):
                continue
            if rule.rate >= 1.0:
                return rule.mode
            if key is None:
                key = job_key(job)
            if _hash01(self.seed, f"{rule.mode}:{key}", attempt) < rule.rate:
                return rule.mode
        if self.crash_rate > 0.0 and attempt == 1:
            if key is None:
                key = job_key(job)
            if _hash01(self.seed, key, attempt) < self.crash_rate:
                return "crash"
        return None

    def __call__(self, job: "RunJob", attempt: int) -> str | None:
        return self.action_for(job, attempt)

    # -- serialization --------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        return {
            "rules": [rule.to_dict() for rule in self.rules],
            "crash_rate": self.crash_rate,
            "seed": self.seed,
            "hang_seconds": self.hang_seconds,
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ChaosConfig":
        return cls(
            rules=tuple(data.get("rules", ())),
            crash_rate=float(data.get("crash_rate", 0.0)),
            seed=int(data.get("seed", 0)),
            hang_seconds=float(data.get("hang_seconds", 30.0)),
        )

    def env_value(self) -> str:
        """The string to place in ``REPRO_CHAOS`` to activate this config."""
        return self.to_json()


# ---------------------------------------------------------------------------
# Activation: in-process hook and environment plumbing
# ---------------------------------------------------------------------------


def install(hook: "ChaosConfig | Callable[[RunJob, int], str | None]") -> None:
    """Activate ``hook`` for in-process execution (monkeypatch route).

    ``hook`` is a :class:`ChaosConfig` or any callable mapping
    ``(job, attempt)`` to an action name (or ``None``).  Only the current
    process is affected; use ``REPRO_CHAOS`` to reach pool workers.
    """
    from repro.experiments import parallel

    parallel._chaos_hook = hook


def uninstall() -> None:
    """Deactivate any in-process hook installed by :func:`install`."""
    from repro.experiments import parallel

    parallel._chaos_hook = None


_env_cache: tuple[str, ChaosConfig] | None = None


def env_action(job: "RunJob", attempt: int) -> str | None:
    """The fault scheduled by ``REPRO_CHAOS`` for this (job, attempt)."""
    global _env_cache
    raw = os.environ.get(ENV_VAR)
    if not raw:
        return None
    if _env_cache is None or _env_cache[0] != raw:
        text = raw
        if raw.startswith("@"):
            text = pathlib.Path(raw[1:]).read_text()
        _env_cache = (raw, ChaosConfig.from_dict(json.loads(text)))
    return _env_cache[1].action_for(job, attempt)


def perform(action: str, config: "ChaosConfig | None" = None) -> None:
    """Carry out a pre-run fault action (``garbage`` is applied post-run).

    ``crash`` kills the current process abruptly when it is a pool
    worker (its parent sees ``BrokenProcessPool``); in a main process it
    raises :class:`ChaosError` instead, so serial chaos runs exercise the
    retry path without taking the host down.
    """
    if action == "crash":
        import multiprocessing

        if multiprocessing.parent_process() is not None:
            if hasattr(signal, "SIGKILL"):
                os.kill(os.getpid(), signal.SIGKILL)
            os._exit(99)  # windows / no-SIGKILL fallback
        raise ChaosError("injected crash (in-process)")
    if action == "hang":
        import time

        seconds = config.hang_seconds if config is not None else 30.0
        time.sleep(seconds)
        return
    if action == "error":
        raise ChaosError("injected error")
    if action == "garbage":
        return  # handled by the caller after the run
    raise ValueError(f"unknown chaos action {action!r}")


# ---------------------------------------------------------------------------
# Byte-level corruption helpers (cache self-healing tests)
# ---------------------------------------------------------------------------


def corrupt_file(path: "str | pathlib.Path", mode: str = "truncate") -> None:
    """Damage ``path`` in place: ``truncate`` to half, or ``garble`` bytes."""
    path = pathlib.Path(path)
    data = path.read_bytes()
    if mode == "truncate":
        path.write_bytes(data[: len(data) // 2])
    elif mode == "garble":
        head = bytes((b ^ 0xA5) for b in data[:64])
        path.write_bytes(head + data[64:])
    else:
        raise ValueError(f"unknown corruption mode {mode!r}")


def corrupt_cache_entry(cache, job, mode: str = "truncate") -> pathlib.Path:
    """Corrupt the on-disk cache entry for ``job`` (must exist)."""
    from repro.experiments.cache import job_key

    path = cache.path_for(job_key(job))
    corrupt_file(path, mode)
    return path
