"""Test-support utilities shipped with the package.

:mod:`repro.testing.chaos` is the fault-injection harness the chaos test
suite (and any user who wants to rehearse failure recovery) drives.  It
lives in the package rather than in ``tests/`` because worker processes
must be able to import it.
"""

from repro.testing.chaos import (
    ChaosConfig,
    ChaosError,
    FaultRule,
    GarbageResult,
    corrupt_file,
    install,
    uninstall,
)

__all__ = [
    "ChaosConfig",
    "ChaosError",
    "FaultRule",
    "GarbageResult",
    "corrupt_file",
    "install",
    "uninstall",
]
