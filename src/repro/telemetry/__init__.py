"""Opt-in observability for the simulator and the experiment stack.

Three layers, all zero-cost when unused:

* :mod:`repro.telemetry.recorder` -- the :class:`Telemetry` protocol the
  simulator samples through, the :class:`Recorder` implementation, and
  the :class:`TelemetryData` payload carried on
  :attr:`SimulationResult.telemetry`;
* :mod:`repro.telemetry.tracing` -- span-style wall-time tracing
  (:class:`Tracer` / :class:`Span`) threaded through the workbench,
  ``execute_job`` and the persistent run cache;
* :mod:`repro.telemetry.report` -- the :class:`RunReport` artifact
  (validated, versioned JSON plus a terminal rendering) the CLI emits
  under ``--metrics``.

The stable import path for all of these is :mod:`repro.api`.
"""

from repro.telemetry.recorder import (
    DEFAULT_INTERVAL,
    NullTelemetry,
    Recorder,
    Telemetry,
    TelemetryData,
    telemetry_from_dict,
    telemetry_to_dict,
)
from repro.telemetry.report import REPORT_SCHEMA, RunReport, validate_report
from repro.telemetry.tracing import Span, Tracer

__all__ = [
    "DEFAULT_INTERVAL",
    "NullTelemetry",
    "REPORT_SCHEMA",
    "Recorder",
    "RunReport",
    "Span",
    "Telemetry",
    "TelemetryData",
    "Tracer",
    "telemetry_from_dict",
    "telemetry_to_dict",
    "validate_report",
]
