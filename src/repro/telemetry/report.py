"""Machine-readable run reports: what a figure driver actually executed.

A :class:`RunReport` bundles, for one experiment invocation: the
workbench parameters, one row per simulation (with its telemetry summary
when the run collected metrics), cross-run telemetry totals, the span
trace, persistent-cache counters and the figure's own table.  The JSON
form is versioned (:data:`REPORT_SCHEMA`) and checked by
:func:`validate_report` -- the CLI validates every report it writes, so a
report artifact that loads is a report that parses.

Reports are reproduction evidence: the stall/steer totals are the same
counters the paper's Figure 6 event classification reasons about, so a
report of the Figure 14 sweep shows *where* each policy's cycles went,
not just the end-of-run CPI.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Sequence

from repro.specs.policy import policy_label
from repro.telemetry.tracing import Tracer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.results import SimulationResult
    from repro.experiments.parallel import RunJob

__all__ = ["REPORT_SCHEMA", "RunReport", "validate_report"]

REPORT_SCHEMA = "repro.run_report/1"

# Top-level keys every report must carry, with their required types.
_REQUIRED_TOP = {
    "schema": str,
    "name": str,
    "workbench": dict,
    "runs": list,
    "totals": dict,
}
_REQUIRED_RUN = {
    "kernel": str,
    "config": str,
    "clusters": int,
    "policy": str,
    "sim": str,
    "warm": bool,
    "cycles": int,
    "instructions": int,
    "cpi": float,
    "ipc": float,
    "global_values": int,
}
_REQUIRED_TOTALS = {
    "runs": int,
    "cycles": int,
    "instructions": int,
    "dispatch_stalls": int,
    "stall_steer": int,
    "stall_window": int,
    "steer_causes": dict,
}


@dataclass
class RunReport:
    """One experiment invocation's execution evidence."""

    name: str
    workbench: dict[str, Any]
    runs: list[dict[str, Any]] = field(default_factory=list)
    totals: dict[str, Any] = field(default_factory=dict)
    spans: dict[str, Any] | None = None
    cache: dict[str, int] | None = None
    figure: dict[str, Any] | None = None
    elapsed_seconds: float | None = None
    failures: list[dict[str, Any]] = field(default_factory=list)

    # ------------------------------------------------------------------
    @classmethod
    def from_runs(
        cls,
        name: str,
        runs: Sequence[tuple["RunJob", "SimulationResult"]],
        workbench: dict[str, Any] | None = None,
        figure: dict[str, Any] | None = None,
        tracer: Tracer | None = None,
        cache_stats: dict[str, int] | None = None,
        elapsed_seconds: float | None = None,
        failures: Sequence[dict[str, Any]] | None = None,
    ) -> "RunReport":
        """Build a report from executed (job, result) pairs.

        ``failures`` carries one record per job that failed past its
        retry budget (kernel/config/policy plus the
        :class:`~repro.experiments.outcomes.RunFailure` payload), so a
        report of a degraded sweep states what is *missing* from its
        totals, not just what ran.
        """
        report = cls(
            name=name,
            workbench=dict(workbench or {}),
            spans=tracer.to_dict() if tracer is not None else None,
            cache=dict(cache_stats) if cache_stats is not None else None,
            figure=figure,
            elapsed_seconds=elapsed_seconds,
            failures=[dict(f) for f in failures] if failures else [],
        )
        totals = {
            "runs": 0,
            "cycles": 0,
            "instructions": 0,
            "dispatch_stalls": 0,
            "stall_steer": 0,
            "stall_window": 0,
            "steer_causes": {},
        }
        for job, result in runs:
            row: dict[str, Any] = {
                "kernel": job.kernel,
                "config": result.config.name,
                "clusters": result.config.num_clusters,
                "policy": policy_label(job.policy),
                "sim": job.sim,
                "warm": job.warm,
                "cycles": result.cycles,
                "instructions": result.instructions,
                "cpi": result.cpi,
                "ipc": result.ipc,
                "global_values": result.global_values,
                "l1_hits": result.l1_hits,
                "l1_misses": result.l1_misses,
            }
            telemetry = result.telemetry
            if telemetry is not None:
                summary = telemetry.summary()
                row["telemetry"] = summary
                totals["dispatch_stalls"] += summary["dispatch_stalls"]
                totals["stall_steer"] += summary["stall_steer"]
                totals["stall_window"] += summary["stall_window"]
                for cause, count in summary["steer_causes"].items():
                    totals["steer_causes"][cause] = (
                        totals["steer_causes"].get(cause, 0) + count
                    )
            totals["runs"] += 1
            totals["cycles"] += result.cycles
            totals["instructions"] += result.instructions
            report.runs.append(row)
        if report.failures:
            totals["failed"] = len(report.failures)
        report.totals = totals
        return report

    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """Versioned JSON form (the artifact the CLI writes)."""
        data = {
            "schema": REPORT_SCHEMA,
            "name": self.name,
            "workbench": self.workbench,
            "runs": self.runs,
            "totals": self.totals,
            "spans": self.spans,
            "cache": self.cache,
            "figure": self.figure,
            "elapsed_seconds": self.elapsed_seconds,
        }
        if self.failures:
            # Only present when something failed: fault-free reports are
            # byte-identical to pre-fault-tolerance ones.
            data["failures"] = self.failures
        return data

    def to_json(self, indent: int = 2) -> str:
        data = self.to_dict()
        validate_report(data)
        return json.dumps(data, indent=indent) + "\n"

    # ------------------------------------------------------------------
    def render(self) -> str:
        """Terminal-friendly summary (tables via :mod:`repro.util.tables`)."""
        from repro.util.tables import format_table

        parts = [f"== run report: {self.name} =="]
        if self.runs:
            headers = [
                "kernel", "config", "policy", "cycles", "cpi",
                "stall_steer", "stall_window", "fwd_events", "max_wakeup",
            ]
            rows = []
            for run in self.runs:
                telemetry = run.get("telemetry") or {}
                fwd = telemetry.get("forwarding_events") or {}
                rows.append([
                    run["kernel"],
                    run["config"],
                    run["policy"],
                    run["cycles"],
                    run["cpi"],
                    telemetry.get("stall_steer", 0),
                    telemetry.get("stall_window", 0),
                    sum(fwd.values()),
                    telemetry.get("max_wakeup_depth", 0),
                ])
            parts.append(format_table(headers, rows))
        totals = self.totals
        parts.append(
            f"totals: {totals.get('runs', 0)} runs, "
            f"{totals.get('cycles', 0):,} cycles, "
            f"{totals.get('instructions', 0):,} instructions, "
            f"stalls steer={totals.get('stall_steer', 0)} "
            f"window={totals.get('stall_window', 0)}"
        )
        if self.failures:
            parts.append(f"failed runs: {len(self.failures)}")
            for failure in self.failures:
                parts.append(
                    f"  {failure.get('kernel')}/{failure.get('config')}/"
                    f"{failure.get('policy')}: {failure.get('kind')} "
                    f"({failure.get('error_type')}) after "
                    f"{failure.get('attempts')} attempt(s)"
                )
        if self.cache is not None:
            parts.append(
                f"cache: hits={self.cache.get('hits', 0)} "
                f"misses={self.cache.get('misses', 0)} "
                f"stores={self.cache.get('stores', 0)}"
            )
        if self.spans and self.spans.get("summary"):
            summary = self.spans["summary"]
            rows = [
                [name, int(entry["count"]), entry["seconds"]]
                for name, entry in sorted(
                    summary.items(), key=lambda item: -item[1]["seconds"]
                )
            ]
            parts.append(format_table(["span", "count", "seconds"], rows))
        return "\n".join(parts)


def validate_report(data: dict[str, Any]) -> None:
    """Raise ``ValueError`` unless ``data`` is a well-formed report."""
    if not isinstance(data, dict):
        raise ValueError("report must be a JSON object")
    if data.get("schema") != REPORT_SCHEMA:
        raise ValueError(
            f"unknown report schema {data.get('schema')!r}; want {REPORT_SCHEMA!r}"
        )
    for key, kind in _REQUIRED_TOP.items():
        if not isinstance(data.get(key), kind):
            raise ValueError(f"report[{key!r}] must be {kind.__name__}")
    for index, run in enumerate(data["runs"]):
        if not isinstance(run, dict):
            raise ValueError(f"runs[{index}] must be an object")
        for key, kind in _REQUIRED_RUN.items():
            value = run.get(key)
            if kind is float:
                ok = isinstance(value, (int, float)) and not isinstance(value, bool)
            elif kind is int:
                ok = isinstance(value, int) and not isinstance(value, bool)
            else:
                ok = isinstance(value, kind)
            if not ok:
                raise ValueError(f"runs[{index}][{key!r}] must be {kind.__name__}")
        telemetry = run.get("telemetry")
        if telemetry is not None and not isinstance(telemetry, dict):
            raise ValueError(f"runs[{index}]['telemetry'] must be an object")
    totals = data["totals"]
    for key, kind in _REQUIRED_TOTALS.items():
        value = totals.get(key)
        if kind is int:
            ok = isinstance(value, int) and not isinstance(value, bool)
        else:
            ok = isinstance(value, kind)
        if not ok:
            raise ValueError(f"totals[{key!r}] must be {kind.__name__}")
    if "failed" in totals:
        value = totals["failed"]
        if not isinstance(value, int) or isinstance(value, bool):
            raise ValueError("totals['failed'] must be int")
    failures = data.get("failures")
    if failures is not None:
        if not isinstance(failures, list):
            raise ValueError("report['failures'] must be a list")
        for index, failure in enumerate(failures):
            if not isinstance(failure, dict):
                raise ValueError(f"failures[{index}] must be an object")
            for key in ("kind", "error_type", "attempts"):
                if key not in failure:
                    raise ValueError(f"failures[{index}] missing {key!r}")
    for optional in ("spans", "cache", "figure"):
        value = data.get(optional)
        if value is not None and not isinstance(value, dict):
            raise ValueError(f"report[{optional!r}] must be an object or null")
