"""Span-style wall-time tracing for the experiment stack.

A :class:`Tracer` collects named :class:`Span` records around the phases
the harness actually spends time in -- trace preparation, predictor
warm-up, the measured run, persistent-cache lookups and stores, and
worker fan-out -- so a run report can attribute wall time the same way
the simulator attributes cycles.

Workers in a process pool cannot share the parent's tracer, so each
worker records into its own and ships the spans back as plain tuples
(:meth:`Tracer.export`), which the parent merges (:meth:`Tracer.merge`)
tagged ``worker=True``.  Tracing is strictly opt-in: every call site
takes ``tracer=None`` and skips the bookkeeping entirely when absent.

The job service (:mod:`repro.service`) reuses the event side of the
tracer for its scheduling decisions: ``service.submit`` (one per
accepted experiment, tagged with the execute/coalesced/cached split),
``service.coalesce`` (a submission subscribed to in-flight work),
``service.fanout`` (one settlement delivered to multiple experiments)
and ``service.evict`` (a finished record aged out of history).  Pass
``tracer=`` to :class:`~repro.service.server.ReproServer` to collect
them alongside the executor's spans.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterable

__all__ = ["Span", "Tracer", "null_span"]


@dataclass(frozen=True)
class Span:
    """One timed region: a name, its wall-clock duration, and tags."""

    name: str
    seconds: float
    meta: dict[str, Any] = field(default_factory=dict)

    def to_tuple(self) -> tuple[str, float, dict[str, Any]]:
        """Picklable form for shipping across process boundaries."""
        return (self.name, self.seconds, dict(self.meta))


@contextmanager
def null_span():
    """The do-nothing span used when no tracer is attached."""
    yield


class Tracer:
    """Collects spans; aggregates by name for reports and ``--profile``."""

    def __init__(self, clock=time.perf_counter):
        self._clock = clock
        self.spans: list[Span] = []

    # ------------------------------------------------------------------
    @contextmanager
    def span(self, name: str, **meta: Any):
        """Time the enclosed block as one span named ``name``."""
        start = self._clock()
        try:
            yield
        finally:
            self.spans.append(Span(name, self._clock() - start, meta))

    def add(self, name: str, seconds: float, **meta: Any) -> None:
        """Record an externally timed span."""
        self.spans.append(Span(name, seconds, meta))

    def event(self, name: str, **meta: Any) -> None:
        """Record a durationless occurrence (a retry, a pool respawn).

        Events share the span log and summary, so ``--profile`` and run
        reports show their *counts* alongside the timed phases; their
        zero duration keeps the wall-time attribution honest.
        """
        self.spans.append(Span(name, 0.0, meta))

    # ------------------------------------------------------------------
    def export(self) -> list[tuple[str, float, dict[str, Any]]]:
        """All spans as picklable tuples (worker -> parent transport)."""
        return [span.to_tuple() for span in self.spans]

    def merge(
        self,
        exported: Iterable[tuple[str, float, dict[str, Any]]],
        **extra_meta: Any,
    ) -> None:
        """Absorb spans exported by another tracer, adding ``extra_meta``."""
        for name, seconds, meta in exported:
            self.spans.append(Span(name, seconds, {**meta, **extra_meta}))

    # ------------------------------------------------------------------
    def summary(self) -> dict[str, dict[str, float]]:
        """Per-name totals: ``{name: {count, seconds}}``, insertion order."""
        totals: dict[str, dict[str, float]] = {}
        for span in self.spans:
            entry = totals.setdefault(span.name, {"count": 0, "seconds": 0.0})
            entry["count"] += 1
            entry["seconds"] += span.seconds
        for entry in totals.values():
            entry["seconds"] = round(entry["seconds"], 6)
        return totals

    def to_dict(self) -> dict[str, Any]:
        """JSON form: the raw span log plus the per-name summary."""
        return {
            "spans": [
                {"name": s.name, "seconds": round(s.seconds, 6), "meta": s.meta}
                for s in self.spans
            ],
            "summary": self.summary(),
        }

    def format_summary(self) -> str:
        """Aligned plain-text table of the per-name totals."""
        from repro.util.tables import format_table

        summary = self.summary()
        total = sum(entry["seconds"] for entry in summary.values())
        rows = [
            [name, int(entry["count"]), entry["seconds"],
             100.0 * entry["seconds"] / total if total else 0.0]
            for name, entry in sorted(
                summary.items(), key=lambda item: -item[1]["seconds"]
            )
        ]
        return format_table(["span", "count", "seconds", "share_%"], rows)
