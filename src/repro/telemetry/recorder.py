"""Opt-in pipeline telemetry: per-interval metrics with zero cost when off.

The design exploits a property the simulator already has: every
:class:`~repro.core.instruction.InFlight` record carries full event
provenance (why it dispatched when it did, what steering decided, why it
committed when it did).  Every *cumulative* telemetry metric -- dispatch
stalls split by cause, steering decisions per policy arm, commit reasons,
the LoC-predictor confusion matrix, the Figure 6 lost-cycle event
classification -- is therefore derived **post-run** from the records, at
zero hot-loop cost and with bit-identical simulation output by
construction.

Only *live* machine state that is gone by the end of the run needs an
in-loop hook: per-cluster occupancy, ready-pool and wakeup-heap depths,
and ready-pressure.  :class:`Recorder` samples those once every
``interval`` cycles; with telemetry off the entire hot-loop cost is one
integer comparison per simulated cycle against a sentinel that never
fires.

The output is a :class:`TelemetryData` payload: plain JSON types, carried
on :attr:`SimulationResult.telemetry <repro.core.results.SimulationResult>`
and round-tripped losslessly through :mod:`repro.core.serialize` and the
persistent :class:`~repro.experiments.cache.RunCache` (telemetry-off
entries are unaffected -- see :func:`repro.experiments.cache.job_key`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Protocol, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids core<->telemetry cycle
    from repro.core.results import SimulationResult
    from repro.core.wakeup import ClusterWakeupQueue

__all__ = [
    "DEFAULT_INTERVAL",
    "NullTelemetry",
    "Recorder",
    "Telemetry",
    "TelemetryData",
    "telemetry_from_dict",
    "telemetry_to_dict",
]

# Cycles between live samples.  Deliberately not configurable per run-job:
# the payload a job produces must be a pure function of the job so the
# persistent cache stays content-addressed (see RunJob.metrics).
DEFAULT_INTERVAL = 256

# DispatchReason value -> interval-series name for the stall split.
_STALL_SERIES = {
    "steer_stall": "stall_steer",
    "cluster_full": "stall_window",
    "rob_full": "stall_rob",
    "fetch_redirect": "stall_fetch",
}


class Telemetry(Protocol):
    """What the simulator needs from a telemetry sink.

    ``interval <= 0`` disables live sampling entirely (the simulator then
    never calls :meth:`sample`).  ``sample`` observes -- it must not
    mutate machine state; simulation output is identical with any
    implementation attached.
    """

    interval: int

    def sample(
        self,
        now: int,
        occupancy: Sequence[int],
        queues: Sequence["ClusterWakeupQueue"],
    ) -> None: ...

    def finalize(self, result: "SimulationResult") -> "TelemetryData | None": ...


class NullTelemetry:
    """The no-op default: never samples, finalizes to nothing."""

    interval = 0

    def sample(self, now, occupancy, queues) -> None:  # pragma: no cover
        pass

    def finalize(self, result) -> None:
        return None


@dataclass
class TelemetryData:
    """One run's telemetry payload, in plain JSON types.

    ``samples`` are the live per-interval snapshots; everything else is
    derived from the run's records at :meth:`Recorder.finalize` time.
    ``interval_series`` bins per-instruction events by ``time // interval``:
    ``dispatched`` / ``issued`` / ``committed`` throughput plus the
    dispatch-stall split (``stall_steer`` = stall-over-steer,
    ``stall_window`` = all cluster windows full, ``stall_rob``,
    ``stall_fetch``).
    """

    interval: int
    cycles: int
    instructions: int
    # Per-cluster window sizes, for occupancy normalization.  Empty on
    # payloads recorded before this field existed (cache entries round-trip
    # losslessly either way).
    window_sizes: list[int] = field(default_factory=list)
    samples: list[dict[str, Any]] = field(default_factory=list)
    interval_series: dict[str, list[int]] = field(default_factory=dict)
    dispatch_reasons: dict[str, int] = field(default_factory=dict)
    steer_causes: dict[str, int] = field(default_factory=dict)
    commit_reasons: dict[str, int] = field(default_factory=dict)
    predictor: dict[str, float] = field(default_factory=dict)
    contention_events: dict[str, int] = field(default_factory=dict)
    forwarding_events: dict[str, int] = field(default_factory=dict)
    policy: dict[str, Any] | None = None

    # ------------------------------------------------------------------
    @property
    def dispatch_stalls(self) -> int:
        """Dispatches gated by a stall (any cause but start/bandwidth)."""
        return sum(
            count
            for reason, count in self.dispatch_reasons.items()
            if reason in _STALL_SERIES
        )

    def max_wakeup_depth(self) -> int:
        """Deepest per-cluster wakeup heap seen across all samples."""
        return max(
            (max(s["wakeup_depth"]) for s in self.samples if s["wakeup_depth"]),
            default=0,
        )

    def mean_occupancy(self) -> float:
        """Mean window utilization (occupancy / window size) over all samples.

        Each cluster's sampled occupancy is normalized by *that cluster's*
        window size: on a heterogeneous machine a raw average would let a
        fat cluster's large window drown out the thin ones.  Legacy
        payloads without recorded window sizes fall back to the raw mean
        occupancy count.
        """
        sizes = self.window_sizes
        if not sizes:
            cells = [v for s in self.samples for v in s["occupancy"]]
            return sum(cells) / len(cells) if cells else 0.0
        cells = [
            occupancy / sizes[index]
            for s in self.samples
            for index, occupancy in enumerate(s["occupancy"])
        ]
        return sum(cells) / len(cells) if cells else 0.0

    def summary(self) -> dict[str, Any]:
        """Compact aggregate view (what run reports embed per run)."""
        return {
            "interval": self.interval,
            "cycles": self.cycles,
            "instructions": self.instructions,
            "samples": len(self.samples),
            "dispatch_stalls": self.dispatch_stalls,
            "stall_steer": self.dispatch_reasons.get("steer_stall", 0),
            "stall_window": self.dispatch_reasons.get("cluster_full", 0),
            "stall_rob": self.dispatch_reasons.get("rob_full", 0),
            "stall_fetch": self.dispatch_reasons.get("fetch_redirect", 0),
            "steer_causes": dict(self.steer_causes),
            "predictor": dict(self.predictor),
            "contention_events": dict(self.contention_events),
            "forwarding_events": dict(self.forwarding_events),
            "max_wakeup_depth": self.max_wakeup_depth(),
            "mean_occupancy": self.mean_occupancy(),
        }


def telemetry_to_dict(data: TelemetryData) -> dict[str, Any]:
    """Lossless JSON-type representation (stable key order)."""
    return {
        "interval": data.interval,
        "cycles": data.cycles,
        "instructions": data.instructions,
        "window_sizes": list(data.window_sizes),
        "samples": [dict(sample) for sample in data.samples],
        "interval_series": {k: list(v) for k, v in data.interval_series.items()},
        "dispatch_reasons": dict(data.dispatch_reasons),
        "steer_causes": dict(data.steer_causes),
        "commit_reasons": dict(data.commit_reasons),
        "predictor": dict(data.predictor),
        "contention_events": dict(data.contention_events),
        "forwarding_events": dict(data.forwarding_events),
        "policy": data.policy,
    }


def telemetry_from_dict(data: dict[str, Any]) -> TelemetryData:
    """Inverse of :func:`telemetry_to_dict`."""
    return TelemetryData(
        interval=data["interval"],
        cycles=data["cycles"],
        instructions=data["instructions"],
        # .get(): payloads cached before window sizes were recorded.
        window_sizes=list(data.get("window_sizes", [])),
        samples=[dict(sample) for sample in data["samples"]],
        interval_series={k: list(v) for k, v in data["interval_series"].items()},
        dispatch_reasons=dict(data["dispatch_reasons"]),
        steer_causes=dict(data["steer_causes"]),
        commit_reasons=dict(data["commit_reasons"]),
        predictor=dict(data["predictor"]),
        contention_events=dict(data["contention_events"]),
        forwarding_events=dict(data["forwarding_events"]),
        policy=data["policy"],
    )


class Recorder:
    """Collects live samples during a run and derives the full payload.

    ``classify`` additionally runs the Figure 6 critical-path event
    classification and the predictor confusion matrix at finalize time
    (one chunked critical-path walk over the records -- the same cost the
    figure analyses pay).
    """

    def __init__(
        self,
        interval: int = DEFAULT_INTERVAL,
        classify: bool = True,
        pressure_horizon: int = 0,
    ):
        if interval <= 0:
            raise ValueError("interval must be positive; use NullTelemetry to disable")
        self.interval = interval
        self.classify = classify
        self.pressure_horizon = pressure_horizon
        self._samples: list[tuple[int, tuple[int, ...], tuple]] = []
        self._policy: dict[str, Any] | None = None

    # ------------------------------------------------------------------
    def note_policies(self, steering, scheduler) -> None:
        """Record the policy stack's structured self-description."""
        self._policy = {
            "steering": steering.describe(),
            "scheduler": scheduler.describe(),
        }

    def sample(self, now, occupancy, queues) -> None:
        """Snapshot live per-cluster state (called by the simulator)."""
        horizon = self.pressure_horizon
        self._samples.append(
            (
                now,
                tuple(occupancy),
                tuple(q.snapshot(now, horizon) for q in queues),
            )
        )

    # ------------------------------------------------------------------
    def finalize(self, result: "SimulationResult") -> TelemetryData:
        """Derive the payload from ``result``'s records plus the samples."""
        records = result.records
        interval = self.interval
        cycles = result.cycles
        bins = cycles // interval + 1

        dispatched = [0] * bins
        issued = [0] * bins
        committed = [0] * bins
        stall_series = {name: [0] * bins for name in _STALL_SERIES.values()}
        dispatch_reasons: dict[str, int] = {}
        steer_causes: dict[str, int] = {}
        commit_reasons: dict[str, int] = {}
        for record in records:
            dispatched[record.dispatch_time // interval] += 1
            issued[record.issue_time // interval] += 1
            committed[record.commit_time // interval] += 1
            reason = record.dispatch_reason.value
            dispatch_reasons[reason] = dispatch_reasons.get(reason, 0) + 1
            series = _STALL_SERIES.get(reason)
            if series is not None:
                stall_series[series][record.dispatch_time // interval] += 1
            cause = record.steer_cause.value
            steer_causes[cause] = steer_causes.get(cause, 0) + 1
            commit = record.commit_reason.value
            commit_reasons[commit] = commit_reasons.get(commit, 0) + 1

        samples = [
            {
                "cycle": cycle,
                "occupancy": list(occupancy),
                "ready": [snap[0] for snap in snaps],
                "wakeup_depth": [snap[1] for snap in snaps],
                "pressure": [snap[2] for snap in snaps],
            }
            for cycle, occupancy, snaps in self._samples
        ]

        data = TelemetryData(
            interval=interval,
            cycles=cycles,
            instructions=len(records),
            window_sizes=[
                cluster.window_size for cluster in result.config.clusters
            ],
            samples=samples,
            interval_series={
                "dispatched": dispatched,
                "issued": issued,
                "committed": committed,
                **stall_series,
            },
            dispatch_reasons=dispatch_reasons,
            steer_causes=steer_causes,
            commit_reasons=commit_reasons,
            policy=self._policy,
        )
        if self.classify:
            self._classify(records, data)
        return data

    @staticmethod
    def _classify(records, data: TelemetryData) -> None:
        """Predictor confusion + Figure 6 event classification.

        Imported lazily: the critical-path walk lives above the core
        layer, and telemetry must stay importable from anywhere.
        """
        from repro.analysis.events import classify_lost_cycle_events
        from repro.criticality.critical_path import critical_flags

        flags = critical_flags(records)
        tp = fp = fn = tn = 0
        loc_critical = 0.0
        loc_other = 0.0
        for record, critical in zip(records, flags):
            if record.predicted_critical:
                if critical:
                    tp += 1
                else:
                    fp += 1
            elif critical:
                fn += 1
            else:
                tn += 1
            if critical:
                loc_critical += record.loc
            else:
                loc_other += record.loc
        critical_count = tp + fn
        other_count = fp + tn
        data.predictor = {
            "true_positive": tp,
            "false_positive": fp,
            "false_negative": fn,
            "true_negative": tn,
            "mean_loc_critical": loc_critical / critical_count if critical_count else 0.0,
            "mean_loc_other": loc_other / other_count if other_count else 0.0,
        }
        contention, forwarding = classify_lost_cycle_events(records, flags)
        data.contention_events = {
            "predicted_critical": contention.predicted_critical,
            "other": contention.other,
        }
        data.forwarding_events = {
            "load_balance": forwarding.load_balance,
            "dyadic": forwarding.dyadic,
            "other": forwarding.other,
        }
