"""Crash-safe write-ahead store for the job service.

The service keeps its authoritative state in process memory (records,
cells, event journals, quota buckets) because every mutation happens on
one event loop.  This module makes that state survive the process: an
append-only journal under ``<cache>/service/`` records every accepted
submission (the full canonical :class:`~repro.specs.ExperimentSpec`
payload -- the submission *is* the work order), every per-job
settlement, every terminal state, and quota balances, so a restarted
server can replay the file and owe its clients exactly what the dead
server owed them.

Durability model -- tuned to the failure the acceptance test injects
(``kill -9`` of the *process*, not power loss):

* **Appends** are one JSON object per line, written and flushed
  immediately.  Data handed to the OS survives SIGKILL; ``fsync`` (which
  only adds power-loss protection) is deliberately skipped to keep the
  settle hot path cheap.
* **Rewrites** (:meth:`DurableStore.compact`) go through the same
  tmp-file + :func:`os.replace` dance as
  :class:`~repro.experiments.cache.RunCache` and
  :class:`~repro.experiments.manifest.SweepManifest`: readers never see
  a half-written journal.
* **Corruption** is quarantined, not fatal: a torn final line (the
  SIGKILL landed mid-append) or a damaged entry is copied to
  ``journal.jsonl.corrupt`` and skipped; everything parseable is
  recovered and the damaged jobs simply recompute.  This mirrors the
  run cache's quarantine discipline one layer up.

Layout::

    <cache>/service/
        journal.jsonl            # submit / settle / terminal / evict / quota
        journal.jsonl.corrupt    # quarantined damaged lines (forensics)
        events/<exp-id>.jsonl    # spilled SSE journal entries, replayable

Event spill files give ``Last-Event-ID`` its cross-restart meaning: the
in-memory journal keeps only a bounded tail, older entries live here,
and the SSE stream reads through (memory first, then disk) so a client
reconnecting after a server restart replays the exact suffix it missed.
"""

from __future__ import annotations

import json
import os
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

__all__ = [
    "DurableStore",
    "ReplayResult",
    "STORE_SCHEMA",
    "StoredExperiment",
    "default_store_dir",
]

STORE_SCHEMA = "repro.service_store/1"

_JOURNAL = "journal.jsonl"
_EVENTS_DIR = "events"


def default_store_dir(cache_root: str | os.PathLike) -> Path:
    """Where the service journal lives for a given cache root."""
    return Path(cache_root) / "service"


@dataclass
class StoredExperiment:
    """One experiment as reconstructed from the journal."""

    id: str
    client: str
    priority: int
    created: float
    spec_payload: dict[str, Any]
    # key -> {"ok": bool, "source": str, "failure": dict | None}
    settles: dict[str, dict[str, Any]] = field(default_factory=dict)
    terminal: dict[str, Any] | None = None  # {"status", "finished", "message"}

    @property
    def status(self) -> str:
        return self.terminal["status"] if self.terminal else "queued"


@dataclass
class ReplayResult:
    """Everything :meth:`DurableStore.replay` recovered."""

    experiments: list[StoredExperiment] = field(default_factory=list)
    quota: dict[str, float] = field(default_factory=dict)
    quarantined: int = 0
    evicted: int = 0


class DurableStore:
    """Append-only journal of service state under one directory.

    Thread-safe: the server appends from the event loop *and* (via the
    workbench settle callback path) from worker threads; one lock
    serializes every append so interleaved lines stay whole.
    """

    def __init__(self, root: str | os.PathLike):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        (self.root / _EVENTS_DIR).mkdir(exist_ok=True)
        self._lock = threading.RLock()
        self._journal_file = None
        self.appends = 0
        self.quarantined = 0

    # -- paths ----------------------------------------------------------
    @property
    def journal_path(self) -> Path:
        return self.root / _JOURNAL

    @property
    def quarantine_path(self) -> Path:
        return self.root / f"{_JOURNAL}.corrupt"

    def events_path(self, exp_id: str) -> Path:
        # Experiment ids are server-minted ("exp-000042"), never client
        # strings, so they are safe as filenames by construction; assert
        # the invariant anyway rather than trust a future refactor.
        if "/" in exp_id or os.sep in exp_id or exp_id in {".", ".."}:
            raise ValueError(f"unsafe experiment id for events file: {exp_id!r}")
        return self.root / _EVENTS_DIR / f"{exp_id}.jsonl"

    # -- low-level append ----------------------------------------------
    def _append(self, entry: dict[str, Any]) -> None:
        line = json.dumps(entry, separators=(",", ":"), sort_keys=True)
        with self._lock:
            if self._journal_file is None or self._journal_file.closed:
                self._journal_file = open(
                    self.journal_path, "a", encoding="utf-8"
                )
            self._journal_file.write(line + "\n")
            # Flush user-space buffers: the write now belongs to the OS
            # and survives SIGKILL of this process.
            self._journal_file.flush()
            self.appends += 1

    # -- write-ahead API -------------------------------------------------
    def record_submit(
        self,
        exp_id: str,
        client: str,
        priority: int,
        created: float,
        spec_payload: dict[str, Any],
    ) -> None:
        """Journal an accepted submission (before any job executes)."""
        self._append(
            {
                "type": "submit",
                "schema": STORE_SCHEMA,
                "id": exp_id,
                "client": client,
                "priority": int(priority),
                "created": created,
                "spec": spec_payload,
            }
        )

    def record_settle(
        self,
        exp_id: str,
        key: str,
        ok: bool,
        source: str,
        failure: dict[str, Any] | None = None,
    ) -> None:
        """Journal one settled job cell of one experiment."""
        entry: dict[str, Any] = {
            "type": "settle",
            "id": exp_id,
            "key": key,
            "ok": bool(ok),
            "source": source,
        }
        if failure is not None:
            entry["failure"] = failure
        self._append(entry)

    def record_terminal(
        self,
        exp_id: str,
        status: str,
        finished: float | None,
        message: str = "",
    ) -> None:
        """Journal an experiment reaching ``done`` / ``error``."""
        entry: dict[str, Any] = {
            "type": "terminal",
            "id": exp_id,
            "status": status,
            "finished": finished,
        }
        if message:
            entry["message"] = message
        self._append(entry)

    def record_evict(self, exp_id: str) -> None:
        """Journal a history eviction and drop the spilled events file."""
        self._append({"type": "evict", "id": exp_id})
        try:
            self.events_path(exp_id).unlink()
        except FileNotFoundError:
            pass

    def record_quota(self, balances: dict[str, float]) -> None:
        """Journal a quota-balance snapshot (last entry wins on replay)."""
        self._append({"type": "quota", "balances": dict(balances)})

    # -- event spill ------------------------------------------------------
    def append_event(self, exp_id: str, entry: dict[str, Any]) -> None:
        """Spill one SSE journal entry for ``exp_id`` to disk."""
        line = json.dumps(entry, separators=(",", ":"), sort_keys=True)
        with self._lock:
            with open(self.events_path(exp_id), "a", encoding="utf-8") as fh:
                fh.write(line + "\n")

    def load_events(self, exp_id: str) -> list[dict[str, Any]]:
        """All spilled events for ``exp_id``, in append (= id) order.

        Damaged lines are skipped (a torn tail event is simply re-lost;
        SSE ids stay consistent because replay re-derives the journal
        from settled state, not from this file).
        """
        path = self.events_path(exp_id)
        if not path.exists():
            return []
        entries: list[dict[str, Any]] = []
        with open(path, encoding="utf-8") as fh:
            for raw in fh:
                raw = raw.strip()
                if not raw:
                    continue
                try:
                    entry = json.loads(raw)
                except json.JSONDecodeError:
                    continue
                if isinstance(entry, dict) and "id" in entry:
                    entries.append(entry)
        return entries

    def event_count(self, exp_id: str) -> int:
        return len(self.load_events(exp_id))

    # -- replay -----------------------------------------------------------
    def _quarantine(self, raw_line: str) -> None:
        with open(self.quarantine_path, "a", encoding="utf-8") as fh:
            fh.write(raw_line.rstrip("\n") + "\n")
        self.quarantined += 1

    def replay(self) -> ReplayResult:
        """Reconstruct journaled state; quarantine what cannot be parsed."""
        result = ReplayResult()
        if not self.journal_path.exists():
            return result
        experiments: dict[str, StoredExperiment] = {}
        order: list[str] = []
        with self._lock:
            with open(self.journal_path, encoding="utf-8") as fh:
                for raw in fh:
                    stripped = raw.strip()
                    if not stripped:
                        continue
                    try:
                        entry = json.loads(stripped)
                    except json.JSONDecodeError:
                        self._quarantine(raw)
                        result.quarantined += 1
                        continue
                    if not isinstance(entry, dict):
                        self._quarantine(raw)
                        result.quarantined += 1
                        continue
                    kind = entry.get("type")
                    try:
                        if kind == "submit":
                            exp = StoredExperiment(
                                id=str(entry["id"]),
                                client=str(entry.get("client", "anonymous")),
                                priority=int(entry.get("priority", 0)),
                                created=float(entry.get("created", 0.0)),
                                spec_payload=dict(entry["spec"]),
                            )
                            if exp.id not in experiments:
                                order.append(exp.id)
                            experiments[exp.id] = exp
                        elif kind == "settle":
                            exp = experiments.get(str(entry["id"]))
                            # First settle wins, matching note_settled().
                            if exp is not None and entry["key"] not in exp.settles:
                                exp.settles[str(entry["key"])] = {
                                    "ok": bool(entry["ok"]),
                                    "source": str(entry.get("source", "")),
                                    "failure": entry.get("failure"),
                                }
                        elif kind == "terminal":
                            exp = experiments.get(str(entry["id"]))
                            if exp is not None:
                                exp.terminal = {
                                    "status": str(entry["status"]),
                                    "finished": entry.get("finished"),
                                    "message": str(entry.get("message", "")),
                                }
                        elif kind == "evict":
                            exp_id = str(entry["id"])
                            if experiments.pop(exp_id, None) is not None:
                                result.evicted += 1
                        elif kind == "quota":
                            balances = entry.get("balances")
                            if isinstance(balances, dict):
                                result.quota = {
                                    str(k): float(v) for k, v in balances.items()
                                }
                            else:
                                raise ValueError("quota entry without balances")
                        else:
                            raise ValueError(f"unknown entry type {kind!r}")
                    except (KeyError, TypeError, ValueError):
                        self._quarantine(raw)
                        result.quarantined += 1
        result.experiments = [
            experiments[exp_id] for exp_id in order if exp_id in experiments
        ]
        return result

    # -- compaction --------------------------------------------------------
    def compact(self) -> int:
        """Rewrite the journal as its own minimal replay; returns live count.

        Collapses duplicate settles, drops evicted experiments, keeps only
        the final quota snapshot, and sweeps orphaned event-spill files.
        Atomic: the new journal lands via tmp + ``os.replace``.
        """
        with self._lock:
            replayed = self.replay()
            lines: list[str] = []
            for exp in replayed.experiments:
                lines.append(
                    json.dumps(
                        {
                            "type": "submit",
                            "schema": STORE_SCHEMA,
                            "id": exp.id,
                            "client": exp.client,
                            "priority": exp.priority,
                            "created": exp.created,
                            "spec": exp.spec_payload,
                        },
                        separators=(",", ":"),
                        sort_keys=True,
                    )
                )
                for key, settle in exp.settles.items():
                    entry: dict[str, Any] = {
                        "type": "settle",
                        "id": exp.id,
                        "key": key,
                        "ok": settle["ok"],
                        "source": settle["source"],
                    }
                    if settle.get("failure") is not None:
                        entry["failure"] = settle["failure"]
                    lines.append(
                        json.dumps(entry, separators=(",", ":"), sort_keys=True)
                    )
                if exp.terminal is not None:
                    entry = {
                        "type": "terminal",
                        "id": exp.id,
                        "status": exp.terminal["status"],
                        "finished": exp.terminal["finished"],
                    }
                    if exp.terminal.get("message"):
                        entry["message"] = exp.terminal["message"]
                    lines.append(
                        json.dumps(entry, separators=(",", ":"), sort_keys=True)
                    )
            if replayed.quota:
                lines.append(
                    json.dumps(
                        {"type": "quota", "balances": replayed.quota},
                        separators=(",", ":"),
                        sort_keys=True,
                    )
                )
            if self._journal_file is not None and not self._journal_file.closed:
                self._journal_file.close()
                self._journal_file = None
            tmp = self.root / f"{_JOURNAL}.tmp-{os.getpid()}"
            with open(tmp, "w", encoding="utf-8") as fh:
                fh.write("".join(line + "\n" for line in lines))
            os.replace(tmp, self.journal_path)
            live_ids = {exp.id for exp in replayed.experiments}
            events_dir = self.root / _EVENTS_DIR
            for path in events_dir.glob("*.jsonl"):
                if path.stem not in live_ids:
                    try:
                        path.unlink()
                    except FileNotFoundError:
                        pass
            return len(replayed.experiments)

    # -- bookkeeping -------------------------------------------------------
    def flush(self) -> None:
        with self._lock:
            if self._journal_file is not None and not self._journal_file.closed:
                self._journal_file.flush()

    def stats(self) -> dict[str, Any]:
        """Counters and layout for readiness probes / the stats endpoint."""
        try:
            journal_bytes = self.journal_path.stat().st_size
        except FileNotFoundError:
            journal_bytes = 0
        return {
            "path": str(self.root),
            "journal_bytes": journal_bytes,
            "appends": self.appends,
            "quarantined": self.quarantined,
        }

    def close(self) -> None:
        with self._lock:
            if self._journal_file is not None and not self._journal_file.closed:
                self._journal_file.close()
            self._journal_file = None
