"""Simulation-as-a-service: the asyncio job API behind ``repro serve``.

The package turns the existing stack into a long-running multi-tenant
service with zero new dependencies:

* :mod:`repro.service.server` -- the asyncio HTTP server
  (:class:`ReproServer`, the blocking :func:`serve` entry point, and
  :class:`BackgroundServer` for tests);
* :mod:`repro.service.client` -- the stdlib :class:`Client` (submit /
  status / SSE events / result / stats / readiness);
* :mod:`repro.service.scheduler` -- request coalescing, priority
  ordering and bounded admission;
* :mod:`repro.service.quota` -- per-client token-bucket quotas;
* :mod:`repro.service.durable` -- the crash-safe write-ahead store
  (:class:`DurableStore`) that makes experiments survive restarts;
* :mod:`repro.service.errors` -- the ``repro.service_error/1`` typed
  error payloads;
* :mod:`repro.service.state` -- per-experiment records and the SSE
  event journal.

See README.md ("Running as a service") and docs/API.md for the wire
protocol and the durability/degradation semantics.
"""

from repro.service.client import Client
from repro.service.durable import (
    STORE_SCHEMA,
    DurableStore,
    ReplayResult,
    StoredExperiment,
    default_store_dir,
)
from repro.service.errors import (
    ERROR_CODES,
    SERVICE_ERROR_SCHEMA,
    ServiceError,
    error_payload,
    validate_error,
)
from repro.service.quota import QuotaManager, TokenBucket
from repro.service.scheduler import (
    AdmissionController,
    Claim,
    CoalescingRegistry,
    Flight,
    plan_claims,
    queue_key,
)
from repro.service.server import STATS_SCHEMA, BackgroundServer, ReproServer, serve
from repro.service.state import ExperimentRecord, JobCell

__all__ = [
    "AdmissionController",
    "BackgroundServer",
    "Claim",
    "Client",
    "CoalescingRegistry",
    "DurableStore",
    "ERROR_CODES",
    "ExperimentRecord",
    "Flight",
    "JobCell",
    "QuotaManager",
    "ReplayResult",
    "ReproServer",
    "SERVICE_ERROR_SCHEMA",
    "STATS_SCHEMA",
    "STORE_SCHEMA",
    "ServiceError",
    "StoredExperiment",
    "TokenBucket",
    "default_store_dir",
    "error_payload",
    "plan_claims",
    "queue_key",
    "serve",
    "validate_error",
]
