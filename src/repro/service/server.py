"""The asyncio job server behind ``repro serve``.

Simulation-as-a-service over the existing stack, stdlib-only: the spec
layer is the wire format (``repro.experiment_spec/1`` JSON bodies), the
content-addressed :class:`~repro.experiments.cache.RunCache` is the
dedupe substrate, the resilient executor
(:meth:`~repro.experiments.harness.Workbench.prefetch` →
:func:`~repro.experiments.parallel.execute_outcomes`) does the work, and
:class:`~repro.experiments.manifest.SweepManifest` journals per-job
progress that the status and SSE endpoints replay.

Endpoints (all JSON; errors are ``repro.service_error/1`` payloads):

* ``POST /v1/experiments`` -- submit an ExperimentSpec body.  The spec
  is schema-validated, charged against the client's token bucket
  (``X-Repro-Client`` header names the tenant), its jobs are
  content-addressed and partitioned by the
  :class:`~repro.service.scheduler.CoalescingRegistry` into
  execute / coalesced / cached, and the residual jobs are queued by
  priority (``execution.priority`` in the spec).
* ``GET /v1/experiments/{id}`` -- status: job counters plus the sweep
  manifest summary.
* ``GET /v1/experiments/{id}/events`` -- server-sent events; every event
  carries an ``id``, and ``Last-Event-ID`` (or ``?after=N``) replays the
  journal suffix after a reconnect.
* ``GET /v1/experiments/{id}/result`` -- the schema-validated
  :class:`~repro.telemetry.report.RunReport` (with the rendered figure
  table embedded), bit-identical to running the same spec through
  :func:`~repro.experiments.sweep.run_spec` serially.
* ``GET /v1/stats`` -- service counters, executor
  :class:`~repro.experiments.outcomes.OutcomeStats`, cache counters,
  quota balances and the durability/degradation state.
* ``GET /v1/healthz`` -- liveness probe (always 200 while the loop runs).
* ``GET /v1/readyz`` -- readiness probe: 503 while the server replays
  its durable store on boot or drains for shutdown, with store, breaker
  and admission state in the body.

Threading model: the event loop owns all experiment state (records,
registry, manifests map); exactly one worker task drains the priority
queue and runs each submission's residual jobs in a thread via
``asyncio.to_thread``, which fans per-job settlements back onto the loop
with ``call_soon_threadsafe``.  The single worker serializes access to
the shared :class:`~repro.experiments.harness.Workbench` (whose process
pool provides the actual parallelism), which is what makes coalescing
airtight: claims happen on the loop, execution happens one submission at
a time, and a settled key's result is in the run cache before its flight
leaves the registry -- so at every instant an overlapping key is either
in flight (coalesce) or cached (hit), never re-executed.

Durability (:mod:`repro.service.durable`): with a cache directory the
server write-ahead journals every accepted submission, settlement and
terminal state under ``<cache>/service/``.  On boot it replays the
journal -- reconstructing records under their original ids, settling
already-cached jobs as cache hits and re-claiming residual jobs through
the coalescing registry -- so a ``kill -9`` mid-sweep costs only the
jobs that had not settled.  SIGTERM/SIGINT trigger a *graceful drain*:
new submissions get typed 503 ``draining`` errors, the in-flight sweep
checkpoints at its next settle boundary, and the store is flushed and
compacted before exit.  Overload sheds with typed 503 ``overloaded``
(admission caps), and a circuit breaker around the distributed executor
degrades to the local pool (or holds) when workers are unreachable.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from typing import Any, Awaitable, Callable
from urllib.parse import parse_qs, urlsplit

from repro.experiments.cache import RunCache, job_key
from repro.experiments.executor import BreakerExecutor, CircuitBreaker, LocalPoolExecutor
from repro.experiments.harness import DEFAULT_INSTRUCTIONS, Workbench
from repro.experiments.manifest import SweepManifest, default_manifest_dir
from repro.experiments.outcomes import ExecutionInterrupted, ExecutionPolicy, JobOutcome
from repro.service.durable import DurableStore, default_store_dir
from repro.service.errors import ServiceError
from repro.service.quota import QuotaManager
from repro.service.scheduler import AdmissionController, CoalescingRegistry, queue_key
from repro.service.state import ExperimentRecord, JobCell
from repro.specs import ExperimentSpec, SpecError, spec_hash

__all__ = ["BackgroundServer", "ReproServer", "serve"]

STATS_SCHEMA = "repro.service_stats/1"

_MAX_BODY = 8 << 20  # 8 MiB: a spec file is kilobytes; anything bigger is abuse
_MAX_HEADER_BYTES = 64 << 10  # request line + headers combined
_READ_TIMEOUT = 30.0  # seconds to receive one complete request (anti-slowloris)
_SSE_KEEPALIVE = 15.0  # seconds between ``:`` comments on an idle stream


class _Request:
    """One parsed HTTP/1.1 request."""

    __slots__ = ("method", "path", "query", "headers", "body")

    def __init__(self, method: str, target: str, headers: dict[str, str], body: bytes):
        self.method = method
        split = urlsplit(target)
        self.path = split.path
        self.query = {k: v[-1] for k, v in parse_qs(split.query).items()}
        self.headers = headers
        self.body = body


async def _read_request(reader: asyncio.StreamReader) -> _Request | None:
    line = await reader.readline()
    if not line:
        return None
    parts = line.decode("latin-1").split()
    if len(parts) < 2:
        raise ServiceError("bad_request", f"malformed request line {line!r}")
    method, target = parts[0].upper(), parts[1]
    headers: dict[str, str] = {}
    header_bytes = len(line)
    while True:
        raw = await reader.readline()
        if raw in (b"\r\n", b"\n", b""):
            break
        header_bytes += len(raw)
        if header_bytes > _MAX_HEADER_BYTES:
            raise ServiceError(
                "payload_too_large",
                f"request headers exceed the {_MAX_HEADER_BYTES}-byte limit",
            )
        name, _, value = raw.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    body = b""
    length = headers.get("content-length")
    if length:
        try:
            size = int(length)
        except ValueError:
            raise ServiceError("bad_request", f"bad Content-Length {length!r}") from None
        if size < 0:
            raise ServiceError("bad_request", f"bad Content-Length {length!r}")
        if size > _MAX_BODY:
            raise ServiceError(
                "payload_too_large",
                f"body of {size} bytes exceeds the {_MAX_BODY}-byte limit",
            )
        body = await reader.readexactly(size)
    return _Request(method, target, headers, body)


def _http_payload(status: int, payload: Any, content_type: str = "application/json") -> bytes:
    body = (json.dumps(payload, indent=1) + "\n").encode("utf-8")
    reason = {
        200: "OK", 201: "Created", 400: "Bad Request", 404: "Not Found",
        405: "Method Not Allowed", 409: "Conflict", 413: "Payload Too Large",
        429: "Too Many Requests", 500: "Internal Server Error",
        503: "Service Unavailable",
    }.get(status, "OK")
    head = (
        f"HTTP/1.1 {status} {reason}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(body)}\r\n"
        "Connection: close\r\n\r\n"
    )
    return head.encode("latin-1") + body


def _sse_event(entry: dict[str, Any]) -> bytes:
    data = json.dumps(entry["data"], separators=(",", ":"))
    return (
        f"id: {entry['id']}\nevent: {entry['event']}\ndata: {data}\n\n"
    ).encode("utf-8")


class ReproServer:
    """One service instance: shared workbench, registry, quotas, HTTP."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        workers: int = 0,
        cache_dir: str | None = None,
        no_cache: bool = False,
        instructions: int = DEFAULT_INSTRUCTIONS,
        seed: int = 0,
        loc_mode: str = "probabilistic",
        batch: str = "auto",
        quota: float | None = None,
        quota_refill: float = 0.0,
        execution: ExecutionPolicy | None = None,
        executor: str = "local",
        workers_endpoint: str | None = None,
        tracer=None,
        max_history: int = 256,
        durable: bool = True,
        max_queue_depth: int | None = None,
        max_client_inflight: int | None = None,
        breaker_threshold: int = 3,
        breaker_cooldown: float = 30.0,
        breaker_fallback: str = "local",
        max_events_memory: int = 512,
    ):
        self.host = host
        self.port = port
        self.tracer = tracer
        self.cache = None if no_cache else RunCache(cache_dir, tracer=tracer)

        # Circuit-break the distributed backend: its coordinator transport
        # and remote workers are the service's one external dependency.
        # The wrapped instance (not the name) goes to the workbench, so
        # every prefetch routes through the breaker.
        self.breaker: CircuitBreaker | None = None
        self._breaker_executor: BreakerExecutor | None = None
        bench_executor: Any = executor
        if executor == "distributed":
            from repro.experiments.distributed import DistributedExecutor

            if not workers_endpoint:
                raise ValueError(
                    "the distributed executor needs a workers endpoint "
                    "(host:port or a spool directory)"
                )
            if breaker_fallback not in ("local", "hold"):
                raise ValueError(
                    f"breaker_fallback must be 'local' or 'hold', "
                    f"not {breaker_fallback!r}"
                )
            self.breaker = CircuitBreaker(breaker_threshold, breaker_cooldown)
            fallback = (
                LocalPoolExecutor(workers=workers)
                if breaker_fallback == "local"
                else None
            )
            self._breaker_executor = BreakerExecutor(
                DistributedExecutor(workers_endpoint),
                fallback=fallback,
                breaker=self.breaker,
                tracer=tracer,
            )
            bench_executor = self._breaker_executor

        self.bench = Workbench(
            instructions=instructions,
            seed=seed,
            loc_mode=loc_mode,
            workers=workers,
            cache=self.cache,
            batch=batch,
            tracer=tracer,
            execution=execution if execution is not None else ExecutionPolicy(),
            executor=bench_executor,
            workers_endpoint=workers_endpoint,
        )
        self.quota = QuotaManager(quota, quota_refill)
        self.registry = CoalescingRegistry()
        self.admission = AdmissionController(max_queue_depth, max_client_inflight)
        self.store = (
            DurableStore(default_store_dir(self.cache.root))
            if durable and self.cache is not None
            else None
        )
        self.max_events_memory = max_events_memory
        self.max_history = max_history
        self.started = time.time()

        self._records: dict[str, ExperimentRecord] = {}
        self._manifests: dict[str, SweepManifest] = {}
        self._result_cache: dict[str, dict[str, Any]] = {}
        self._history: list[str] = []  # finished record ids, oldest first
        self._seq = 0
        self._bench_lock = threading.Lock()
        self._stop_event = threading.Event()
        self._closing = False
        self._draining = False
        self._recovering = False
        self._executing = 0  # sweeps currently inside asyncio.to_thread
        self.submitted = 0
        self.completed = 0
        self.errors = 0
        self.evicted = 0
        self.jobs_cached = 0
        self.recovered = 0        # experiments rebuilt from the store
        self.recovered_jobs = 0   # residual jobs re-enqueued at boot

        self._loop: asyncio.AbstractEventLoop | None = None
        self._queue: asyncio.PriorityQueue | None = None
        self._worker: asyncio.Task | None = None
        self._server: asyncio.base_events.Server | None = None
        self._drained: asyncio.Event | None = None

    # -- lifecycle ------------------------------------------------------
    async def start(self) -> "ReproServer":
        """Bind the socket and start the worker; resolves the real port.

        Recovery happens here, after the socket binds (so probes can see
        the ``recovering`` state) but before the worker task starts and
        before any submission is admitted -- a new submission must never
        claim a key a recovered experiment already owns.
        """
        self._loop = asyncio.get_running_loop()
        self._queue = asyncio.PriorityQueue()
        self._drained = asyncio.Event()
        self._server = await asyncio.start_server(self._handle_client, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        if self.store is not None:
            self._recovering = True
            try:
                self._recover()
            finally:
                self._recovering = False
        self._worker = asyncio.create_task(self._worker_loop())
        return self

    async def serve_forever(self) -> None:
        assert self._server is not None
        await self._server.serve_forever()

    async def wait_drained(self) -> None:
        """Block until a requested drain has fully checkpointed."""
        assert self._drained is not None
        await self._drained.wait()

    async def aclose(self) -> None:
        """Stop accepting, interrupt in-flight sweeps, drain the worker."""
        self._closing = True
        self._stop_event.set()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._worker is not None:
            self._worker.cancel()
            try:
                await self._worker
            except (asyncio.CancelledError, Exception):  # noqa: BLE001 - teardown
                pass
        if self.store is not None:
            try:
                self._flush_store()
            except OSError:
                pass
            self.store.close()
        if self._breaker_executor is not None:
            self._breaker_executor.close()
        self.bench.close_executors()

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # -- durability (event loop) ----------------------------------------
    def _attach_store(self, record: ExperimentRecord) -> None:
        """Wire a record's event journal to the durable store."""
        if self.store is None:
            return
        store, exp_id = self.store, record.id
        record.max_events = self.max_events_memory
        record.on_event = lambda entry: store.append_event(exp_id, entry)

    def _journal_settle(
        self,
        record: ExperimentRecord,
        key: str,
        ok: bool,
        source: str,
        failure: dict[str, Any] | None = None,
    ) -> None:
        if self.store is not None:
            self.store.record_settle(record.id, key, ok, source, failure)

    def _flush_store(self) -> None:
        """Snapshot quota balances and compact the journal (drain/exit)."""
        if self.store is None:
            return
        if self.quota.enabled:
            self.store.record_quota(self.quota.export_state())
        self.store.compact()

    _SETTLE_KINDS = {"cache": "cached", "memory": "cached", "coalesced": "coalesced"}

    def _recover(self) -> None:
        """Replay the durable store: rebuild records, re-enqueue residue.

        Runs once at boot, on the event loop, before the worker task and
        before any submission.  Stored settles apply silently (their
        events are already in the spill files); still-pending keys are
        re-claimed through the coalescing registry in original submission
        order, so exactly-once execution holds across the crash exactly
        as it held across submissions.
        """
        assert self.store is not None and self._queue is not None
        replayed = self.store.replay()
        if replayed.quota:
            self.quota.restore_state(replayed.quota)
        for stored in replayed.experiments:
            try:
                seq = int(stored.id.rsplit("-", 1)[-1])
            except ValueError:
                seq = 0
            self._seq = max(self._seq, seq)
            try:
                spec = ExperimentSpec.from_dict(stored.spec_payload)
                jobs = spec.jobs(self.bench)
            except (SpecError, ValueError, KeyError, TypeError):
                # The journaled spec no longer round-trips (schema drift,
                # hand-damaged store): skip it rather than refuse to boot.
                continue
            record = ExperimentRecord(
                id=stored.id,
                spec=spec,
                spec_hash=spec_hash(spec),
                client=stored.client,
                priority=stored.priority,
                jobs=list(jobs),
                created=stored.created,
            )
            record.events_base = self.store.event_count(record.id)
            self._attach_store(record)
            first_job: dict[str, Any] = {}
            for job in jobs:
                first_job.setdefault(job_key(job), job)
            for key, job in first_job.items():
                settle = stored.settles.get(key)
                kind = (
                    self._SETTLE_KINDS.get(settle["source"], "execute")
                    if settle is not None
                    else "execute"
                )
                record.cells[key] = JobCell(job=job, key=key, kind=kind)
                if settle is not None:
                    record.note_settled(
                        key, settle["ok"], settle["source"],
                        settle.get("failure"), publish=False,
                    )
            self._records[record.id] = record
            self.recovered += 1
            if stored.terminal is not None:
                record.status = stored.terminal["status"]
                finished = stored.terminal.get("finished")
                record.finished = float(finished) if finished else time.time()
                self._history.append(record.id)
                continue
            # Residual work: partition still-pending keys through the
            # registry, exactly as _submit does for a fresh submission.
            record.status = "queued"
            self.admission.admit(record.client, force=True)
            pending = [cell.key for cell in record.pending_cells()]
            claim = self.registry.claim(
                record, pending, is_cached=lambda k: self._is_cached(first_job[k])
            )
            run_jobs = []
            for key in claim.execute:
                run_jobs.append(first_job[key])
            for key in claim.cached:
                record.cells[key].kind = "cached"
                record.note_settled(key, True, "cache", publish=False)
                self._journal_settle(record, key, True, "cache")
                run_jobs.append(first_job[key])  # prefetch-only: 0 executed
            for key in claim.coalesced:
                record.cells[key].kind = "coalesced"
            self.jobs_cached += len(claim.cached)
            self.recovered_jobs += len(claim.execute)
            if self.tracer is not None:
                self.tracer.event(
                    "service.recover",
                    id=record.id,
                    execute=len(claim.execute),
                    cached=len(claim.cached),
                    coalesced=len(claim.coalesced),
                )
            if run_jobs:
                self._queue.put_nowait((queue_key(record.priority, seq), record, run_jobs))
            else:
                self._maybe_finalize(record)

    # -- graceful drain --------------------------------------------------
    def request_drain(self) -> None:
        """Thread- and signal-safe entry to :meth:`begin_drain`."""
        if self._loop is not None:
            try:
                self._loop.call_soon_threadsafe(self.begin_drain)
                return
            except RuntimeError:
                pass
        self.begin_drain()

    def begin_drain(self) -> None:
        """Flip to draining: shed new work, checkpoint in-flight work.

        New submissions get typed 503 ``draining`` errors immediately;
        the in-flight sweep (if any) stops at its next settle boundary
        via the ``should_stop`` seam -- everything already settled is in
        the cache and the journal, the residue stays pending on disk for
        the next boot.  Once execution quiesces the store is flushed and
        :meth:`wait_drained` wakes.
        """
        if self._draining:
            return
        self._draining = True
        self._stop_event.set()
        if self.tracer is not None:
            self.tracer.event("service.drain.begin")
        if self._loop is not None and self._loop.is_running():
            self._loop.create_task(self._finish_drain())
        else:
            self._complete_drain()

    async def _finish_drain(self) -> None:
        while self._executing > 0:
            await asyncio.sleep(0.02)
        self._complete_drain()

    def _complete_drain(self) -> None:
        try:
            self._flush_store()
        except OSError:
            pass
        if self.tracer is not None:
            self.tracer.event("service.drain.complete")
        if self._drained is not None:
            self._drained.set()

    # -- submission (event loop) ---------------------------------------
    def _submit(self, request: _Request) -> dict[str, Any]:
        if self._closing:
            raise ServiceError("shutting_down", "server is shutting down")
        if self._draining:
            raise ServiceError(
                "draining",
                "server is draining for shutdown; resubmit after restart",
                detail={"retry_after": 5.0},
            )
        if self._recovering:
            raise ServiceError(
                "not_ready",
                "server is replaying its durable store; retry shortly",
                detail={"retry_after": 1.0},
            )
        client = request.headers.get("x-repro-client", "anonymous")
        try:
            data = json.loads(request.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ServiceError(
                "invalid_json", f"body is not valid JSON: {exc}"
            ) from exc
        try:
            spec = ExperimentSpec.from_dict(data)
            jobs = spec.jobs(self.bench)
        except SpecError as exc:
            raise ServiceError(
                "invalid_spec", str(exc), detail={"schema": "repro.experiment_spec/1"}
            ) from exc

        first_job: dict[str, Any] = {}
        keys: list[str] = []
        for job in jobs:
            key = job_key(job)
            keys.append(key)
            first_job.setdefault(key, job)
        self.admission.admit(client)
        try:
            self.quota.charge(client, len(first_job))
        except ServiceError:
            self.admission.release(client)
            raise

        priority = 0
        if spec.execution is not None:
            priority = int(spec.execution.get("priority", 0))
        self._seq += 1
        record = ExperimentRecord(
            id=f"exp-{self._seq:06d}",
            spec=spec,
            spec_hash=spec_hash(spec),
            client=client,
            priority=priority,
            jobs=list(jobs),
        )
        self._attach_store(record)
        if self.store is not None:
            # Write-ahead: the submission is journaled (with its full
            # canonical spec payload) before any state that depends on
            # it, so a crash at any later point can replay it.
            self.store.record_submit(
                record.id, client, priority, record.created, spec.to_dict()
            )
        claim = self.registry.claim(
            record,
            keys,
            is_cached=lambda k: self._is_cached(first_job[k]),
        )
        execute, coalesced = set(claim.execute), set(claim.coalesced)
        run_jobs = []
        for key, job in first_job.items():
            if key in execute:
                kind = "execute"
                run_jobs.append(job)
            elif key in coalesced:
                kind = "coalesced"
            else:
                kind = "cached"
                run_jobs.append(job)  # prefetch pulls it into memory, 0 executed
            record.cells[key] = JobCell(job=job, key=key, kind=kind)
        self.jobs_cached += len(claim.cached)
        self._records[record.id] = record
        self.submitted += 1
        if self.tracer is not None:
            self.tracer.event(
                "service.submit",
                id=record.id,
                client=client,
                jobs=len(first_job),
                execute=len(claim.execute),
                coalesced=len(claim.coalesced),
                cached=len(claim.cached),
            )
            if claim.coalesced:
                self.tracer.event(
                    "service.coalesce", id=record.id, keys=len(claim.coalesced)
                )
        record.publish("status", {"status": "queued", "jobs": record.job_counts()})
        for key in claim.cached:
            if record.note_settled(key, True, "cache"):
                self._journal_settle(record, key, True, "cache")
        if run_jobs:
            assert self._queue is not None
            self._queue.put_nowait((queue_key(priority, self._seq), record, run_jobs))
        else:
            # Everything rides on other submissions' flights (or the spec
            # was empty of work): completion comes from fan-out alone.
            self._maybe_finalize(record)
        return record.status_payload(self._manifest_summary(record))

    def _is_cached(self, job) -> bool:
        if self.bench.result_for(job) is not None:
            return True
        return self.cache is not None and self.cache.contains(job)

    # -- execution (worker task + thread) ------------------------------
    async def _worker_loop(self) -> None:
        assert self._queue is not None
        while True:
            _key, record, run_jobs = await self._queue.get()
            if record.terminal:
                continue
            if self._draining and self.store is not None:
                # Journaled and still queued: the next boot re-enqueues
                # it.  Leaving it untouched *is* the checkpoint.
                continue
            record.status = "running"
            record.publish("status", {"status": "running"})
            self._executing += 1
            try:
                await asyncio.to_thread(self._execute_jobs, record, run_jobs)
            except ExecutionInterrupted:
                if self._draining and self.store is not None:
                    # Drain checkpoint: everything settled so far is in
                    # the cache and the journal; the record stays
                    # non-terminal so recovery resumes the residue.
                    record.status = "queued"
                    record.publish("status", {"status": "queued", "drained": True})
                    continue
                self._fail_record(record, "server shutting down mid-sweep")
                continue
            except Exception as exc:  # noqa: BLE001 - typed into the record
                self._fail_record(record, f"{type(exc).__name__}: {exc}")
                continue
            finally:
                self._executing -= 1
            # to_thread resumes via a loop callback enqueued *after* every
            # per-job call_soon_threadsafe fan-out, so all settlements from
            # this sweep have already been applied when the sweep runs.
            self._sweep_record(record)

    def _execute_jobs(self, record: ExperimentRecord, run_jobs: list) -> None:
        """Worker thread: run one submission's residual jobs."""
        manifest = self._manifest_for(record)

        def on_outcome(outcome: JobOutcome) -> None:
            key = job_key(outcome.job)
            if manifest is not None:
                manifest.record(key, outcome)
                manifest.save()
            info = {
                "ok": outcome.ok,
                "source": outcome.source,
                "failure": outcome.failure.to_dict() if outcome.failure else None,
            }
            assert self._loop is not None
            self._loop.call_soon_threadsafe(self._fan_out, record, key, info)

        with self._bench_lock:
            saved = self.bench.execution
            saved_executor = self.bench.executor
            self.bench.execution = record.spec.execution_policy(saved)
            spec_executor = (record.spec.execution or {}).get("executor")
            if spec_executor is not None and spec_executor != getattr(
                saved_executor, "name", saved_executor
            ):
                # A spec naming the backend the server already runs keeps
                # the server's (possibly breaker-wrapped) instance; only a
                # genuinely different backend is swapped in.
                self.bench.executor = spec_executor
            try:
                self.bench.prefetch(
                    run_jobs,
                    on_outcome=on_outcome,
                    should_stop=self._stop_event.is_set,
                )
            finally:
                self.bench.execution = saved
                self.bench.executor = saved_executor
                if manifest is not None:
                    manifest.save(force=True)

    def _manifest_for(self, record: ExperimentRecord) -> SweepManifest | None:
        if self.cache is None:
            return None
        manifest = self._manifests.get(record.spec_hash)
        if manifest is None:
            manifest = SweepManifest.open(
                default_manifest_dir(self.cache.root),
                record.spec_hash,
                record.spec.name,
            )
            self._manifests[record.spec_hash] = manifest
        return manifest

    def _manifest_summary(self, record: ExperimentRecord) -> dict[str, int] | None:
        manifest = self._manifests.get(record.spec_hash)
        return manifest.summary() if manifest is not None else None

    # -- settlement fan-out (event loop) --------------------------------
    def _fan_out(self, record: ExperimentRecord, key: str, info: dict[str, Any]) -> None:
        parties = self.registry.settle(key) or [record]
        if len(parties) > 1 and self.tracer is not None:
            self.tracer.event("service.fanout", key=key, parties=len(parties))
        for index, party in enumerate(parties):
            source = info["source"] if party is record else "coalesced"
            if party.note_settled(key, info["ok"], source, info["failure"]):
                self._journal_settle(party, key, info["ok"], source, info["failure"])
            self._maybe_finalize(party)

    def _sweep_record(self, record: ExperimentRecord) -> None:
        """Settle leftovers after a sweep: cache-satisfied or lost jobs."""
        for cell in list(record.pending_cells()):
            if cell.kind == "coalesced" and self.registry.is_in_flight(cell.key):
                continue  # another submission's flight will fan out
            if self.bench.result_for(cell.job) is not None:
                self._fan_out(record, cell.key, {"ok": True, "source": "cache", "failure": None})
                continue
            failed = self.bench.failure_for(cell.job)
            if failed is not None and failed.failure is not None:
                self._fan_out(
                    record,
                    cell.key,
                    {"ok": False, "source": "run", "failure": failed.failure.to_dict()},
                )
                continue
            self._fan_out(
                record,
                cell.key,
                {
                    "ok": False,
                    "source": "run",
                    "failure": {
                        "kind": "error",
                        "error_type": "LostJob",
                        "message": "job produced neither result nor failure",
                        "attempts": 0,
                        "elapsed": 0.0,
                        "traceback_digest": "",
                    },
                },
            )
        self._maybe_finalize(record)

    def _maybe_finalize(self, record: ExperimentRecord) -> None:
        if record.terminal or not record.all_settled():
            return
        record.status = "done"
        record.finished = time.time()
        self.completed += 1
        self.admission.release(record.client)
        if self.store is not None:
            self.store.record_terminal(record.id, "done", record.finished)
        record.publish("done", record.status_payload(self._manifest_summary(record)))
        self._retire(record)

    def _fail_record(self, record: ExperimentRecord, message: str) -> None:
        failure = {
            "kind": "error",
            "error_type": "ServiceError",
            "message": message,
            "attempts": 0,
            "elapsed": 0.0,
            "traceback_digest": "",
        }
        # Forfeit (not re-own) every flight this record claimed: the
        # subscribers coalesced instead of claiming, so their run sets
        # exclude these keys and nobody else will ever execute them.
        # Settle each flight as failed and fan that out, so subscribers
        # reach a terminal state instead of waiting forever, and the
        # keys leave the registry for the next submission to retry.
        for flight in self.registry.forfeit(record):
            for party in flight.parties():
                if party is record:
                    if party.note_settled(
                        flight.key, False, "run", failure, publish=False
                    ):
                        self._journal_settle(party, flight.key, False, "run", failure)
                else:
                    if party.note_settled(flight.key, False, "coalesced", failure):
                        self._journal_settle(
                            party, flight.key, False, "coalesced", failure
                        )
                    self._maybe_finalize(party)
        record.status = "error"
        record.finished = time.time()
        self.errors += 1
        self.admission.release(record.client)
        if self.store is not None:
            self.store.record_terminal(record.id, "error", record.finished, message)
        record.publish("error", {"message": message, **record.status_payload()})
        self._retire(record)

    def _retire(self, record: ExperimentRecord) -> None:
        self._history.append(record.id)
        while len(self._history) > self.max_history:
            victim = self._history.pop(0)
            self._records.pop(victim, None)
            self._result_cache.pop(victim, None)
            self.evicted += 1
            if self.store is not None:
                self.store.record_evict(victim)
            if self.tracer is not None:
                self.tracer.event("service.evict", id=victim)

    # -- results --------------------------------------------------------
    def _build_result(self, record: ExperimentRecord) -> dict[str, Any]:
        """Worker thread: assemble the RunReport (+figure) for one record."""
        from repro.experiments.sweep import run_spec
        from repro.specs import policy_label
        from repro.telemetry import RunReport

        with self._bench_lock:
            # After a restart the memory cache starts empty: results for
            # cells settled before the crash live only in the run cache.
            # Prefetch exactly the ok cells (never failed ones -- those
            # would re-execute) to pull them back into memory.
            missing = [
                cell.job
                for cell in record.cells.values()
                if cell.status == "ok" and self.bench.result_for(cell.job) is None
            ]
            if missing:
                self.bench.prefetch(missing)
            runs = []
            for job in record.jobs:
                result = self.bench.result_for(job)
                if result is not None:
                    runs.append((job, result))
            failures = [
                {
                    "kernel": cell.job.kernel,
                    "config": cell.job.config.name,
                    "policy": policy_label(cell.job.policy),
                    **(cell.failure or {}),
                }
                for cell in record.cells.values()
                if cell.status == "failed"
            ]
            try:
                figure = run_spec(self.bench, record.spec).to_dict()
            except Exception:  # noqa: BLE001 - figure is best-effort garnish
                figure = None
            report = RunReport.from_runs(
                record.spec.name,
                runs,
                failures=failures,
                workbench={
                    "instructions": self.bench.instructions,
                    "seed": self.bench.seed,
                    "loc_mode": self.bench.loc_mode,
                    "workers": self.bench.workers,
                    "sim": self.bench.sim,
                    "benchmarks": [spec.name for spec in self.bench.benchmarks],
                },
                figure=figure,
            )
        # to_json() schema-validates; the endpoint never serves a report
        # that would not round-trip through validate_report().
        return json.loads(report.to_json())

    # -- HTTP dispatch --------------------------------------------------
    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            try:
                # The timeout covers receiving one *complete* request, so a
                # client trickling header bytes (slowloris) cannot pin a
                # handler task open indefinitely.
                request = await asyncio.wait_for(_read_request(reader), _READ_TIMEOUT)
            except ServiceError as exc:
                writer.write(_http_payload(exc.status, exc.to_payload()))
                await writer.drain()
                return
            except (asyncio.IncompleteReadError, ConnectionError, asyncio.TimeoutError):
                return
            if request is None:
                return
            try:
                await self._route(request, reader, writer)
            except ServiceError as exc:
                writer.write(_http_payload(exc.status, exc.to_payload()))
                await writer.drain()
            except (ConnectionError, asyncio.CancelledError):
                raise
            except Exception as exc:  # noqa: BLE001 - typed 500, never a hang
                payload = ServiceError(
                    "internal", f"{type(exc).__name__}: {exc}"
                ).to_payload()
                writer.write(_http_payload(500, payload))
                await writer.drain()
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    def _record_or_404(self, exp_id: str) -> ExperimentRecord:
        record = self._records.get(exp_id)
        if record is None:
            raise ServiceError(
                "not_found", f"unknown experiment {exp_id!r}",
                detail={"id": exp_id},
            )
        return record

    async def _route(
        self,
        request: _Request,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        path, method = request.path, request.method
        send: Callable[[int, Any], Awaitable[None]]

        async def send(status: int, payload: Any) -> None:
            writer.write(_http_payload(status, payload))
            await writer.drain()

        if path == "/v1/experiments":
            if method != "POST":
                raise ServiceError("method_not_allowed", f"{method} {path}")
            await send(201, self._submit(request))
            return
        if path == "/v1/stats":
            if method != "GET":
                raise ServiceError("method_not_allowed", f"{method} {path}")
            await send(200, self.stats())
            return
        if path == "/v1/healthz":
            # Liveness: 200 whenever the loop can answer at all.  The
            # degradation detail lives in readyz; these fields are only a
            # convenience for humans curling the old endpoint.
            await send(200, {
                "status": "ok",
                "uptime_seconds": round(time.time() - self.started, 3),
                "draining": self._draining,
                "recovering": self._recovering,
            })
            return
        if path == "/v1/readyz":
            status, payload = self.readiness()
            await send(status, payload)
            return
        parts = [p for p in path.split("/") if p]
        if len(parts) >= 3 and parts[0] == "v1" and parts[1] == "experiments":
            exp_id = parts[2]
            tail = parts[3] if len(parts) > 3 else None
            if method != "GET" or len(parts) > 4:
                raise ServiceError("method_not_allowed", f"{method} {path}")
            record = self._record_or_404(exp_id)
            if tail is None:
                await send(200, record.status_payload(self._manifest_summary(record)))
                return
            if tail == "result":
                if record.status == "error":
                    raise ServiceError(
                        "conflict",
                        f"experiment {exp_id} failed; no result",
                        detail={"status": record.status},
                    )
                if record.status != "done":
                    raise ServiceError(
                        "conflict",
                        f"experiment {exp_id} is {record.status}, not done",
                        detail={"status": record.status},
                    )
                payload = self._result_cache.get(exp_id)
                if payload is None:
                    payload = await asyncio.to_thread(self._build_result, record)
                    self._result_cache[exp_id] = payload
                await send(200, payload)
                return
            if tail == "events":
                await self._stream_events(record, request, writer)
                return
        raise ServiceError("not_found", f"no route for {method} {path}")

    async def _stream_events(
        self,
        record: ExperimentRecord,
        request: _Request,
        writer: asyncio.StreamWriter,
    ) -> None:
        after = request.headers.get("last-event-id", request.query.get("after", "0"))
        try:
            sent = max(0, int(after))  # highest event id already delivered
        except ValueError:
            raise ServiceError("bad_request", f"bad event id {after!r}") from None
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: text/event-stream\r\n"
            b"Cache-Control: no-cache\r\n"
            b"Connection: close\r\n\r\n"
        )
        await writer.drain()
        while True:
            if sent < record.events_base and self.store is not None:
                # The requested suffix starts before the in-memory tail:
                # read the spilled prefix back from the durable store.
                # (Every published event is spilled before it enters
                # memory, so disk is always a superset of memory.)
                spilled = await asyncio.to_thread(self.store.load_events, record.id)
                for entry in spilled:
                    if entry["id"] > sent:
                        writer.write(_sse_event(entry))
                        sent = entry["id"]
            for entry in record.events_after(sent):
                writer.write(_sse_event(entry))
                sent = entry["id"]
            await writer.drain()
            if record.terminal and sent >= record.events_total:
                return
            known = sent
            await record.wait_for_events(known, _SSE_KEEPALIVE)
            if record.events_total <= known:
                writer.write(b": keep-alive\n\n")  # idle heartbeat

    # -- probes and stats ------------------------------------------------
    def durability(self) -> dict[str, Any]:
        """Store / recovery / breaker / drain state (readyz and stats)."""
        return {
            "durable": self.store is not None,
            "recovering": self._recovering,
            "draining": self._draining,
            "recovered": {
                "experiments": self.recovered,
                "requeued_jobs": self.recovered_jobs,
            },
            "store": self.store.stats() if self.store is not None else None,
            "breaker": self.breaker.snapshot() if self.breaker is not None else None,
            "admission": self.admission.snapshot(),
        }

    def readiness(self) -> tuple[int, dict[str, Any]]:
        """The ``/v1/readyz`` probe: (status, payload)."""
        if self._recovering:
            status, state = 503, "recovering"
        elif self._draining or self._closing:
            status, state = 503, "draining"
        else:
            status, state = 200, "ready"
        return status, {"status": state, **self.durability()}

    def stats(self) -> dict[str, Any]:
        active = sum(1 for r in self._records.values() if not r.terminal)
        payload: dict[str, Any] = {
            "schema": STATS_SCHEMA,
            "uptime_seconds": round(time.time() - self.started, 3),
            "experiments": {
                "submitted": self.submitted,
                "completed": self.completed,
                "errors": self.errors,
                "active": active,
                "evicted": self.evicted,
            },
            "jobs": {
                "claimed": self.registry.claimed_total,
                "coalesced": self.registry.coalesced_total,
                "cached": self.jobs_cached,
                "in_flight": self.registry.in_flight(),
                "executed": self.bench.exec_stats.executed,
            },
            "executor": self.bench.exec_stats.to_dict(),
            "simulations_run": self.bench.simulations_run,
            "cache": self.cache.stats() if self.cache is not None else None,
            "quota": self.quota.snapshot(),
            "durability": self.durability(),
        }
        return payload


# ---------------------------------------------------------------------------
# Entry points
# ---------------------------------------------------------------------------


async def _serve_async(server: ReproServer, announce: bool) -> None:
    import signal

    await server.start()
    loop = asyncio.get_running_loop()
    # SIGTERM/SIGINT start a graceful drain instead of killing the loop:
    # in-flight work checkpoints at the next settle boundary, the store
    # flushes, then serve() returns.  Platforms without signal-handler
    # support (Windows loops) fall back to KeyboardInterrupt in serve().
    for sig in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(sig, server.request_drain)
        except (NotImplementedError, RuntimeError, ValueError):
            pass
    if announce:
        print(f"repro service listening on {server.url} "
              f"(workers={server.bench.workers}, "
              f"cache={'off' if server.cache is None else server.cache.root})")
    serve_task = asyncio.create_task(server.serve_forever())
    drain_task = asyncio.create_task(server.wait_drained())
    try:
        await asyncio.wait(
            {serve_task, drain_task}, return_when=asyncio.FIRST_COMPLETED
        )
    except asyncio.CancelledError:
        pass
    finally:
        for task in (serve_task, drain_task):
            task.cancel()
            try:
                await task
            except (asyncio.CancelledError, Exception):  # noqa: BLE001 - teardown
                pass
        drained = server._draining
        await server.aclose()
        if announce and drained:
            print("repro service drained and stopped")


def serve(announce: bool = True, **kwargs: Any) -> int:
    """Blocking entry point for ``repro serve`` (signal or Ctrl-C to stop)."""
    server = ReproServer(**kwargs)
    try:
        asyncio.run(_serve_async(server, announce))
    except KeyboardInterrupt:
        if announce:
            print("\nrepro service stopped")
        return 130
    return 0


class BackgroundServer:
    """Run a :class:`ReproServer` on a daemon thread (tests, notebooks).

    ::

        with BackgroundServer(workers=0, cache_dir=tmp) as server:
            client = Client(server.url)
            ...

    ``__enter__`` blocks until the socket is bound (so ``server.port`` is
    the real ephemeral port); ``__exit__`` interrupts in-flight sweeps at
    the next settle boundary and joins the thread.
    """

    def __init__(self, **kwargs: Any):
        self._kwargs = kwargs
        self.server: ReproServer | None = None
        self._thread: threading.Thread | None = None
        self._started = threading.Event()
        self._stop: asyncio.Event | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._error: BaseException | None = None

    def __enter__(self) -> ReproServer:
        self._thread = threading.Thread(
            target=lambda: asyncio.run(self._main()), daemon=True
        )
        self._thread.start()
        if not self._started.wait(timeout=30):
            raise RuntimeError("background repro server failed to start in 30s")
        if self._error is not None:
            raise RuntimeError("background repro server failed") from self._error
        assert self.server is not None
        return self.server

    async def _main(self) -> None:
        try:
            self._loop = asyncio.get_running_loop()
            self._stop = asyncio.Event()
            self.server = ReproServer(**self._kwargs)
            await self.server.start()
        except BaseException as exc:  # noqa: BLE001 - surfaced in __enter__
            self._error = exc
            self._started.set()
            return
        self._started.set()
        await self._stop.wait()
        await self.server.aclose()

    def __exit__(self, *exc_info: Any) -> None:
        if self._loop is not None and self._stop is not None:
            try:
                self._loop.call_soon_threadsafe(self._stop.set)
            except RuntimeError:  # loop already gone
                pass
        if self._thread is not None:
            self._thread.join(timeout=30)
