"""The asyncio job server behind ``repro serve``.

Simulation-as-a-service over the existing stack, stdlib-only: the spec
layer is the wire format (``repro.experiment_spec/1`` JSON bodies), the
content-addressed :class:`~repro.experiments.cache.RunCache` is the
dedupe substrate, the resilient executor
(:meth:`~repro.experiments.harness.Workbench.prefetch` →
:func:`~repro.experiments.parallel.execute_outcomes`) does the work, and
:class:`~repro.experiments.manifest.SweepManifest` journals per-job
progress that the status and SSE endpoints replay.

Endpoints (all JSON; errors are ``repro.service_error/1`` payloads):

* ``POST /v1/experiments`` -- submit an ExperimentSpec body.  The spec
  is schema-validated, charged against the client's token bucket
  (``X-Repro-Client`` header names the tenant), its jobs are
  content-addressed and partitioned by the
  :class:`~repro.service.scheduler.CoalescingRegistry` into
  execute / coalesced / cached, and the residual jobs are queued by
  priority (``execution.priority`` in the spec).
* ``GET /v1/experiments/{id}`` -- status: job counters plus the sweep
  manifest summary.
* ``GET /v1/experiments/{id}/events`` -- server-sent events; every event
  carries an ``id``, and ``Last-Event-ID`` (or ``?after=N``) replays the
  journal suffix after a reconnect.
* ``GET /v1/experiments/{id}/result`` -- the schema-validated
  :class:`~repro.telemetry.report.RunReport` (with the rendered figure
  table embedded), bit-identical to running the same spec through
  :func:`~repro.experiments.sweep.run_spec` serially.
* ``GET /v1/stats`` -- service counters, executor
  :class:`~repro.experiments.outcomes.OutcomeStats`, cache counters and
  quota balances.
* ``GET /v1/healthz`` -- liveness probe.

Threading model: the event loop owns all experiment state (records,
registry, manifests map); exactly one worker task drains the priority
queue and runs each submission's residual jobs in a thread via
``asyncio.to_thread``, which fans per-job settlements back onto the loop
with ``call_soon_threadsafe``.  The single worker serializes access to
the shared :class:`~repro.experiments.harness.Workbench` (whose process
pool provides the actual parallelism), which is what makes coalescing
airtight: claims happen on the loop, execution happens one submission at
a time, and a settled key's result is in the run cache before its flight
leaves the registry -- so at every instant an overlapping key is either
in flight (coalesce) or cached (hit), never re-executed.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from typing import Any, Awaitable, Callable
from urllib.parse import parse_qs, urlsplit

from repro.experiments.cache import RunCache, job_key
from repro.experiments.harness import DEFAULT_INSTRUCTIONS, Workbench
from repro.experiments.manifest import SweepManifest, default_manifest_dir
from repro.experiments.outcomes import ExecutionInterrupted, ExecutionPolicy, JobOutcome
from repro.service.errors import ServiceError
from repro.service.quota import QuotaManager
from repro.service.scheduler import CoalescingRegistry, queue_key
from repro.service.state import ExperimentRecord, JobCell
from repro.specs import ExperimentSpec, SpecError, spec_hash

__all__ = ["BackgroundServer", "ReproServer", "serve"]

STATS_SCHEMA = "repro.service_stats/1"

_MAX_BODY = 8 << 20  # 8 MiB: a spec file is kilobytes; anything bigger is abuse
_MAX_HEADER_BYTES = 64 << 10  # request line + headers combined
_READ_TIMEOUT = 30.0  # seconds to receive one complete request (anti-slowloris)
_SSE_KEEPALIVE = 15.0  # seconds between ``:`` comments on an idle stream


class _Request:
    """One parsed HTTP/1.1 request."""

    __slots__ = ("method", "path", "query", "headers", "body")

    def __init__(self, method: str, target: str, headers: dict[str, str], body: bytes):
        self.method = method
        split = urlsplit(target)
        self.path = split.path
        self.query = {k: v[-1] for k, v in parse_qs(split.query).items()}
        self.headers = headers
        self.body = body


async def _read_request(reader: asyncio.StreamReader) -> _Request | None:
    line = await reader.readline()
    if not line:
        return None
    parts = line.decode("latin-1").split()
    if len(parts) < 2:
        raise ServiceError("bad_request", f"malformed request line {line!r}")
    method, target = parts[0].upper(), parts[1]
    headers: dict[str, str] = {}
    header_bytes = len(line)
    while True:
        raw = await reader.readline()
        if raw in (b"\r\n", b"\n", b""):
            break
        header_bytes += len(raw)
        if header_bytes > _MAX_HEADER_BYTES:
            raise ServiceError(
                "payload_too_large",
                f"request headers exceed the {_MAX_HEADER_BYTES}-byte limit",
            )
        name, _, value = raw.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    body = b""
    length = headers.get("content-length")
    if length:
        try:
            size = int(length)
        except ValueError:
            raise ServiceError("bad_request", f"bad Content-Length {length!r}") from None
        if size < 0:
            raise ServiceError("bad_request", f"bad Content-Length {length!r}")
        if size > _MAX_BODY:
            raise ServiceError(
                "payload_too_large",
                f"body of {size} bytes exceeds the {_MAX_BODY}-byte limit",
            )
        body = await reader.readexactly(size)
    return _Request(method, target, headers, body)


def _http_payload(status: int, payload: Any, content_type: str = "application/json") -> bytes:
    body = (json.dumps(payload, indent=1) + "\n").encode("utf-8")
    reason = {
        200: "OK", 201: "Created", 400: "Bad Request", 404: "Not Found",
        405: "Method Not Allowed", 409: "Conflict", 413: "Payload Too Large",
        429: "Too Many Requests", 500: "Internal Server Error",
        503: "Service Unavailable",
    }.get(status, "OK")
    head = (
        f"HTTP/1.1 {status} {reason}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(body)}\r\n"
        "Connection: close\r\n\r\n"
    )
    return head.encode("latin-1") + body


def _sse_event(entry: dict[str, Any]) -> bytes:
    data = json.dumps(entry["data"], separators=(",", ":"))
    return (
        f"id: {entry['id']}\nevent: {entry['event']}\ndata: {data}\n\n"
    ).encode("utf-8")


class ReproServer:
    """One service instance: shared workbench, registry, quotas, HTTP."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        workers: int = 0,
        cache_dir: str | None = None,
        no_cache: bool = False,
        instructions: int = DEFAULT_INSTRUCTIONS,
        seed: int = 0,
        loc_mode: str = "probabilistic",
        batch: str = "auto",
        quota: float | None = None,
        quota_refill: float = 0.0,
        execution: ExecutionPolicy | None = None,
        executor: str = "local",
        workers_endpoint: str | None = None,
        tracer=None,
        max_history: int = 256,
    ):
        self.host = host
        self.port = port
        self.tracer = tracer
        self.cache = None if no_cache else RunCache(cache_dir, tracer=tracer)
        self.bench = Workbench(
            instructions=instructions,
            seed=seed,
            loc_mode=loc_mode,
            workers=workers,
            cache=self.cache,
            batch=batch,
            tracer=tracer,
            execution=execution if execution is not None else ExecutionPolicy(),
            executor=executor,
            workers_endpoint=workers_endpoint,
        )
        self.quota = QuotaManager(quota, quota_refill)
        self.registry = CoalescingRegistry()
        self.max_history = max_history
        self.started = time.time()

        self._records: dict[str, ExperimentRecord] = {}
        self._manifests: dict[str, SweepManifest] = {}
        self._result_cache: dict[str, dict[str, Any]] = {}
        self._history: list[str] = []  # finished record ids, oldest first
        self._seq = 0
        self._bench_lock = threading.Lock()
        self._stop_event = threading.Event()
        self._closing = False
        self.submitted = 0
        self.completed = 0
        self.errors = 0
        self.evicted = 0
        self.jobs_cached = 0

        self._loop: asyncio.AbstractEventLoop | None = None
        self._queue: asyncio.PriorityQueue | None = None
        self._worker: asyncio.Task | None = None
        self._server: asyncio.base_events.Server | None = None

    # -- lifecycle ------------------------------------------------------
    async def start(self) -> "ReproServer":
        """Bind the socket and start the worker; resolves the real port."""
        self._loop = asyncio.get_running_loop()
        self._queue = asyncio.PriorityQueue()
        self._worker = asyncio.create_task(self._worker_loop())
        self._server = await asyncio.start_server(self._handle_client, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def serve_forever(self) -> None:
        assert self._server is not None
        await self._server.serve_forever()

    async def aclose(self) -> None:
        """Stop accepting, interrupt in-flight sweeps, drain the worker."""
        self._closing = True
        self._stop_event.set()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._worker is not None:
            self._worker.cancel()
            try:
                await self._worker
            except (asyncio.CancelledError, Exception):  # noqa: BLE001 - teardown
                pass
        self.bench.close_executors()

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # -- submission (event loop) ---------------------------------------
    def _submit(self, request: _Request) -> dict[str, Any]:
        if self._closing:
            raise ServiceError("shutting_down", "server is shutting down")
        client = request.headers.get("x-repro-client", "anonymous")
        try:
            data = json.loads(request.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ServiceError(
                "invalid_json", f"body is not valid JSON: {exc}"
            ) from exc
        try:
            spec = ExperimentSpec.from_dict(data)
            jobs = spec.jobs(self.bench)
        except SpecError as exc:
            raise ServiceError(
                "invalid_spec", str(exc), detail={"schema": "repro.experiment_spec/1"}
            ) from exc

        first_job: dict[str, Any] = {}
        keys: list[str] = []
        for job in jobs:
            key = job_key(job)
            keys.append(key)
            first_job.setdefault(key, job)
        self.quota.charge(client, len(first_job))

        priority = 0
        if spec.execution is not None:
            priority = int(spec.execution.get("priority", 0))
        self._seq += 1
        record = ExperimentRecord(
            id=f"exp-{self._seq:06d}",
            spec=spec,
            spec_hash=spec_hash(spec),
            client=client,
            priority=priority,
            jobs=list(jobs),
        )
        claim = self.registry.claim(
            record,
            keys,
            is_cached=lambda k: self._is_cached(first_job[k]),
        )
        execute, coalesced = set(claim.execute), set(claim.coalesced)
        run_jobs = []
        for key, job in first_job.items():
            if key in execute:
                kind = "execute"
                run_jobs.append(job)
            elif key in coalesced:
                kind = "coalesced"
            else:
                kind = "cached"
                run_jobs.append(job)  # prefetch pulls it into memory, 0 executed
            record.cells[key] = JobCell(job=job, key=key, kind=kind)
        self.jobs_cached += len(claim.cached)
        self._records[record.id] = record
        self.submitted += 1
        if self.tracer is not None:
            self.tracer.event(
                "service.submit",
                id=record.id,
                client=client,
                jobs=len(first_job),
                execute=len(claim.execute),
                coalesced=len(claim.coalesced),
                cached=len(claim.cached),
            )
            if claim.coalesced:
                self.tracer.event(
                    "service.coalesce", id=record.id, keys=len(claim.coalesced)
                )
        record.publish("status", {"status": "queued", "jobs": record.job_counts()})
        for key in claim.cached:
            record.note_settled(key, True, "cache")
        if run_jobs:
            assert self._queue is not None
            self._queue.put_nowait((queue_key(priority, self._seq), record, run_jobs))
        else:
            # Everything rides on other submissions' flights (or the spec
            # was empty of work): completion comes from fan-out alone.
            self._maybe_finalize(record)
        return record.status_payload(self._manifest_summary(record))

    def _is_cached(self, job) -> bool:
        if self.bench.result_for(job) is not None:
            return True
        return self.cache is not None and self.cache.contains(job)

    # -- execution (worker task + thread) ------------------------------
    async def _worker_loop(self) -> None:
        assert self._queue is not None
        while True:
            _key, record, run_jobs = await self._queue.get()
            if record.terminal:
                continue
            record.status = "running"
            record.publish("status", {"status": "running"})
            try:
                await asyncio.to_thread(self._execute_jobs, record, run_jobs)
            except ExecutionInterrupted:
                self._fail_record(record, "server shutting down mid-sweep")
                continue
            except Exception as exc:  # noqa: BLE001 - typed into the record
                self._fail_record(record, f"{type(exc).__name__}: {exc}")
                continue
            # to_thread resumes via a loop callback enqueued *after* every
            # per-job call_soon_threadsafe fan-out, so all settlements from
            # this sweep have already been applied when the sweep runs.
            self._sweep_record(record)

    def _execute_jobs(self, record: ExperimentRecord, run_jobs: list) -> None:
        """Worker thread: run one submission's residual jobs."""
        manifest = self._manifest_for(record)

        def on_outcome(outcome: JobOutcome) -> None:
            key = job_key(outcome.job)
            if manifest is not None:
                manifest.record(key, outcome)
                manifest.save()
            info = {
                "ok": outcome.ok,
                "source": outcome.source,
                "failure": outcome.failure.to_dict() if outcome.failure else None,
            }
            assert self._loop is not None
            self._loop.call_soon_threadsafe(self._fan_out, record, key, info)

        with self._bench_lock:
            saved = self.bench.execution
            saved_executor = self.bench.executor
            self.bench.execution = record.spec.execution_policy(saved)
            spec_executor = (record.spec.execution or {}).get("executor")
            if spec_executor is not None:
                self.bench.executor = spec_executor
            try:
                self.bench.prefetch(
                    run_jobs,
                    on_outcome=on_outcome,
                    should_stop=self._stop_event.is_set,
                )
            finally:
                self.bench.execution = saved
                self.bench.executor = saved_executor
                if manifest is not None:
                    manifest.save(force=True)

    def _manifest_for(self, record: ExperimentRecord) -> SweepManifest | None:
        if self.cache is None:
            return None
        manifest = self._manifests.get(record.spec_hash)
        if manifest is None:
            manifest = SweepManifest.open(
                default_manifest_dir(self.cache.root),
                record.spec_hash,
                record.spec.name,
            )
            self._manifests[record.spec_hash] = manifest
        return manifest

    def _manifest_summary(self, record: ExperimentRecord) -> dict[str, int] | None:
        manifest = self._manifests.get(record.spec_hash)
        return manifest.summary() if manifest is not None else None

    # -- settlement fan-out (event loop) --------------------------------
    def _fan_out(self, record: ExperimentRecord, key: str, info: dict[str, Any]) -> None:
        parties = self.registry.settle(key) or [record]
        if len(parties) > 1 and self.tracer is not None:
            self.tracer.event("service.fanout", key=key, parties=len(parties))
        for index, party in enumerate(parties):
            source = info["source"] if party is record else "coalesced"
            party.note_settled(key, info["ok"], source, info["failure"])
            self._maybe_finalize(party)

    def _sweep_record(self, record: ExperimentRecord) -> None:
        """Settle leftovers after a sweep: cache-satisfied or lost jobs."""
        for cell in list(record.pending_cells()):
            if cell.kind == "coalesced" and self.registry.is_in_flight(cell.key):
                continue  # another submission's flight will fan out
            if self.bench.result_for(cell.job) is not None:
                self._fan_out(record, cell.key, {"ok": True, "source": "cache", "failure": None})
                continue
            failed = self.bench.failure_for(cell.job)
            if failed is not None and failed.failure is not None:
                self._fan_out(
                    record,
                    cell.key,
                    {"ok": False, "source": "run", "failure": failed.failure.to_dict()},
                )
                continue
            self._fan_out(
                record,
                cell.key,
                {
                    "ok": False,
                    "source": "run",
                    "failure": {
                        "kind": "error",
                        "error_type": "LostJob",
                        "message": "job produced neither result nor failure",
                        "attempts": 0,
                        "elapsed": 0.0,
                        "traceback_digest": "",
                    },
                },
            )
        self._maybe_finalize(record)

    def _maybe_finalize(self, record: ExperimentRecord) -> None:
        if record.terminal or not record.all_settled():
            return
        record.status = "done"
        record.finished = time.time()
        self.completed += 1
        record.publish("done", record.status_payload(self._manifest_summary(record)))
        self._retire(record)

    def _fail_record(self, record: ExperimentRecord, message: str) -> None:
        failure = {
            "kind": "error",
            "error_type": "ServiceError",
            "message": message,
            "attempts": 0,
            "elapsed": 0.0,
            "traceback_digest": "",
        }
        # Forfeit (not re-own) every flight this record claimed: the
        # subscribers coalesced instead of claiming, so their run sets
        # exclude these keys and nobody else will ever execute them.
        # Settle each flight as failed and fan that out, so subscribers
        # reach a terminal state instead of waiting forever, and the
        # keys leave the registry for the next submission to retry.
        for flight in self.registry.forfeit(record):
            for party in flight.parties():
                if party is record:
                    party.note_settled(flight.key, False, "run", failure, publish=False)
                else:
                    party.note_settled(flight.key, False, "coalesced", failure)
                    self._maybe_finalize(party)
        record.status = "error"
        record.finished = time.time()
        self.errors += 1
        record.publish("error", {"message": message, **record.status_payload()})
        self._retire(record)

    def _retire(self, record: ExperimentRecord) -> None:
        self._history.append(record.id)
        while len(self._history) > self.max_history:
            victim = self._history.pop(0)
            self._records.pop(victim, None)
            self._result_cache.pop(victim, None)
            self.evicted += 1
            if self.tracer is not None:
                self.tracer.event("service.evict", id=victim)

    # -- results --------------------------------------------------------
    def _build_result(self, record: ExperimentRecord) -> dict[str, Any]:
        """Worker thread: assemble the RunReport (+figure) for one record."""
        from repro.experiments.sweep import run_spec
        from repro.specs import policy_label
        from repro.telemetry import RunReport

        with self._bench_lock:
            runs = []
            for job in record.jobs:
                result = self.bench.result_for(job)
                if result is not None:
                    runs.append((job, result))
            failures = [
                {
                    "kernel": cell.job.kernel,
                    "config": cell.job.config.name,
                    "policy": policy_label(cell.job.policy),
                    **(cell.failure or {}),
                }
                for cell in record.cells.values()
                if cell.status == "failed"
            ]
            try:
                figure = run_spec(self.bench, record.spec).to_dict()
            except Exception:  # noqa: BLE001 - figure is best-effort garnish
                figure = None
            report = RunReport.from_runs(
                record.spec.name,
                runs,
                failures=failures,
                workbench={
                    "instructions": self.bench.instructions,
                    "seed": self.bench.seed,
                    "loc_mode": self.bench.loc_mode,
                    "workers": self.bench.workers,
                    "sim": self.bench.sim,
                    "benchmarks": [spec.name for spec in self.bench.benchmarks],
                },
                figure=figure,
            )
        # to_json() schema-validates; the endpoint never serves a report
        # that would not round-trip through validate_report().
        return json.loads(report.to_json())

    # -- HTTP dispatch --------------------------------------------------
    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            try:
                # The timeout covers receiving one *complete* request, so a
                # client trickling header bytes (slowloris) cannot pin a
                # handler task open indefinitely.
                request = await asyncio.wait_for(_read_request(reader), _READ_TIMEOUT)
            except ServiceError as exc:
                writer.write(_http_payload(exc.status, exc.to_payload()))
                await writer.drain()
                return
            except (asyncio.IncompleteReadError, ConnectionError, asyncio.TimeoutError):
                return
            if request is None:
                return
            try:
                await self._route(request, reader, writer)
            except ServiceError as exc:
                writer.write(_http_payload(exc.status, exc.to_payload()))
                await writer.drain()
            except (ConnectionError, asyncio.CancelledError):
                raise
            except Exception as exc:  # noqa: BLE001 - typed 500, never a hang
                payload = ServiceError(
                    "internal", f"{type(exc).__name__}: {exc}"
                ).to_payload()
                writer.write(_http_payload(500, payload))
                await writer.drain()
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    def _record_or_404(self, exp_id: str) -> ExperimentRecord:
        record = self._records.get(exp_id)
        if record is None:
            raise ServiceError(
                "not_found", f"unknown experiment {exp_id!r}",
                detail={"id": exp_id},
            )
        return record

    async def _route(
        self,
        request: _Request,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        path, method = request.path, request.method
        send: Callable[[int, Any], Awaitable[None]]

        async def send(status: int, payload: Any) -> None:
            writer.write(_http_payload(status, payload))
            await writer.drain()

        if path == "/v1/experiments":
            if method != "POST":
                raise ServiceError("method_not_allowed", f"{method} {path}")
            await send(201, self._submit(request))
            return
        if path == "/v1/stats":
            if method != "GET":
                raise ServiceError("method_not_allowed", f"{method} {path}")
            await send(200, self.stats())
            return
        if path == "/v1/healthz":
            await send(200, {"status": "ok", "uptime_seconds": round(time.time() - self.started, 3)})
            return
        parts = [p for p in path.split("/") if p]
        if len(parts) >= 3 and parts[0] == "v1" and parts[1] == "experiments":
            exp_id = parts[2]
            tail = parts[3] if len(parts) > 3 else None
            if method != "GET" or len(parts) > 4:
                raise ServiceError("method_not_allowed", f"{method} {path}")
            record = self._record_or_404(exp_id)
            if tail is None:
                await send(200, record.status_payload(self._manifest_summary(record)))
                return
            if tail == "result":
                if record.status == "error":
                    raise ServiceError(
                        "conflict",
                        f"experiment {exp_id} failed; no result",
                        detail={"status": record.status},
                    )
                if record.status != "done":
                    raise ServiceError(
                        "conflict",
                        f"experiment {exp_id} is {record.status}, not done",
                        detail={"status": record.status},
                    )
                payload = self._result_cache.get(exp_id)
                if payload is None:
                    payload = await asyncio.to_thread(self._build_result, record)
                    self._result_cache[exp_id] = payload
                await send(200, payload)
                return
            if tail == "events":
                await self._stream_events(record, request, writer)
                return
        raise ServiceError("not_found", f"no route for {method} {path}")

    async def _stream_events(
        self,
        record: ExperimentRecord,
        request: _Request,
        writer: asyncio.StreamWriter,
    ) -> None:
        after = request.headers.get("last-event-id", request.query.get("after", "0"))
        try:
            index = max(0, int(after))
        except ValueError:
            raise ServiceError("bad_request", f"bad event id {after!r}") from None
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: text/event-stream\r\n"
            b"Cache-Control: no-cache\r\n"
            b"Connection: close\r\n\r\n"
        )
        await writer.drain()
        while True:
            while index < len(record.events):
                writer.write(_sse_event(record.events[index]))
                index += 1
            await writer.drain()
            if record.terminal and index >= len(record.events):
                return
            known = index
            await record.wait_for_events(known, _SSE_KEEPALIVE)
            if len(record.events) <= known:
                writer.write(b": keep-alive\n\n")  # idle heartbeat

    # -- stats ----------------------------------------------------------
    def stats(self) -> dict[str, Any]:
        active = sum(1 for r in self._records.values() if not r.terminal)
        payload: dict[str, Any] = {
            "schema": STATS_SCHEMA,
            "uptime_seconds": round(time.time() - self.started, 3),
            "experiments": {
                "submitted": self.submitted,
                "completed": self.completed,
                "errors": self.errors,
                "active": active,
                "evicted": self.evicted,
            },
            "jobs": {
                "claimed": self.registry.claimed_total,
                "coalesced": self.registry.coalesced_total,
                "cached": self.jobs_cached,
                "in_flight": self.registry.in_flight(),
                "executed": self.bench.exec_stats.executed,
            },
            "executor": self.bench.exec_stats.to_dict(),
            "simulations_run": self.bench.simulations_run,
            "cache": self.cache.stats() if self.cache is not None else None,
            "quota": self.quota.snapshot(),
        }
        return payload


# ---------------------------------------------------------------------------
# Entry points
# ---------------------------------------------------------------------------


async def _serve_async(server: ReproServer, announce: bool) -> None:
    await server.start()
    if announce:
        print(f"repro service listening on {server.url} "
              f"(workers={server.bench.workers}, "
              f"cache={'off' if server.cache is None else server.cache.root})")
    try:
        await server.serve_forever()
    except asyncio.CancelledError:
        pass
    finally:
        await server.aclose()


def serve(announce: bool = True, **kwargs: Any) -> int:
    """Blocking entry point for ``repro serve`` (Ctrl-C to stop)."""
    server = ReproServer(**kwargs)
    try:
        asyncio.run(_serve_async(server, announce))
    except KeyboardInterrupt:
        if announce:
            print("\nrepro service stopped")
        return 130
    return 0


class BackgroundServer:
    """Run a :class:`ReproServer` on a daemon thread (tests, notebooks).

    ::

        with BackgroundServer(workers=0, cache_dir=tmp) as server:
            client = Client(server.url)
            ...

    ``__enter__`` blocks until the socket is bound (so ``server.port`` is
    the real ephemeral port); ``__exit__`` interrupts in-flight sweeps at
    the next settle boundary and joins the thread.
    """

    def __init__(self, **kwargs: Any):
        self._kwargs = kwargs
        self.server: ReproServer | None = None
        self._thread: threading.Thread | None = None
        self._started = threading.Event()
        self._stop: asyncio.Event | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._error: BaseException | None = None

    def __enter__(self) -> ReproServer:
        self._thread = threading.Thread(
            target=lambda: asyncio.run(self._main()), daemon=True
        )
        self._thread.start()
        if not self._started.wait(timeout=30):
            raise RuntimeError("background repro server failed to start in 30s")
        if self._error is not None:
            raise RuntimeError("background repro server failed") from self._error
        assert self.server is not None
        return self.server

    async def _main(self) -> None:
        try:
            self._loop = asyncio.get_running_loop()
            self._stop = asyncio.Event()
            self.server = ReproServer(**self._kwargs)
            await self.server.start()
        except BaseException as exc:  # noqa: BLE001 - surfaced in __enter__
            self._error = exc
            self._started.set()
            return
        self._started.set()
        await self._stop.wait()
        await self.server.aclose()

    def __exit__(self, *exc_info: Any) -> None:
        if self._loop is not None and self._stop is not None:
            try:
                self._loop.call_soon_threadsafe(self._stop.set)
            except RuntimeError:  # loop already gone
                pass
        if self._thread is not None:
            self._thread.join(timeout=30)
