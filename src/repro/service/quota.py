"""Per-client token-bucket quotas for the job service.

A submission costs one token per enumerated job (work requested, not
work executed: a fully cached resubmission still spends tokens --
otherwise a hostile client could grind the dedupe path for free).  Each
client gets an independent bucket of ``capacity`` tokens refilling at
``refill_rate`` tokens/second; an empty bucket turns submissions into
``quota_exhausted`` (429) typed errors carrying the cost, the available
balance and a ``retry_after`` hint.

The bucket is the classic lazy-refill formulation: no background timer,
tokens materialize arithmetically on each :meth:`TokenBucket.consume`
from the elapsed monotonic time.  ``capacity=None`` disables metering
entirely (the default -- quotas are opt-in via ``repro serve --quota``).
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable

from repro.service.errors import ServiceError

__all__ = ["QuotaManager", "TokenBucket"]


class TokenBucket:
    """One client's refilling token balance."""

    def __init__(
        self,
        capacity: float,
        refill_rate: float = 0.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if refill_rate < 0:
            raise ValueError("refill_rate must be >= 0")
        self.capacity = float(capacity)
        self.refill_rate = float(refill_rate)
        self._clock = clock
        self._tokens = float(capacity)
        self._updated = clock()

    def _refill(self) -> None:
        now = self._clock()
        if self.refill_rate > 0 and now > self._updated:
            self._tokens = min(
                self.capacity,
                self._tokens + (now - self._updated) * self.refill_rate,
            )
        self._updated = now

    def available(self) -> float:
        """Current balance (after lazy refill)."""
        self._refill()
        return self._tokens

    def try_consume(self, cost: float) -> bool:
        """Spend ``cost`` tokens if the balance covers them."""
        if cost < 0:
            raise ValueError("cost must be >= 0")
        self._refill()
        if cost > self._tokens:
            return False
        self._tokens -= cost
        return True

    def retry_after(self, cost: float) -> float | None:
        """Seconds until ``cost`` tokens could be available, or ``None``.

        ``None`` means never: the cost exceeds the bucket's capacity or
        the bucket does not refill.
        """
        self._refill()
        if cost <= self._tokens:
            return 0.0
        if cost > self.capacity or self.refill_rate <= 0:
            return None
        return (cost - self._tokens) / self.refill_rate


class QuotaManager:
    """Buckets by client id; thread-safe (HTTP handlers and tests share it)."""

    def __init__(
        self,
        capacity: float | None = None,
        refill_rate: float = 0.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        if capacity is not None and capacity <= 0:
            raise ValueError("capacity must be positive (or None to disable)")
        self.capacity = capacity
        self.refill_rate = refill_rate
        self._clock = clock
        self._buckets: dict[str, TokenBucket] = {}
        self._lock = threading.Lock()

    @property
    def enabled(self) -> bool:
        return self.capacity is not None

    def _bucket(self, client: str) -> TokenBucket:
        bucket = self._buckets.get(client)
        if bucket is None:
            assert self.capacity is not None
            bucket = TokenBucket(self.capacity, self.refill_rate, self._clock)
            self._buckets[client] = bucket
        return bucket

    def charge(self, client: str, cost: float) -> None:
        """Spend ``cost`` tokens for ``client`` or raise the 429 typed error."""
        if self.capacity is None or cost <= 0:
            return
        with self._lock:
            bucket = self._bucket(client)
            if bucket.try_consume(cost):
                return
            available = bucket.available()
            retry_after = bucket.retry_after(cost)
        detail: dict[str, Any] = {
            "client": client,
            "cost": cost,
            "available": round(available, 3),
            "capacity": self.capacity,
        }
        if retry_after is not None:
            detail["retry_after"] = round(retry_after, 3)
        raise ServiceError(
            "quota_exhausted",
            f"client {client!r} is out of quota tokens "
            f"(cost {cost}, available {available:.1f} of {self.capacity})",
            detail=detail,
        )

    def snapshot(self) -> dict[str, dict[str, float]]:
        """Per-client balances for the stats endpoint."""
        if self.capacity is None:
            return {}
        with self._lock:
            return {
                client: {
                    "available": round(bucket.available(), 3),
                    "capacity": bucket.capacity,
                    "refill_rate": bucket.refill_rate,
                }
                for client, bucket in sorted(self._buckets.items())
            }

    # -- durable-store persistence --------------------------------------
    def export_state(self) -> dict[str, float]:
        """Per-client available balances, for the durable store.

        Balances only: capacity/refill are server configuration, not
        client state, and restart may legitimately change them.
        """
        if self.capacity is None:
            return {}
        with self._lock:
            return {
                client: round(bucket.available(), 6)
                for client, bucket in sorted(self._buckets.items())
            }

    def restore_state(self, balances: dict[str, float]) -> None:
        """Seed buckets from persisted balances (clamped to capacity).

        Monotonic clocks do not survive a restart, so refill credit
        accrued while the server was down is deliberately forfeited: a
        restart must not be a free refill (the satellite requirement),
        and under-crediting is the safe direction for an abuse control.
        """
        if self.capacity is None:
            return
        with self._lock:
            for client, available in balances.items():
                bucket = TokenBucket(self.capacity, self.refill_rate, self._clock)
                bucket._tokens = min(max(float(available), 0.0), bucket.capacity)
                bucket._updated = self._clock()
                self._buckets[str(client)] = bucket
