"""Per-experiment server-side state: job cells, counters, event journal.

An :class:`ExperimentRecord` is the service's unit of tenancy: one
accepted ``POST /v1/experiments`` body, its enumerated jobs (content-
addressed by :func:`~repro.experiments.cache.job_key`), how each job is
being satisfied (``execute`` / ``coalesced`` / ``cached``), and an
append-only event journal that both the status endpoint and the SSE
stream are views of.

The journal is the SSE wire format's source of truth: every event has a
1-based ``id``, so a client that reconnects with ``Last-Event-ID: n``
(or ``?after=n``) replays the suffix and provably misses nothing.  All
mutation happens on the server's event loop; worker threads reach the
record only through ``loop.call_soon_threadsafe``.

With a durable store attached the journal is *bounded and persistent*:
every published entry is handed to the ``on_event`` hook (the server
spills it to ``<store>/events/<id>.jsonl``), memory keeps only the most
recent ``max_events`` entries (``events_base`` counts the spilled
prefix), and SSE replay reads through -- disk for the spilled prefix,
memory for the live tail.  Ids are assigned from ``events_total``, so
they stay dense and strictly increasing across trims *and* across
server restarts.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.parallel import RunJob
    from repro.specs import ExperimentSpec

__all__ = ["ExperimentRecord", "JobCell"]

# Record lifecycle:  queued -> running -> done
#                      \________________^  (all-cached / all-coalesced
#                                           submissions skip "running")
# "error" is reserved for the service failing the experiment as a whole
# (executor blew up, shutdown); per-job failures still end in "done"
# with failed > 0 -- partial results are results.
_TERMINAL = frozenset({"done", "error"})


@dataclass
class JobCell:
    """One distinct job key of one experiment and how it gets satisfied."""

    job: "RunJob"
    key: str
    kind: str            # "execute" | "coalesced" | "cached"
    status: str = "pending"   # "pending" | "ok" | "failed"
    source: str = ""          # "run" | "cache" | "memory" | "coalesced"
    failure: dict[str, Any] | None = None

    @property
    def settled(self) -> bool:
        return self.status != "pending"


@dataclass
class ExperimentRecord:
    """Everything the service tracks for one submitted experiment."""

    id: str
    spec: "ExperimentSpec"
    spec_hash: str
    client: str
    priority: int = 0
    jobs: list["RunJob"] = field(default_factory=list)  # full spec order
    cells: dict[str, JobCell] = field(default_factory=dict)  # by job key
    status: str = "queued"
    created: float = field(default_factory=time.time)
    finished: float | None = None
    events: list[dict[str, Any]] = field(default_factory=list)
    # Entries spilled out of memory (they precede events[0]'s id).
    events_base: int = 0
    # Memory bound: publish() trims the journal down to this many
    # in-memory entries (None = unbounded, the storeless default).
    max_events: int | None = None
    # Spill hook, set by the server: called with each published entry
    # *before* any trim, so the durable store always holds a superset of
    # what memory dropped.
    on_event: "Callable[[dict[str, Any]], None] | None" = None
    _cond: asyncio.Condition = field(default_factory=asyncio.Condition)

    # -- event journal --------------------------------------------------
    @property
    def events_total(self) -> int:
        """Journal length including spilled entries (the next id - 1)."""
        return self.events_base + len(self.events)

    def publish(self, event: str, data: dict[str, Any]) -> dict[str, Any]:
        """Append one journal event and wake SSE streams (loop only)."""
        entry = {"id": self.events_total + 1, "event": event, "data": data}
        if self.on_event is not None:
            self.on_event(entry)
        self.events.append(entry)
        if self.max_events is not None and len(self.events) > self.max_events:
            drop = len(self.events) - self.max_events
            del self.events[:drop]
            self.events_base += drop

        async def _notify() -> None:
            async with self._cond:
                self._cond.notify_all()

        # publish() always runs on the loop, so the notify task is safe
        # to fire-and-forget; waiters re-check the journal length anyway.
        asyncio.ensure_future(_notify())
        return entry

    def events_after(self, after: int) -> list[dict[str, Any]]:
        """In-memory entries with ``id > after`` (spilled prefix excluded).

        The SSE stream uses this for the live tail; entries with
        ``id <= events_base`` must be read back from the durable store.
        """
        if after >= self.events_total:
            return []
        start = max(after - self.events_base, 0)
        return self.events[start:]

    async def wait_for_events(self, known: int, timeout: float) -> None:
        """Block until the journal grows past ``known`` ids (or timeout)."""
        async with self._cond:
            if self.events_total > known:
                return
            try:
                await asyncio.wait_for(self._cond.wait(), timeout)
            except asyncio.TimeoutError:
                return

    # -- job settlement -------------------------------------------------
    def note_settled(
        self,
        key: str,
        ok: bool,
        source: str,
        failure: dict[str, Any] | None = None,
        publish: bool = True,
    ) -> bool:
        """Record one settled key; returns True if it was still pending."""
        cell = self.cells.get(key)
        if cell is None or cell.settled:
            return False
        cell.status = "ok" if ok else "failed"
        cell.source = source
        cell.failure = failure
        if publish:
            data = {
                "key": key,
                "status": cell.status,
                "kind": cell.kind,
                "source": source,
                "kernel": cell.job.kernel,
                "config": cell.job.config.name,
            }
            if failure is not None:
                data["failure"] = failure
            self.publish("job", data)
        return True

    @property
    def terminal(self) -> bool:
        return self.status in _TERMINAL

    def all_settled(self) -> bool:
        return all(cell.settled for cell in self.cells.values())

    def pending_cells(self) -> list[JobCell]:
        return [cell for cell in self.cells.values() if not cell.settled]

    # -- summaries ------------------------------------------------------
    def job_counts(self) -> dict[str, int]:
        counts = {
            "total": len(self.cells),
            "execute": 0,
            "coalesced": 0,
            "cached": 0,
            "completed": 0,
            "failed": 0,
        }
        for cell in self.cells.values():
            counts[cell.kind] += 1
            if cell.status == "ok":
                counts["completed"] += 1
            elif cell.status == "failed":
                counts["failed"] += 1
        return counts

    def status_payload(
        self, manifest_summary: dict[str, int] | None = None
    ) -> dict[str, Any]:
        payload: dict[str, Any] = {
            "id": self.id,
            "name": self.spec.name,
            "spec_hash": self.spec_hash,
            "status": self.status,
            "client": self.client,
            "priority": self.priority,
            "jobs": self.job_counts(),
            "events": self.events_total,
            "created": self.created,
        }
        if self.finished is not None:
            payload["elapsed_seconds"] = round(self.finished - self.created, 6)
        if manifest_summary is not None:
            payload["manifest"] = manifest_summary
        return payload
