"""Multi-tenant job scheduling: coalescing registry and priority ordering.

The service's scheduling problem is the classic shared-cluster one: many
clients submit overlapping sweep workloads against one simulation
backend.  Two mechanisms keep the backend doing minimal work:

* **Coalescing** (:class:`CoalescingRegistry`): every
  :class:`~repro.experiments.parallel.RunJob` is content-addressed by
  :func:`~repro.experiments.cache.job_key`.  When a submission's job set
  intersects the keys already in flight for earlier submissions, the
  shared keys are *not* claimed again -- the new submission subscribes to
  the in-flight computation and the settled outcome fans out to every
  subscriber.  The invariant (locked in by a hypothesis property in
  ``tests/test_service.py``) is exactly-once execution: however
  submissions partition and in whatever order they arrive, each distinct
  key is claimed by exactly one submission and every other overlapping
  submission coalesces onto that claim.

* **Priority** (:func:`queue_key`): submissions carry an integer
  priority (``execution.priority`` in the spec, default 0); the worker
  drains a priority queue ordered by (-priority, arrival), so a batch of
  co-submitted sweeps runs urgent work first while FIFO-tiebreaking
  equal priorities to keep the queue starvation-free.

* **Admission** (:class:`AdmissionController`): before any of the above,
  a submission must be *admitted*.  Two opt-in caps shed load with typed
  503 ``overloaded`` errors instead of letting the backlog (and its
  durable journal) grow without bound: a global bound on experiments
  that are queued or running, and a per-client in-flight cap so one
  client cannot monopolize the queue.

The registry is deliberately independent of asyncio and of the HTTP
layer: it is called from the event loop only (single-threaded), and the
server fans its decisions out to worker threads.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Hashable, Iterable, Sequence

from repro.service.errors import ServiceError

__all__ = [
    "AdmissionController",
    "Claim",
    "CoalescingRegistry",
    "Flight",
    "plan_claims",
    "queue_key",
]


def queue_key(priority: int, sequence: int) -> tuple[int, int]:
    """Priority-queue ordering: higher priority first, then arrival order."""
    return (-int(priority), int(sequence))


@dataclass
class Flight:
    """One in-flight job key: who claimed it, who is waiting on it."""

    key: str
    owner: Any
    subscribers: list[Any] = field(default_factory=list)

    def parties(self) -> list[Any]:
        return [self.owner, *self.subscribers]


@dataclass(frozen=True)
class Claim:
    """How one submission's keys partitioned against the registry."""

    execute: tuple[str, ...]    # keys this submission must run itself
    coalesced: tuple[str, ...]  # keys already in flight for someone else
    cached: tuple[str, ...]     # keys already satisfied by the result cache


class CoalescingRegistry:
    """Tracks unsettled job keys and fans settlements out to subscribers.

    Keys live in the registry only while unsettled: a settled key leaves
    the registry (its result now lives in the run cache / workbench
    memory), so a later submission of the same key is a *cache* hit, not
    a coalesce.  A key whose execution failed is likewise released --
    the next submission re-claims it and retries, mirroring how the
    resilient executor treats failures as per-attempt, not permanent.
    """

    def __init__(self):
        self._flights: dict[str, Flight] = {}
        self.claimed_total = 0
        self.coalesced_total = 0

    # ------------------------------------------------------------------
    def claim(
        self,
        party: Any,
        keys: Sequence[str],
        is_cached: Callable[[str], bool] | None = None,
    ) -> Claim:
        """Partition ``keys`` for ``party``: execute vs coalesce vs cached.

        Duplicate keys within one submission collapse to a single claim
        (first occurrence wins), matching
        :func:`~repro.experiments.parallel.dedupe_jobs`.
        """
        execute: list[str] = []
        coalesced: list[str] = []
        cached: list[str] = []
        seen: set[str] = set()
        for key in keys:
            if key in seen:
                continue
            seen.add(key)
            flight = self._flights.get(key)
            if flight is not None:
                flight.subscribers.append(party)
                coalesced.append(key)
                self.coalesced_total += 1
                continue
            if is_cached is not None and is_cached(key):
                cached.append(key)
                continue
            self._flights[key] = Flight(key=key, owner=party)
            execute.append(key)
            self.claimed_total += 1
        return Claim(tuple(execute), tuple(coalesced), tuple(cached))

    def settle(self, key: str) -> list[Any]:
        """Retire ``key``; returns every party awaiting it (owner first)."""
        flight = self._flights.pop(key, None)
        if flight is None:
            return []
        return flight.parties()

    def forfeit(self, party: Any) -> list[Flight]:
        """Retire every flight owned by ``party`` without a result.

        Used when a submission dies before finishing its sweep (executor
        blew up, shutdown).  Its flights will never execute now -- the
        subscribers coalesced precisely *because* the owner claimed the
        key, so none of them has it in their own run set.  Re-owning the
        flight would therefore strand it in the registry forever; instead
        each flight is removed and handed back so the caller can fan a
        failure out to owner and subscribers alike.  The keys leave the
        registry, so the next submission re-claims and retries them.
        """
        forfeited = [f for f in self._flights.values() if f.owner is party]
        for flight in forfeited:
            del self._flights[flight.key]
        return forfeited

    def in_flight(self) -> int:
        return len(self._flights)

    def is_in_flight(self, key: str) -> bool:
        return key in self._flights


class AdmissionController:
    """Bounded admission with load shedding (all caps opt-in).

    ``max_queue_depth`` caps experiments that are admitted but not yet
    terminal, across all clients; ``max_client_inflight`` caps them per
    client.  :meth:`admit` either reserves a slot or raises the typed
    503 ``overloaded`` error (with a ``retry_after`` hint); the server
    calls :meth:`release` when the experiment reaches a terminal state.
    Loop-only, like the registry -- no locking.
    """

    def __init__(
        self,
        max_queue_depth: int | None = None,
        max_client_inflight: int | None = None,
        retry_after: float = 1.0,
    ):
        if max_queue_depth is not None and max_queue_depth < 1:
            raise ValueError("max_queue_depth must be >= 1 (or None)")
        if max_client_inflight is not None and max_client_inflight < 1:
            raise ValueError("max_client_inflight must be >= 1 (or None)")
        self.max_queue_depth = max_queue_depth
        self.max_client_inflight = max_client_inflight
        self.retry_after = retry_after
        self._by_client: dict[str, int] = {}
        self.inflight = 0
        self.shed_total = 0

    @property
    def enabled(self) -> bool:
        return (
            self.max_queue_depth is not None
            or self.max_client_inflight is not None
        )

    def admit(self, client: str, force: bool = False) -> None:
        """Reserve an in-flight slot for ``client`` or shed with a 503.

        ``force`` skips the cap checks but still counts the slot -- used
        for experiments recovered from the durable store at boot, which
        were already admitted by the previous incarnation.
        """
        if force:
            self._by_client[client] = self._by_client.get(client, 0) + 1
            self.inflight += 1
            return
        if (
            self.max_queue_depth is not None
            and self.inflight >= self.max_queue_depth
        ):
            self.shed_total += 1
            raise ServiceError(
                "overloaded",
                f"admission queue is full ({self.inflight} experiments "
                f"in flight, cap {self.max_queue_depth}); retry later",
                detail={
                    "reason": "queue_full",
                    "inflight": self.inflight,
                    "max_queue_depth": self.max_queue_depth,
                    "retry_after": self.retry_after,
                },
            )
        held = self._by_client.get(client, 0)
        if (
            self.max_client_inflight is not None
            and held >= self.max_client_inflight
        ):
            self.shed_total += 1
            raise ServiceError(
                "overloaded",
                f"client {client!r} already has {held} experiments in "
                f"flight (cap {self.max_client_inflight}); retry later",
                detail={
                    "reason": "client_inflight",
                    "client": client,
                    "inflight": held,
                    "max_client_inflight": self.max_client_inflight,
                    "retry_after": self.retry_after,
                },
            )
        self._by_client[client] = held + 1
        self.inflight += 1

    def release(self, client: str) -> None:
        """Give back one slot (experiment reached a terminal state)."""
        held = self._by_client.get(client, 0)
        if held <= 1:
            self._by_client.pop(client, None)
        else:
            self._by_client[client] = held - 1
        if held > 0:
            self.inflight -= 1

    def snapshot(self) -> dict[str, Any]:
        return {
            "enabled": self.enabled,
            "inflight": self.inflight,
            "max_queue_depth": self.max_queue_depth,
            "max_client_inflight": self.max_client_inflight,
            "shed_total": self.shed_total,
            "clients": dict(sorted(self._by_client.items())),
        }


def plan_claims(
    submissions: Iterable[Sequence[str]],
    cached: Iterable[Hashable] = (),
) -> list[Claim]:
    """Pure form of the registry's partitioning, for tests and reasoning.

    Feeds ``submissions`` (ordered lists of job keys) through a fresh
    registry with ``cached`` pre-satisfied, *never settling anything* --
    the worst case for overlap, where every earlier claim is still in
    flight when the next submission arrives.  Returns one
    :class:`Claim` per submission.
    """
    registry = CoalescingRegistry()
    cached_set = set(cached)
    return [
        registry.claim(index, keys, is_cached=cached_set.__contains__)
        for index, keys in enumerate(submissions)
    ]
