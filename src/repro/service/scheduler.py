"""Multi-tenant job scheduling: coalescing registry and priority ordering.

The service's scheduling problem is the classic shared-cluster one: many
clients submit overlapping sweep workloads against one simulation
backend.  Two mechanisms keep the backend doing minimal work:

* **Coalescing** (:class:`CoalescingRegistry`): every
  :class:`~repro.experiments.parallel.RunJob` is content-addressed by
  :func:`~repro.experiments.cache.job_key`.  When a submission's job set
  intersects the keys already in flight for earlier submissions, the
  shared keys are *not* claimed again -- the new submission subscribes to
  the in-flight computation and the settled outcome fans out to every
  subscriber.  The invariant (locked in by a hypothesis property in
  ``tests/test_service.py``) is exactly-once execution: however
  submissions partition and in whatever order they arrive, each distinct
  key is claimed by exactly one submission and every other overlapping
  submission coalesces onto that claim.

* **Priority** (:func:`queue_key`): submissions carry an integer
  priority (``execution.priority`` in the spec, default 0); the worker
  drains a priority queue ordered by (-priority, arrival), so a batch of
  co-submitted sweeps runs urgent work first while FIFO-tiebreaking
  equal priorities to keep the queue starvation-free.

The registry is deliberately independent of asyncio and of the HTTP
layer: it is called from the event loop only (single-threaded), and the
server fans its decisions out to worker threads.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Hashable, Iterable, Sequence

__all__ = ["Claim", "CoalescingRegistry", "Flight", "plan_claims", "queue_key"]


def queue_key(priority: int, sequence: int) -> tuple[int, int]:
    """Priority-queue ordering: higher priority first, then arrival order."""
    return (-int(priority), int(sequence))


@dataclass
class Flight:
    """One in-flight job key: who claimed it, who is waiting on it."""

    key: str
    owner: Any
    subscribers: list[Any] = field(default_factory=list)

    def parties(self) -> list[Any]:
        return [self.owner, *self.subscribers]


@dataclass(frozen=True)
class Claim:
    """How one submission's keys partitioned against the registry."""

    execute: tuple[str, ...]    # keys this submission must run itself
    coalesced: tuple[str, ...]  # keys already in flight for someone else
    cached: tuple[str, ...]     # keys already satisfied by the result cache


class CoalescingRegistry:
    """Tracks unsettled job keys and fans settlements out to subscribers.

    Keys live in the registry only while unsettled: a settled key leaves
    the registry (its result now lives in the run cache / workbench
    memory), so a later submission of the same key is a *cache* hit, not
    a coalesce.  A key whose execution failed is likewise released --
    the next submission re-claims it and retries, mirroring how the
    resilient executor treats failures as per-attempt, not permanent.
    """

    def __init__(self):
        self._flights: dict[str, Flight] = {}
        self.claimed_total = 0
        self.coalesced_total = 0

    # ------------------------------------------------------------------
    def claim(
        self,
        party: Any,
        keys: Sequence[str],
        is_cached: Callable[[str], bool] | None = None,
    ) -> Claim:
        """Partition ``keys`` for ``party``: execute vs coalesce vs cached.

        Duplicate keys within one submission collapse to a single claim
        (first occurrence wins), matching
        :func:`~repro.experiments.parallel.dedupe_jobs`.
        """
        execute: list[str] = []
        coalesced: list[str] = []
        cached: list[str] = []
        seen: set[str] = set()
        for key in keys:
            if key in seen:
                continue
            seen.add(key)
            flight = self._flights.get(key)
            if flight is not None:
                flight.subscribers.append(party)
                coalesced.append(key)
                self.coalesced_total += 1
                continue
            if is_cached is not None and is_cached(key):
                cached.append(key)
                continue
            self._flights[key] = Flight(key=key, owner=party)
            execute.append(key)
            self.claimed_total += 1
        return Claim(tuple(execute), tuple(coalesced), tuple(cached))

    def settle(self, key: str) -> list[Any]:
        """Retire ``key``; returns every party awaiting it (owner first)."""
        flight = self._flights.pop(key, None)
        if flight is None:
            return []
        return flight.parties()

    def forfeit(self, party: Any) -> list[Flight]:
        """Retire every flight owned by ``party`` without a result.

        Used when a submission dies before finishing its sweep (executor
        blew up, shutdown).  Its flights will never execute now -- the
        subscribers coalesced precisely *because* the owner claimed the
        key, so none of them has it in their own run set.  Re-owning the
        flight would therefore strand it in the registry forever; instead
        each flight is removed and handed back so the caller can fan a
        failure out to owner and subscribers alike.  The keys leave the
        registry, so the next submission re-claims and retries them.
        """
        forfeited = [f for f in self._flights.values() if f.owner is party]
        for flight in forfeited:
            del self._flights[flight.key]
        return forfeited

    def in_flight(self) -> int:
        return len(self._flights)

    def is_in_flight(self, key: str) -> bool:
        return key in self._flights


def plan_claims(
    submissions: Iterable[Sequence[str]],
    cached: Iterable[Hashable] = (),
) -> list[Claim]:
    """Pure form of the registry's partitioning, for tests and reasoning.

    Feeds ``submissions`` (ordered lists of job keys) through a fresh
    registry with ``cached`` pre-satisfied, *never settling anything* --
    the worst case for overlap, where every earlier claim is still in
    flight when the next submission arrives.  Returns one
    :class:`Claim` per submission.
    """
    registry = CoalescingRegistry()
    cached_set = set(cached)
    return [
        registry.claim(index, keys, is_cached=cached_set.__contains__)
        for index, keys in enumerate(submissions)
    ]
