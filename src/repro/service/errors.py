"""Typed error payloads for the job service (schema ``repro.service_error/1``).

Every non-2xx response the server emits is a JSON document of this one
schema, so clients never have to scrape prose out of an HTML error page:

.. code-block:: json

    {
      "schema": "repro.service_error/1",
      "error": "quota_exhausted",
      "status": 429,
      "message": "client 'alice' is out of quota tokens",
      "detail": {"cost": 12, "available": 3, "retry_after": 4.5}
    }

``error`` is a stable machine-readable code (:data:`ERROR_CODES`);
``status`` mirrors the HTTP status the payload rode in on; ``detail`` is
code-specific structured context (never required for dispatch).  The
:class:`~repro.service.client.Client` raises these as
:class:`ServiceError`, carrying the full payload.
"""

from __future__ import annotations

from typing import Any

__all__ = [
    "ERROR_CODES",
    "SERVICE_ERROR_SCHEMA",
    "ServiceError",
    "error_payload",
    "validate_error",
]

SERVICE_ERROR_SCHEMA = "repro.service_error/1"

# Stable code -> default HTTP status.  Codes are part of the API surface:
# clients dispatch on them, so renaming one is a breaking change.
ERROR_CODES = {
    "invalid_json": 400,       # body is not parseable JSON
    "invalid_spec": 400,       # JSON parsed but ExperimentSpec rejected it
    "bad_request": 400,        # malformed path/query/header
    "not_found": 404,          # unknown experiment id or route
    "method_not_allowed": 405,
    "conflict": 409,           # e.g. result requested before completion
    "quota_exhausted": 429,
    "payload_too_large": 413,
    "internal": 500,
    "shutting_down": 503,
    "draining": 503,           # graceful drain in progress; retry elsewhere/later
    "overloaded": 503,         # admission queue full or per-client cap hit
    "not_ready": 503,          # still replaying the durable store on boot
}


class ServiceError(Exception):
    """A typed service failure; serializes to/from the error payload.

    Raised server-side to unwind a request handler into a typed response,
    and client-side by :class:`~repro.service.client.Client` whenever a
    response carries an error payload.
    """

    def __init__(
        self,
        code: str,
        message: str,
        status: int | None = None,
        detail: dict[str, Any] | None = None,
    ):
        if code not in ERROR_CODES:
            raise ValueError(f"unknown service error code {code!r}")
        super().__init__(message)
        self.code = code
        self.message = message
        self.status = status if status is not None else ERROR_CODES[code]
        self.detail = dict(detail) if detail else {}

    def to_payload(self) -> dict[str, Any]:
        payload: dict[str, Any] = {
            "schema": SERVICE_ERROR_SCHEMA,
            "error": self.code,
            "status": self.status,
            "message": self.message,
        }
        if self.detail:
            payload["detail"] = self.detail
        return payload

    @classmethod
    def from_payload(cls, payload: dict[str, Any]) -> "ServiceError":
        validate_error(payload)
        return cls(
            code=payload["error"],
            message=payload["message"],
            status=payload["status"],
            detail=payload.get("detail"),
        )


def error_payload(
    code: str,
    message: str,
    status: int | None = None,
    detail: dict[str, Any] | None = None,
) -> dict[str, Any]:
    """Shorthand: the JSON payload for one error, without raising."""
    return ServiceError(code, message, status=status, detail=detail).to_payload()


def validate_error(payload: Any) -> None:
    """Raise ``ValueError`` unless ``payload`` is a well-formed error document."""
    if not isinstance(payload, dict):
        raise ValueError("service error payload must be a JSON object")
    if payload.get("schema") != SERVICE_ERROR_SCHEMA:
        raise ValueError(
            f"unknown service error schema {payload.get('schema')!r}; "
            f"want {SERVICE_ERROR_SCHEMA!r}"
        )
    code = payload.get("error")
    if code not in ERROR_CODES:
        raise ValueError(f"unknown service error code {code!r}")
    status = payload.get("status")
    if not isinstance(status, int) or isinstance(status, bool):
        raise ValueError("service error 'status' must be an integer")
    if not isinstance(payload.get("message"), str):
        raise ValueError("service error 'message' must be a string")
    detail = payload.get("detail")
    if detail is not None and not isinstance(detail, dict):
        raise ValueError("service error 'detail' must be an object")
